#!/usr/bin/env sh
# Regenerate BENCH_discover.json: edge-recovery quality on the planted
# copy world behind the discover-edge-f1 gate, plus end-to-end discovery
# throughput on a larger world. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_discover.json}"
mkdir -p "$(dirname "$out")"
cargo run --release -p socsense-bench --bin bench_discover -- "$out"
