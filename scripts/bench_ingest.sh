#!/usr/bin/env sh
# Regenerate BENCH_ingest.json: naive vs inverted-index clustering
# (wall-clock + Jaccard-comparison counts) and chunked JSONL parsing
# throughput across the worker ladder. Run from the repo root.
#
# On a <2-core host the JSON carries a prominent "warning" key: the
# threaded rows then measure queue/spawn overhead, not speedup, while
# the naive-vs-indexed single-core comparison remains valid.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p socsense-bench --bin bench_ingest -- "${1:-BENCH_ingest.json}"
