#!/usr/bin/env sh
# Regenerate BENCH_ingest.json: naive vs inverted-index clustering
# (wall-clock + Jaccard-comparison counts) and chunked JSONL parsing
# throughput across the worker ladder. Run from the repo root.
#
# The JSON records the detected core count under
# host.available_parallelism; on a <4-core host it carries a prominent
# "warning" key because the oversubscribed ladder rungs then measure
# queue/spawn overhead, not speedup, while the naive-vs-indexed
# single-core comparison remains valid.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_ingest.json}"
mkdir -p "$(dirname "$out")"
cargo run --release -p socsense-bench --bin bench_ingest -- "$out"
