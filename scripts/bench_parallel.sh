#!/usr/bin/env sh
# Regenerate BENCH_parallel.json: serial vs 2/4/8-thread medians for the
# EM-Ext fit and the Gibbs bound sweep. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p socsense-bench --bin bench_parallel -- "${1:-BENCH_parallel.json}"
