#!/usr/bin/env sh
# Regenerate BENCH_parallel.json: serial vs 2/4/8-thread medians for the
# EM-Ext fit and the Gibbs bound sweep. Run from the repo root.
#
# The JSON records the detected core count under
# host.available_parallelism; on a <4-core host it carries a prominent
# "warning" key because the oversubscribed ladder rungs then measure
# queue/spawn overhead, not speedup (results stay bit-identical).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_parallel.json}"
mkdir -p "$(dirname "$out")"
cargo run --release -p socsense-bench --bin bench_parallel -- "$out"
