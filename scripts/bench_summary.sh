#!/usr/bin/env sh
# Summarise freshly emitted BENCH_*.json files: detected core count
# plus any low-core-host warnings the harnesses embedded. Usage:
#
#   ./scripts/bench_summary.sh [RESULTS_DIR]
#
# RESULTS_DIR defaults to the repo root. Emits GitHub-flavoured
# markdown on stdout — CI appends it to $GITHUB_STEP_SUMMARY, and a
# local run just prints it. Missing files are skipped so the script
# works on partial bench runs.
set -eu
cd "$(dirname "$0")/.."
dir="${1:-.}"

echo "### Bench host"
if [ -f "$dir/BENCH_parallel.json" ]; then
    cores=$(python3 -c 'import json,sys;print(json.load(open(sys.argv[1]))["host"]["available_parallelism"])' "$dir/BENCH_parallel.json")
    echo "detected cores: \`$cores\`"
fi
for f in "$dir"/BENCH_parallel.json "$dir"/BENCH_ingest.json \
         "$dir"/BENCH_serve.json "$dir"/BENCH_delta.json \
         "$dir"/BENCH_wal.json "$dir"/BENCH_discover.json \
         "$dir"/BENCH_lint.json; do
    [ -f "$f" ] || continue
    warning=$(python3 -c 'import json,sys;print(json.load(open(sys.argv[1])).get("warning",""))' "$f")
    if [ -n "$warning" ]; then
        echo ""
        echo "> :warning: **$(basename "$f")**: $warning"
    fi
done
