#!/usr/bin/env sh
# Regenerate BENCH_delta.json: full-vs-delta refit latency on the
# streaming path across history sizes, plus fallback counts and the
# touched-set sizes of the last scoped refit. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_delta.json}"
mkdir -p "$(dirname "$out")"
cargo run --release -p socsense-bench --bin bench_delta -- "$out"
