#!/usr/bin/env sh
# Regenerate BENCH_serve.json: per-request-type latency quantiles for
# the socsense-serve query service, taken from the service's own
# serve.request.<type>.seconds metrics histograms, plus refit/cache
# counters. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_serve.json}"
mkdir -p "$(dirname "$out")"
cargo run --release -p socsense-bench --bin bench_serve -- "$out"
