#!/usr/bin/env sh
# Check freshly emitted BENCH_*.json against the perf-regression
# floors/ceilings in scripts/perf_gates.toml. Usage:
#
#   ./scripts/perf_gate.sh [RESULTS_DIR]
#
# RESULTS_DIR defaults to the repo root. Exits non-zero when any gate
# fails or any gated measurement is missing.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p socsense-bench --bin perf_gate -- \
    scripts/perf_gates.toml "${1:-.}"
