#!/usr/bin/env sh
# Regenerate BENCH_wal.json: durable-serve ingest overhead (WAL with
# per-batch and batched fsync vs no persistence) and cold-recovery
# latency. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_wal.json}"
mkdir -p "$(dirname "$out")"
cargo run --release -p socsense-bench --bin bench_wal -- "$out"
