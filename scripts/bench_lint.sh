#!/usr/bin/env sh
# Regenerate BENCH_lint.json: detlint full-workspace scan throughput
# (lex + tree parse + per-file rules + the workspace-aware flow pass)
# behind the lint-throughput and lint-clean gates. Run from the repo
# root.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_lint.json}"
mkdir -p "$(dirname "$out")"
cargo run --release -p socsense-lint --bin bench_lint -- "$out"
