//! Property-based tests for the matrix substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use socsense_matrix::logprob::{
    log_sum_exp, log_sum_exp2, normalize_log_pair, odds_to_prob, prob_to_odds,
};
use socsense_matrix::{FixedBitSet, SparseBinaryMatrix};

fn entries_strategy() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>)> {
    (1u32..40, 1u32..40).prop_flat_map(|(n, m)| {
        let entries = vec((0..n, 0..m), 0..120);
        (Just(n), Just(m), entries)
    })
}

proptest! {
    #[test]
    fn sparse_row_col_views_agree((n, m, entries) in entries_strategy()) {
        let mat = SparseBinaryMatrix::from_entries(n, m, entries.clone());
        // Every inserted entry is visible on both axes.
        for &(r, c) in &entries {
            prop_assert!(mat.contains(r, c));
            prop_assert!(mat.row(r).contains(&c));
            prop_assert!(mat.col(c).contains(&r));
        }
        // nnz is consistent across views.
        let by_rows: usize = (0..n).map(|r| mat.row_nnz(r)).sum();
        let by_cols: usize = (0..m).map(|c| mat.col_nnz(c)).sum();
        prop_assert_eq!(by_rows, mat.nnz());
        prop_assert_eq!(by_cols, mat.nnz());
        // Rows are sorted and unique.
        for r in 0..n {
            let row = mat.row(r);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn transpose_is_involutive((n, m, entries) in entries_strategy()) {
        let mat = SparseBinaryMatrix::from_entries(n, m, entries);
        let back = mat.transposed().transposed();
        prop_assert_eq!(mat, back);
    }

    #[test]
    fn union_contains_both_and_intersection_neither_more(
        (n, m, a) in entries_strategy(),
        extra in vec((0u32..40, 0u32..40), 0..60),
    ) {
        let b_entries: Vec<_> = extra
            .into_iter()
            .map(|(r, c)| (r % n, c % m))
            .collect();
        let a_mat = SparseBinaryMatrix::from_entries(n, m, a);
        let b_mat = SparseBinaryMatrix::from_entries(n, m, b_entries);
        let u = a_mat.union(&b_mat).unwrap();
        let i = a_mat.intersection(&b_mat).unwrap();
        for (r, c) in a_mat.entries() {
            prop_assert!(u.contains(r, c));
        }
        for (r, c) in b_mat.entries() {
            prop_assert!(u.contains(r, c));
        }
        for (r, c) in i.entries() {
            prop_assert!(a_mat.contains(r, c) && b_mat.contains(r, c));
        }
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(u.nnz() + i.nnz(), a_mat.nnz() + b_mat.nnz());
    }

    #[test]
    fn bitset_matches_reference_model(indices in vec(0usize..200, 0..80)) {
        let s = FixedBitSet::from_indices(200, indices.iter().copied());
        let mut reference: Vec<usize> = indices.clone();
        reference.sort_unstable();
        reference.dedup();
        prop_assert_eq!(s.iter_ones().collect::<Vec<_>>(), reference.clone());
        prop_assert_eq!(s.count_ones(), reference.len());
        for i in 0..200 {
            prop_assert_eq!(s.get(i), reference.binary_search(&i).is_ok());
        }
    }

    #[test]
    fn log_sum_exp_is_commutative_and_monotone(a in -700.0f64..0.0, b in -700.0f64..0.0) {
        let ab = log_sum_exp2(a, b);
        let ba = log_sum_exp2(b, a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab >= a.max(b));
        // Consistent with the slice version.
        prop_assert!((log_sum_exp(&[a, b]) - ab).abs() < 1e-9);
    }

    #[test]
    fn normalized_pair_is_a_distribution(a in -700.0f64..0.0, b in -700.0f64..0.0) {
        let (p1, p0) = normalize_log_pair(a, b);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!((0.0..=1.0).contains(&p0));
        prop_assert!((p1 + p0 - 1.0).abs() < 1e-12);
        // Ordering preserved.
        prop_assert_eq!(a >= b, p1 >= p0);
    }

    #[test]
    fn odds_prob_round_trip(p in 0.0f64..0.999) {
        let back = odds_to_prob(prob_to_odds(p));
        prop_assert!((back - p).abs() < 1e-9);
    }
}
