//! Disjoint-set forests with a deterministic sharded-merge protocol.
//!
//! The Apollo ingest stage clusters tweets by unioning similar pairs.
//! To parallelise that without giving up the workspace's bit-identity
//! contract (see [`crate::parallel`]), each shard records its unions in
//! a *shard-local* [`UnionFind`] over the full element range, and the
//! caller folds the shards together **in shard-index order** with
//! [`UnionFind::merge_from`]. Connected components are independent of
//! the order in which edges are applied, so the merged partition equals
//! the one a serial pass over all edges would produce — and the
//! in-order fold makes even the intermediate states reproducible.
//!
//! [`UnionFind::dense_labels`] then canonicalises the partition into
//! dense ids by first occurrence in element order, which is a pure
//! function of the partition: any two runs that union the same pair
//! set, in any order, across any worker count, emit byte-identical
//! labels.

/// Union-find (disjoint-set forest) with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds.
    pub fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Absorbs every union recorded in `other`: afterwards `a` and `b`
    /// are connected in `self` iff they were connected in `self` *or*
    /// in `other`. This is the shard-merge primitive — fold shard-local
    /// structures with it in shard-index order.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn merge_from(&mut self, other: &UnionFind) {
        assert_eq!(
            self.len(),
            other.len(),
            "merge_from requires equal element counts"
        );
        // Linking each element to its parent replays exactly the union
        // closure of `other` (the forest edges span its components).
        for x in 0..other.parent.len() as u32 {
            let p = other.parent[x as usize];
            if p != x {
                self.union(x, p);
            }
        }
    }

    /// Canonical dense labelling of the partition: components are
    /// numbered by the first element they contain, in element order.
    /// Returns `(labels, component_count)`.
    pub fn dense_labels(&mut self) -> (Vec<u32>, u32) {
        let n = self.len();
        let mut remap: Vec<u32> = vec![u32::MAX; n];
        let mut labels = Vec::with_capacity(n);
        let mut next = 0u32;
        for x in 0..n as u32 {
            let root = self.find(x) as usize;
            if remap[root] == u32::MAX {
                remap[root] = next;
                next += 1;
            }
            labels.push(remap[root]);
        }
        (labels, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(4);
        assert!(!uf.connected(0, 1));
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(2, 3));
        assert!(!uf.connected(1, 2));
        uf.union(1, 2);
        assert!(uf.connected(0, 3));
    }

    #[test]
    fn dense_labels_are_first_occurrence_ordered() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 1);
        uf.union(4, 2);
        let (labels, count) = uf.dense_labels();
        // 0 alone, {1,3}, {2,4}: first occurrences at 0, 1, 2.
        assert_eq!(labels, vec![0, 1, 2, 1, 2]);
        assert_eq!(count, 3);
    }

    #[test]
    fn merge_from_equals_serial_union_order_free() {
        // Edges split across two shards, applied in different orders,
        // must yield the same canonical labels as one serial pass.
        let edges = [(0u32, 5u32), (1, 2), (5, 1), (3, 4), (6, 3)];
        let mut serial = UnionFind::new(8);
        for &(a, b) in &edges {
            serial.union(a, b);
        }
        let mut shard_a = UnionFind::new(8);
        let mut shard_b = UnionFind::new(8);
        for &(a, b) in &edges[..2] {
            shard_b.union(a, b);
        }
        for &(a, b) in &edges[2..] {
            shard_a.union(a, b);
        }
        let mut merged = UnionFind::new(8);
        merged.merge_from(&shard_a);
        merged.merge_from(&shard_b);
        assert_eq!(merged.dense_labels(), serial.dense_labels());
    }

    #[test]
    fn empty_is_fine() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.dense_labels(), (Vec::new(), 0));
        let other = UnionFind::new(0);
        uf.merge_from(&other);
    }

    #[test]
    #[should_panic(expected = "equal element counts")]
    fn merge_from_rejects_size_mismatch() {
        let mut uf = UnionFind::new(3);
        uf.merge_from(&UnionFind::new(4));
    }
}
