//! Log-space probability arithmetic.
//!
//! The likelihood of one assertion's claim pattern is a product of up to
//! tens of thousands of Bernoulli factors (Eqs. 4–5 of the paper); in
//! linear space that underflows `f64` long before Twitter scale. Every
//! kernel in `socsense-core` therefore works with natural-log
//! probabilities and the helpers below.

/// Smallest probability admitted before taking a logarithm.
///
/// Model parameters are clamped into `[EPS, 1 - EPS]` so `ln` never sees 0
/// and EM updates can always move away from a degenerate corner.
pub const EPS: f64 = 1e-12;

/// Natural log of a probability, with the argument clamped to `[EPS, 1]`.
///
/// # Example
///
/// ```
/// use socsense_matrix::logprob::safe_ln;
/// assert!(safe_ln(0.0).is_finite());
/// assert_eq!(safe_ln(1.0), 0.0);
/// ```
#[inline]
pub fn safe_ln(p: f64) -> f64 {
    p.clamp(EPS, 1.0).ln()
}

/// `ln(1 - p)` with the complement clamped to `[EPS, 1]`.
#[inline]
pub fn safe_ln_1m(p: f64) -> f64 {
    (1.0 - p).clamp(EPS, 1.0).ln()
}

/// `ln(exp(a) + exp(b))` computed without overflow or catastrophic loss.
///
/// Handles `-inf` inputs correctly (identity element).
///
/// # Example
///
/// ```
/// use socsense_matrix::logprob::log_sum_exp2;
/// let lse = log_sum_exp2(0.0_f64.ln(), 1.0_f64.ln());
/// assert!((lse - 1.0_f64.ln()).abs() < 1e-12);
/// ```
#[inline]
pub fn log_sum_exp2(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `ln(Σ exp(xs))` over a slice; `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    hi + xs.iter().map(|&x| (x - hi).exp()).sum::<f64>().ln()
}

/// Normalizes a pair of log-weights into linear probabilities summing to 1.
///
/// Given `ln w1` and `ln w0`, returns `(w1, w0) / (w1 + w0)`. This is the
/// posterior computation of Eq. 9 once the two joint log-likelihoods are
/// known. If both weights are `-inf` the split defaults to `(0.5, 0.5)`.
#[inline]
pub fn normalize_log_pair(ln_w1: f64, ln_w0: f64) -> (f64, f64) {
    if ln_w1 == f64::NEG_INFINITY && ln_w0 == f64::NEG_INFINITY {
        return (0.5, 0.5);
    }
    let lse = log_sum_exp2(ln_w1, ln_w0);
    ((ln_w1 - lse).exp(), (ln_w0 - lse).exp())
}

/// Converts odds `p/(1-p)` to the probability `p`.
///
/// The paper's Figs. 5 and 10 sweep reliability as odds ratios; the
/// generator needs them back as probabilities.
///
/// # Panics
///
/// Panics if `odds` is negative or non-finite.
#[inline]
pub fn odds_to_prob(odds: f64) -> f64 {
    assert!(
        odds.is_finite() && odds >= 0.0,
        "odds must be finite and >= 0, got {odds}"
    );
    odds / (1.0 + odds)
}

/// Converts a probability `p` to its odds `p/(1-p)`; `inf` when `p == 1`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[inline]
pub fn prob_to_odds(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0,1], got {p}"
    );
    if p == 1.0 {
        f64::INFINITY
    } else {
        p / (1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_ln_clamps() {
        assert!(safe_ln(0.0).is_finite());
        assert!(safe_ln(-1.0).is_finite());
        assert_eq!(safe_ln(1.0), 0.0);
        assert!((safe_ln(0.5) - 0.5_f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn safe_ln_1m_clamps() {
        assert!(safe_ln_1m(1.0).is_finite());
        assert_eq!(safe_ln_1m(0.0), 0.0);
    }

    #[test]
    fn log_sum_exp2_matches_direct() {
        let (a, b) = (0.3_f64.ln(), 0.2_f64.ln());
        assert!((log_sum_exp2(a, b) - 0.5_f64.ln()).abs() < 1e-12);
        assert_eq!(log_sum_exp2(f64::NEG_INFINITY, b), b);
        assert_eq!(log_sum_exp2(a, f64::NEG_INFINITY), a);
    }

    #[test]
    fn log_sum_exp2_handles_extreme_magnitudes() {
        let big = -1000.0;
        let small = -2000.0;
        let lse = log_sum_exp2(big, small);
        assert!((lse - big).abs() < 1e-9);
        assert!(lse >= big);
    }

    #[test]
    fn log_sum_exp_slice() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let xs = [0.1_f64.ln(), 0.2_f64.ln(), 0.3_f64.ln()];
        assert!((log_sum_exp(&xs) - 0.6_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn normalize_log_pair_sums_to_one() {
        let (p1, p0) = normalize_log_pair(0.08_f64.ln(), 0.02_f64.ln());
        assert!((p1 - 0.8).abs() < 1e-12);
        assert!((p0 - 0.2).abs() < 1e-12);
        let (q1, q0) = normalize_log_pair(f64::NEG_INFINITY, f64::NEG_INFINITY);
        assert_eq!((q1, q0), (0.5, 0.5));
    }

    #[test]
    fn odds_round_trip() {
        for &p in &[0.0, 0.1, 0.5, 2.0 / 3.0, 0.99] {
            let back = odds_to_prob(prob_to_odds(p));
            assert!((back - p).abs() < 1e-12, "p={p} back={back}");
        }
        assert_eq!(prob_to_odds(1.0), f64::INFINITY);
        // The paper's knob: odds of 2 means p = 2/3.
        assert!((odds_to_prob(2.0) - 2.0 / 3.0).abs() < 1e-15);
    }
}
