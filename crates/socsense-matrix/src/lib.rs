//! Matrix and numeric substrate for the `socsense` workspace.
//!
//! The social-sensing kernels in this workspace operate on two kinds of data:
//!
//! * **Binary incidence matrices** — the source-claim matrix `SC` and the
//!   dependency indicator matrix `D` from the ICDCS 2016 paper. Both are
//!   extremely sparse at Twitter scale (tens of thousands of sources and
//!   assertions, but only on the order of one claim per source), so the
//!   workhorse type is [`SparseBinaryMatrix`]: an immutable CSR + CSC dual
//!   index built once from an entry list via [`SparseBinaryMatrixBuilder`].
//! * **Dense floating-point state** — per-assertion posteriors, per-source
//!   parameter tables and the like, served by [`DenseMatrix`].
//!
//! On top of those live two numeric helpers used throughout the estimator
//! and bound code: [`logprob`] (log-space probability arithmetic, so that
//! products over hundreds of Bernoulli factors never underflow) and
//! [`FixedBitSet`] (compact claim-pattern bit sets for the exact-bound
//! enumerator and the Gibbs sampler state).
//!
//! # Example
//!
//! ```
//! use socsense_matrix::SparseBinaryMatrixBuilder;
//!
//! // Source 0 claims assertions {0, 2}; source 1 claims {2}.
//! let mut b = SparseBinaryMatrixBuilder::new(2, 3);
//! b.insert(0, 0);
//! b.insert(0, 2);
//! b.insert(1, 2);
//! let sc = b.build();
//!
//! assert!(sc.contains(0, 2));
//! assert_eq!(sc.col(2), &[0, 1]);
//! assert_eq!(sc.nnz(), 3);
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod dense;
mod error;
pub mod logprob;
pub mod parallel;
mod sparse;
mod unionfind;

pub use bitset::FixedBitSet;
pub use dense::DenseMatrix;
pub use error::MatrixError;
pub use parallel::Parallelism;
pub use sparse::{EntriesIter, SparseBinaryMatrix, SparseBinaryMatrixBuilder};
pub use unionfind::UnionFind;
