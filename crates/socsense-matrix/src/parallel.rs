//! Deterministic data-parallel helpers for the workspace's hot loops.
//!
//! Every numeric kernel in this workspace (EM posteriors, M-step
//! accumulators, Gibbs bounds, exact-bound enumeration, repeated
//! experiments) promises *bit-identical* results for a given seed. A
//! conventional work-stealing parallel reduction breaks that promise:
//! floating-point addition is not associative, so any merge order that
//! depends on thread scheduling or worker count changes the last ulps
//! of the result.
//!
//! This module restores the promise by construction:
//!
//! 1. **Chunk boundaries are a pure function of the problem size.**
//!    [`chunk_len`] derives the chunk size from `len` alone — never
//!    from the worker count — so the same input always produces the
//!    same chunk decomposition.
//! 2. **Chunk results are merged in chunk-index order.** Workers race
//!    only over *which chunk they compute*, never over where results
//!    land: each chunk writes into its own slot and the caller folds
//!    the slots left-to-right.
//! 3. **The serial path runs the identical chunked loop.** With one
//!    worker, the same chunks are evaluated in the same order with the
//!    same merge, so `Parallelism::Serial`, `Threads(1)`, and
//!    `Threads(n)` are all bit-identical, and `Auto` matches them on
//!    any machine.
//!
//! Workers are plain `std::thread::scope` threads over a shared
//! `Mutex`-held job list — no unsafe, no external dependency, and no
//! pool to keep alive between calls. Per-call spawn cost is trivial
//! next to the numeric work these helpers exist for.

use std::ops::Range;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// How much parallelism a compute kernel may use.
///
/// The choice never affects numeric results — only wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every core the OS reports (`available_parallelism`).
    #[default]
    Auto,
    /// Single-threaded; still runs the chunked loop, so results match
    /// the threaded paths exactly.
    Serial,
    /// A fixed worker count (clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// Worker threads to use for `jobs` independent jobs.
    pub fn worker_count(self, jobs: usize) -> usize {
        let raw = match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        };
        raw.min(jobs.max(1))
    }
}

/// Fixed number of chunks a length is split into (before the one-item
/// minimum chunk size takes over for short inputs). Chosen so that even
/// a 16-way machine gets several chunks per worker for load balance.
const TARGET_CHUNKS: usize = 64;

/// Chunk size for a problem of `len` items — a pure function of `len`,
/// deliberately independent of worker count (see module docs).
pub fn chunk_len(len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(1)
}

/// The fixed chunk decomposition of `0..len`, in index order.
pub fn chunk_ranges(len: usize) -> Vec<Range<usize>> {
    let size = chunk_len(len);
    (0..len)
        .step_by(size)
        .map(|start| start..(start + size).min(len))
        .collect()
}

/// Runs `f` over every fixed chunk of `0..len` and returns the chunk
/// results **in chunk-index order**, regardless of which worker
/// computed which chunk.
pub fn par_chunks<A, F>(par: Parallelism, len: usize, f: F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    run_indexed(par, chunk_ranges(len), &f)
}

/// Maps `f` over `0..len` and collects the results in index order.
pub fn par_map_collect<T, F>(par: Parallelism, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_chunks(par, len, |range| range.map(&f).collect::<Vec<T>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Chunked ordered map-reduce: evaluates `chunk_eval` on every fixed
/// chunk, then folds the chunk results left-to-right from `init`. The
/// fold order equals the chunk order, so the reduction is deterministic
/// for non-associative (floating-point) merges.
pub fn par_map_reduce<A, F, M>(par: Parallelism, len: usize, init: A, chunk_eval: F, merge: M) -> A
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
    M: FnMut(A, A) -> A,
{
    par_chunks(par, len, chunk_eval)
        .into_iter()
        .fold(init, merge)
}

/// Fills `out[i] = f(i)` for every index, chunked like the other
/// helpers. Each worker owns a disjoint `chunks_mut` slice, so no
/// synchronisation touches the output data itself.
pub fn par_fill<T, F>(par: Parallelism, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = out.len();
    if len == 0 {
        return;
    }
    let size = chunk_len(len);
    let jobs: Vec<(usize, &mut [T])> = out
        .chunks_mut(size)
        .enumerate()
        .map(|(c, slice)| (c * size, slice))
        .collect();
    run_indexed(par, jobs, &|(base, slice): (usize, &mut [T])| {
        for (offset, cell) in slice.iter_mut().enumerate() {
            *cell = f(base + offset);
        }
    });
}

/// Executes `f` over `items`, returning results in item order. Workers
/// pull jobs from a shared list; each result lands in the slot of its
/// originating item, so scheduling cannot reorder anything.
fn run_indexed<I, A, F>(par: Parallelism, items: Vec<I>, f: &F) -> Vec<A>
where
    I: Send,
    A: Send,
    F: Fn(I) -> A + Sync,
{
    let jobs = items.len();
    let workers = par.worker_count(jobs);
    if workers <= 1 || jobs <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Jobs are popped from the back; pairing each with its index keeps
    // the output order independent of scheduling.
    let queue: Mutex<Vec<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Option<A>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("job queue poisoned").pop();
                let Some((idx, item)) = job else {
                    break;
                };
                let out = f(item);
                slots.lock().expect("result slots poisoned")[idx] = Some(out);
            });
        }
        // `std::thread::scope` joins every worker here and re-raises
        // any worker panic in the caller.
    });
    slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduction whose result is sensitive to summation order: mixing
    /// tiny and huge magnitudes makes non-deterministic merges visible
    /// at the bit level.
    fn order_sensitive_sum(par: Parallelism, len: usize) -> f64 {
        par_map_reduce(
            par,
            len,
            0.0,
            |range| {
                range
                    .map(|i| {
                        if i % 3 == 0 {
                            1e16
                        } else {
                            1.0 + i as f64 * 1e-8
                        }
                    })
                    .sum::<f64>()
            },
            |a, b| a + b,
        )
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "large sweep is too slow under Miri; the smaller thread tests still run"
    )]
    fn all_parallelism_levels_are_bit_identical() {
        for len in [0, 1, 7, 64, 65, 1000, 4099] {
            let serial = order_sensitive_sum(Parallelism::Serial, len);
            for par in [
                Parallelism::Auto,
                Parallelism::Threads(1),
                Parallelism::Threads(2),
                Parallelism::Threads(4),
                Parallelism::Threads(8),
            ] {
                let threaded = order_sensitive_sum(par, len);
                assert_eq!(
                    serial.to_bits(),
                    threaded.to_bits(),
                    "len {len}, {par:?}: {serial} != {threaded}"
                );
            }
        }
    }

    #[test]
    fn chunk_boundaries_depend_only_on_len() {
        let ranges = chunk_ranges(1000);
        assert_eq!(ranges.first().map(|r| r.start), Some(0));
        assert_eq!(ranges.last().map(|r| r.end), Some(1000));
        let mut expected_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expected_start, "chunks must tile the range");
            expected_start = r.end;
        }
        // Short inputs degrade to one-item chunks, never zero-length.
        assert_eq!(chunk_len(3), 1);
        assert_eq!(chunk_ranges(0).len(), 0);
        assert_eq!(chunk_ranges(1), vec![0..1]);
    }

    #[test]
    fn par_map_collect_preserves_index_order() {
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let out = par_map_collect(par, 500, |i| i * i);
            assert_eq!(out.len(), 500);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn par_fill_writes_every_slot() {
        for par in [Parallelism::Serial, Parallelism::Threads(3)] {
            let mut out = vec![0u64; 777];
            par_fill(par, &mut out, |i| i as u64 + 1);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
        }
        let mut empty: Vec<u64> = Vec::new();
        par_fill(Parallelism::Threads(4), &mut empty, |i| i as u64);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_count_respects_mode_and_job_count() {
        assert_eq!(Parallelism::Serial.worker_count(100), 1);
        assert_eq!(Parallelism::Threads(4).worker_count(100), 4);
        assert_eq!(Parallelism::Threads(0).worker_count(100), 1);
        assert_eq!(Parallelism::Threads(8).worker_count(2), 2);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_map_collect(Parallelism::Threads(2), 8, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
