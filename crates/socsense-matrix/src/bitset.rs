//! A fixed-capacity bit set.
//!
//! Backs the claim-pattern state of the exact-bound enumerator and the
//! Gibbs sampler in `socsense-core`: a pattern over `n` sources is a point
//! in `{0,1}^n`, flipped one coordinate at a time.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A bit set over a fixed universe `0..len`.
///
/// # Example
///
/// ```
/// use socsense_matrix::FixedBitSet;
///
/// let mut s = FixedBitSet::new(70);
/// s.set(3, true);
/// s.set(68, true);
/// assert!(s.get(3));
/// assert_eq!(s.count_ones(), 2);
/// assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![3, 68]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedBitSet {
    len: usize,
    words: Vec<u64>,
}

impl FixedBitSet {
    /// An all-zero bit set over `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Builds a set from the indices yielded by `iter`.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= len`.
    pub fn from_indices(len: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for i in iter {
            s.set(i, true);
        }
        s
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip_across_word_boundary() {
        let mut s = FixedBitSet::new(130);
        for &i in &[0usize, 63, 64, 127, 129] {
            assert!(!s.get(i));
            s.set(i, true);
            assert!(s.get(i));
        }
        assert_eq!(s.count_ones(), 5);
        assert!(!s.flip(63));
        assert_eq!(s.count_ones(), 4);
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let s = FixedBitSet::from_indices(100, [7, 3, 99, 64]);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![3, 7, 64, 99]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = FixedBitSet::from_indices(10, 0..10);
        assert_eq!(s.count_ones(), 10);
        s.clear();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        FixedBitSet::new(4).get(4);
    }

    #[test]
    fn zero_len_set_is_empty() {
        let s = FixedBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.iter_ones().count(), 0);
    }
}
