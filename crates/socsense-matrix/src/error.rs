//! Error type for the matrix substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix constructors and cell-wise operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatrixError {
    /// An entry landed outside the declared matrix shape.
    OutOfBounds {
        /// Offending row index.
        row: u32,
        /// Offending column index.
        col: u32,
        /// Declared row count.
        nrows: u32,
        /// Declared column count.
        ncols: u32,
    },
    /// Two operands of a cell-wise operation have different shapes.
    DimensionMismatch {
        /// Shape of the left operand.
        expected: (u32, u32),
        /// Shape of the right operand.
        actual: (u32, u32),
    },
    /// A backing vector's length does not match the declared shape.
    BadBacking {
        /// `nrows * ncols` of the declared shape.
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::OutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            MatrixError::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            MatrixError::BadBacking { expected, actual } => write!(
                f,
                "backing vector length {actual} does not match shape (expected {expected})"
            ),
        }
    }
}

impl Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::OutOfBounds {
            row: 5,
            col: 1,
            nrows: 2,
            ncols: 2,
        };
        assert!(e.to_string().contains("(5, 1)"));
        let e = MatrixError::DimensionMismatch {
            expected: (1, 2),
            actual: (3, 4),
        };
        assert!(e.to_string().contains("1x2"));
        let e = MatrixError::BadBacking {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('3'));
    }
}
