//! A minimal row-major dense `f64` matrix.
//!
//! Used for per-source parameter tables and posterior snapshots where the
//! data is genuinely dense. Deliberately small: the workspace needs
//! indexing, row views, fills, and map/fold — not a linear-algebra library.

use serde::{Deserialize, Serialize};

use crate::error::MatrixError;

/// Row-major dense matrix of `f64`.
///
/// # Example
///
/// ```
/// use socsense_matrix::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(1, 2, 0.5);
/// assert_eq!(m.get(1, 2), 0.5);
/// assert_eq!(m.row(1), &[0.0, 0.0, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// An `nrows × ncols` matrix filled with `value`.
    pub fn filled(nrows: usize, ncols: usize, value: f64) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![value; nrows * ncols],
        }
    }

    /// Builds from a row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::BadBacking`] when `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != nrows * ncols {
            return Err(MatrixError::BadBacking {
                expected: nrows * ncols,
                actual: data.len(),
            });
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.nrows && col < self.ncols);
        row * self.ncols + col
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[self.idx(row, col)]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let i = self.idx(row, col);
        self.data[i] = value;
    }

    /// Immutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows`.
    pub fn row(&self, row: usize) -> &[f64] {
        let start = row * self.ncols;
        &self.data[start..start + self.ncols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        let start = row * self.ncols;
        &mut self.data[start..start + self.ncols]
    }

    /// Overwrites every cell with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Applies `f` to every cell in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sum of all cells.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest absolute difference to another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f64, MatrixError> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(MatrixError::DimensionMismatch {
                expected: (self.nrows as u32, self.ncols as u32),
                actual: (other.nrows as u32, other.ncols as u32),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// The backing row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(2, 2);
        assert_eq!(m.get(0, 1), 0.0);
        m.set(0, 1, 3.5);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.sum(), 3.5);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn row_mut_edits_in_place() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), &[0.0; 3]);
    }

    #[test]
    fn map_in_place_applies_everywhere() {
        let mut m = DenseMatrix::filled(2, 2, 2.0);
        m.map_in_place(|v| v * v);
        assert_eq!(m.sum(), 16.0);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = DenseMatrix::filled(1, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 1, 1.25);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.25);
        let c = DenseMatrix::zeros(2, 2);
        assert!(a.max_abs_diff(&c).is_err());
    }
}
