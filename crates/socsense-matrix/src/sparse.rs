//! Immutable sparse binary matrices with a dual CSR/CSC index.
//!
//! The source-claim matrix `SC` and the dependency indicator matrix `D`
//! are consumed along both axes: the EM E-step walks *columns* (all sources
//! touching one assertion), the M-step walks *rows* (all assertions touched
//! by one source). [`SparseBinaryMatrix`] therefore stores both a CSR and a
//! CSC index, built once by [`SparseBinaryMatrixBuilder::build`], and is
//! immutable afterwards.

use serde::{Deserialize, Serialize};

use crate::error::MatrixError;

/// Builder accumulating `(row, col)` entries for a [`SparseBinaryMatrix`].
///
/// Duplicate insertions are allowed and collapse to a single entry at
/// [`build`](Self::build) time, matching the semantics of a binary
/// incidence matrix ("source `i` asserted `C_j` at least once").
///
/// # Example
///
/// ```
/// use socsense_matrix::SparseBinaryMatrixBuilder;
///
/// let mut b = SparseBinaryMatrixBuilder::new(2, 2);
/// b.insert(1, 0);
/// b.insert(1, 0); // duplicate, collapsed
/// let m = b.build();
/// assert_eq!(m.nnz(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseBinaryMatrixBuilder {
    nrows: u32,
    ncols: u32,
    entries: Vec<(u32, u32)>,
}

impl SparseBinaryMatrixBuilder {
    /// Creates a builder for an `nrows × ncols` matrix with no entries.
    pub fn new(nrows: u32, ncols: u32) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates a builder and pre-reserves space for `cap` entries.
    pub fn with_capacity(nrows: u32, ncols: u32, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Records that cell `(row, col)` is set.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds; entries are validated
    /// eagerly so the panic points at the faulty insertion, not at `build`.
    pub fn insert(&mut self, row: u32, col: u32) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col));
    }

    /// Fallible variant of [`insert`](Self::insert).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::OutOfBounds`] when the coordinates do not fit.
    pub fn try_insert(&mut self, row: u32, col: u32) -> Result<(), MatrixError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(MatrixError::OutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.push((row, col));
        Ok(())
    }

    /// Number of recorded entries (duplicates included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts, deduplicates, and freezes the entries into a matrix.
    pub fn build(mut self) -> SparseBinaryMatrix {
        self.entries.sort_unstable();
        self.entries.dedup();
        SparseBinaryMatrix::from_sorted_unique(self.nrows, self.ncols, &self.entries)
    }
}

impl Extend<(u32, u32)> for SparseBinaryMatrixBuilder {
    fn extend<T: IntoIterator<Item = (u32, u32)>>(&mut self, iter: T) {
        for (r, c) in iter {
            self.insert(r, c);
        }
    }
}

/// An immutable `nrows × ncols` binary matrix with CSR *and* CSC indexes.
///
/// Rows and columns are addressed by `u32`; set cells within a row (or
/// column) are exposed as sorted slices, so membership tests are binary
/// searches and intersections are linear merges.
///
/// Construct it through [`SparseBinaryMatrixBuilder`] or
/// [`SparseBinaryMatrix::from_entries`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseBinaryMatrix {
    nrows: u32,
    ncols: u32,
    // CSR
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    // CSC
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
}

impl SparseBinaryMatrix {
    /// Builds a matrix from an arbitrary entry list (duplicates collapsed).
    ///
    /// # Panics
    ///
    /// Panics if any entry is out of bounds.
    pub fn from_entries(
        nrows: u32,
        ncols: u32,
        entries: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut b = SparseBinaryMatrixBuilder::new(nrows, ncols);
        b.extend(entries);
        b.build()
    }

    /// An `nrows × ncols` matrix with no set cells.
    pub fn empty(nrows: u32, ncols: u32) -> Self {
        Self::from_sorted_unique(nrows, ncols, &[])
    }

    fn from_sorted_unique(nrows: u32, ncols: u32, entries: &[(u32, u32)]) -> Self {
        let n = nrows as usize;
        let m = ncols as usize;
        let nnz = entries.len();

        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(nnz);
        for &(r, c) in entries {
            row_ptr[r as usize + 1] += 1;
            col_idx.push(c);
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }

        // Counting sort by column for the CSC side; rows remain sorted
        // within each column because the input is row-major sorted.
        let mut col_ptr = vec![0usize; m + 1];
        for &(_, c) in entries {
            col_ptr[c as usize + 1] += 1;
        }
        for j in 0..m {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0u32; nnz];
        for &(r, c) in entries {
            let slot = cursor[c as usize];
            row_idx[slot] = r;
            cursor[c as usize] += 1;
        }

        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            col_ptr,
            row_idx,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> u32 {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> u32 {
        self.ncols
    }

    /// Number of set cells.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of cells that are set; `0.0` for a degenerate 0-cell matrix.
    pub fn density(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Sorted column indices set in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows`.
    pub fn row(&self, row: u32) -> &[u32] {
        let r = row as usize;
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Sorted row indices set in `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= ncols`.
    pub fn col(&self, col: u32) -> &[u32] {
        let c = col as usize;
        &self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Number of set cells in `row`.
    pub fn row_nnz(&self, row: u32) -> usize {
        self.row(row).len()
    }

    /// Number of set cells in `col`.
    pub fn col_nnz(&self, col: u32) -> usize {
        self.col(col).len()
    }

    /// Whether cell `(row, col)` is set. Out-of-bounds coordinates are
    /// reported as unset rather than panicking, which lets callers probe
    /// ragged data safely.
    pub fn contains(&self, row: u32, col: u32) -> bool {
        if row >= self.nrows || col >= self.ncols {
            return false;
        }
        self.row(row).binary_search(&col).is_ok()
    }

    /// Iterates over all set cells in row-major order.
    pub fn entries(&self) -> EntriesIter<'_> {
        EntriesIter {
            matrix: self,
            row: 0,
            offset: 0,
        }
    }

    /// Returns the transpose (rows and columns swapped).
    pub fn transposed(&self) -> SparseBinaryMatrix {
        SparseBinaryMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: self.col_ptr.clone(),
            col_idx: self.row_idx.clone(),
            col_ptr: self.row_ptr.clone(),
            row_idx: self.col_idx.clone(),
        }
    }

    /// Cell-wise union of two equally sized matrices.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the shapes differ.
    pub fn union(&self, other: &SparseBinaryMatrix) -> Result<SparseBinaryMatrix, MatrixError> {
        self.check_same_shape(other)?;
        let mut b = SparseBinaryMatrixBuilder::with_capacity(
            self.nrows,
            self.ncols,
            self.nnz() + other.nnz(),
        );
        b.extend(self.entries());
        b.extend(other.entries());
        Ok(b.build())
    }

    /// Cell-wise intersection of two equally sized matrices.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the shapes differ.
    pub fn intersection(
        &self,
        other: &SparseBinaryMatrix,
    ) -> Result<SparseBinaryMatrix, MatrixError> {
        self.check_same_shape(other)?;
        let mut b = SparseBinaryMatrixBuilder::new(self.nrows, self.ncols);
        for row in 0..self.nrows {
            let (mut a, mut o) = (
                self.row(row).iter().peekable(),
                other.row(row).iter().peekable(),
            );
            while let (Some(&&ca), Some(&&co)) = (a.peek(), o.peek()) {
                match ca.cmp(&co) {
                    std::cmp::Ordering::Less => {
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        o.next();
                    }
                    std::cmp::Ordering::Equal => {
                        b.insert(row, ca);
                        a.next();
                        o.next();
                    }
                }
            }
        }
        Ok(b.build())
    }

    fn check_same_shape(&self, other: &SparseBinaryMatrix) -> Result<(), MatrixError> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(MatrixError::DimensionMismatch {
                expected: (self.nrows, self.ncols),
                actual: (other.nrows, other.ncols),
            });
        }
        Ok(())
    }
}

/// Row-major iterator over the set cells of a [`SparseBinaryMatrix`],
/// created by [`SparseBinaryMatrix::entries`].
#[derive(Debug, Clone)]
pub struct EntriesIter<'a> {
    matrix: &'a SparseBinaryMatrix,
    row: u32,
    offset: usize,
}

impl Iterator for EntriesIter<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.matrix.nrows {
            let r = self.row as usize;
            let start = self.matrix.row_ptr[r];
            let end = self.matrix.row_ptr[r + 1];
            let idx = start + self.offset;
            if idx < end {
                self.offset += 1;
                return Some((self.row, self.matrix.col_idx[idx]));
            }
            self.row += 1;
            self.offset = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Cheap over-approximation; exact counting would walk row_ptr.
        (0, Some(self.matrix.nnz()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseBinaryMatrix {
        SparseBinaryMatrix::from_entries(3, 4, [(0, 1), (0, 3), (1, 0), (2, 1), (2, 2)])
    }

    #[test]
    fn builder_collapses_duplicates() {
        let m = SparseBinaryMatrix::from_entries(2, 2, [(0, 0), (0, 0), (1, 1)]);
        assert_eq!(m.nnz(), 2);
        assert!(m.contains(0, 0));
        assert!(m.contains(1, 1));
        assert!(!m.contains(0, 1));
    }

    #[test]
    fn rows_and_cols_are_sorted_views() {
        let m = sample();
        assert_eq!(m.row(0), &[1, 3]);
        assert_eq!(m.row(1), &[0]);
        assert_eq!(m.row(2), &[1, 2]);
        assert_eq!(m.col(0), &[1]);
        assert_eq!(m.col(1), &[0, 2]);
        assert_eq!(m.col(2), &[2]);
        assert_eq!(m.col(3), &[0]);
    }

    #[test]
    fn contains_handles_out_of_bounds() {
        let m = sample();
        assert!(!m.contains(99, 0));
        assert!(!m.contains(0, 99));
    }

    #[test]
    fn entries_iterates_row_major() {
        let m = sample();
        let e: Vec<_> = m.entries().collect();
        assert_eq!(e, vec![(0, 1), (0, 3), (1, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn transpose_swaps_axes() {
        let m = sample();
        let t = m.transposed();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        for (r, c) in m.entries() {
            assert!(t.contains(c, r));
        }
        assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn union_and_intersection() {
        let a = SparseBinaryMatrix::from_entries(2, 2, [(0, 0), (0, 1)]);
        let b = SparseBinaryMatrix::from_entries(2, 2, [(0, 1), (1, 1)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.nnz(), 3);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.nnz(), 1);
        assert!(i.contains(0, 1));
    }

    #[test]
    fn union_rejects_shape_mismatch() {
        let a = SparseBinaryMatrix::empty(2, 2);
        let b = SparseBinaryMatrix::empty(2, 3);
        assert!(matches!(
            a.union(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_matrix_has_zero_density() {
        let m = SparseBinaryMatrix::empty(0, 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn density_counts_cells() {
        let m = SparseBinaryMatrix::from_entries(2, 2, [(0, 0)]);
        assert!((m.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut b = SparseBinaryMatrixBuilder::new(1, 1);
        b.insert(1, 0);
    }

    #[test]
    fn try_insert_reports_error() {
        let mut b = SparseBinaryMatrixBuilder::new(1, 1);
        assert!(b.try_insert(0, 0).is_ok());
        assert!(matches!(
            b.try_insert(0, 5),
            Err(MatrixError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: SparseBinaryMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
