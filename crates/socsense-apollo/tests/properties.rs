//! Property-based tests for the clustering stage and pipeline output.

use proptest::collection::vec;
use proptest::prelude::*;
use socsense_apollo::{cluster_texts, Apollo, ApolloConfig, ClusterConfig};
use socsense_baselines::Voting;
use socsense_twitter::{ScenarioConfig, TwitterDataset};

/// Random lowercase word.
fn word() -> impl Strategy<Value = String> {
    "[a-e]{2,5}"
}

fn texts() -> impl Strategy<Value = Vec<String>> {
    vec(vec(word(), 1..7).prop_map(|ws| ws.join(" ")), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clustering always yields a dense, total assignment.
    #[test]
    fn clustering_is_a_total_dense_partition(texts in texts(), threshold in 0.1f64..1.0) {
        let cfg = ClusterConfig {
            jaccard_threshold: threshold,
            ..ClusterConfig::default()
        };
        let c = cluster_texts(&texts, &cfg);
        prop_assert_eq!(c.assignment.len(), texts.len());
        // Cluster ids are dense: every id below cluster_count occurs.
        let mut seen = vec![false; c.cluster_count as usize];
        for &a in &c.assignment {
            prop_assert!(a < c.cluster_count);
            seen[a as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Members partition the input.
        let total: usize = c.members().iter().map(|m| m.len()).sum();
        prop_assert_eq!(total, texts.len());
    }

    /// Identical texts always share a cluster (Jaccard 1 >= any threshold).
    #[test]
    fn identical_texts_always_merge(base in vec(word(), 2..6), threshold in 0.1f64..1.0) {
        let text = base.join(" ");
        let texts = vec![text.clone(), text.clone(), "zzz yyy xxx www".to_string()];
        let cfg = ClusterConfig {
            jaccard_threshold: threshold,
            ..ClusterConfig::default()
        };
        let c = cluster_texts(&texts, &cfg);
        prop_assert_eq!(c.assignment[0], c.assignment[1]);
    }

    /// Raising the threshold never produces coarser clusterings.
    #[test]
    fn higher_threshold_is_finer(texts in texts()) {
        let count_at = |t: f64| {
            cluster_texts(
                &texts,
                &ClusterConfig {
                    jaccard_threshold: t,
                    ..ClusterConfig::default()
                },
            )
            .cluster_count
        };
        prop_assert!(count_at(0.3) <= count_at(0.9));
    }

    /// Purity is 1.0 when labels equal the clustering itself and never
    /// exceeds 1.0 for arbitrary labels.
    #[test]
    fn purity_bounds(texts in texts(), labels_seed in 0u32..10) {
        let c = cluster_texts(&texts, &ClusterConfig::default());
        if !texts.is_empty() {
            prop_assert!((c.purity(&c.assignment) - 1.0).abs() < 1e-12);
            let labels: Vec<u32> = (0..texts.len() as u32).map(|i| (i + labels_seed) % 3).collect();
            let p = c.purity(&labels);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

#[test]
fn pipeline_top_k_never_exceeds_cluster_count() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.01), 2).unwrap();
    for top_k in [1usize, 5, 10_000] {
        let out = Apollo::new(ApolloConfig {
            top_k,
            ..ApolloConfig::default()
        })
        .run(&ds, &Voting::default())
        .unwrap();
        assert!(out.ranked.len() <= top_k.min(out.assertion_count as usize));
    }
}
