//! Property-based tests for the clustering stage and pipeline output.

use proptest::collection::vec;
use proptest::prelude::*;
use socsense_apollo::{
    cluster_texts, cluster_texts_naive, cluster_texts_par, parse_tweets_jsonl,
    parse_tweets_jsonl_with, Apollo, ApolloConfig, ClusterConfig, Clustering, IngestConfig,
};
use socsense_baselines::Voting;
use socsense_matrix::Parallelism;
use socsense_twitter::{ScenarioConfig, TwitterDataset};

/// Random lowercase word.
fn word() -> impl Strategy<Value = String> {
    "[a-e]{2,5}"
}

fn texts() -> impl Strategy<Value = Vec<String>> {
    vec(vec(word(), 1..7).prop_map(|ws| ws.join(" ")), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clustering always yields a dense, total assignment.
    #[test]
    fn clustering_is_a_total_dense_partition(texts in texts(), threshold in 0.1f64..1.0) {
        let cfg = ClusterConfig {
            jaccard_threshold: threshold,
            ..ClusterConfig::default()
        };
        let c = cluster_texts(&texts, &cfg);
        prop_assert_eq!(c.assignment.len(), texts.len());
        // Cluster ids are dense: every id below cluster_count occurs.
        let mut seen = vec![false; c.cluster_count as usize];
        for &a in &c.assignment {
            prop_assert!(a < c.cluster_count);
            seen[a as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Members partition the input.
        let total: usize = c.members().iter().map(|m| m.len()).sum();
        prop_assert_eq!(total, texts.len());
    }

    /// Identical texts always share a cluster (Jaccard 1 >= any threshold).
    #[test]
    fn identical_texts_always_merge(base in vec(word(), 2..6), threshold in 0.1f64..1.0) {
        let text = base.join(" ");
        let texts = vec![text.clone(), text.clone(), "zzz yyy xxx www".to_string()];
        let cfg = ClusterConfig {
            jaccard_threshold: threshold,
            ..ClusterConfig::default()
        };
        let c = cluster_texts(&texts, &cfg);
        prop_assert_eq!(c.assignment[0], c.assignment[1]);
    }

    /// Raising the threshold never produces coarser clusterings.
    #[test]
    fn higher_threshold_is_finer(texts in texts()) {
        let count_at = |t: f64| {
            cluster_texts(
                &texts,
                &ClusterConfig {
                    jaccard_threshold: t,
                    ..ClusterConfig::default()
                },
            )
            .cluster_count
        };
        prop_assert!(count_at(0.3) <= count_at(0.9));
    }

    /// Purity is 1.0 when labels equal the clustering itself and never
    /// exceeds 1.0 for arbitrary labels.
    #[test]
    fn purity_bounds(texts in texts(), labels_seed in 0u32..10) {
        let c = cluster_texts(&texts, &ClusterConfig::default());
        if !texts.is_empty() {
            prop_assert!((c.purity(&c.assignment) - 1.0).abs() < 1e-12);
            let labels: Vec<u32> = (0..texts.len() as u32).map(|i| (i + labels_seed) % 3).collect();
            let p = c.purity(&labels);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

/// Relabels cluster ids by first occurrence, so two clusterings of the
/// same items compare as partitions regardless of id numbering.
fn canonical(labels: &[u32]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = map.len() as u32;
            *map.entry(l).or_insert(next)
        })
        .collect()
}

/// A deterministic permutation of `0..n` (Fisher–Yates over a
/// SplitMix64 stream seeded by `seed`).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A JSONL corpus where a chosen subset of lines is corrupted.
fn jsonl_with_bad_lines() -> impl Strategy<Value = String> {
    (1usize..400, vec(0usize..400, 0..4), 0u32..2).prop_map(|(n, bad, blank_tail)| {
        let bad: Vec<usize> = bad.iter().map(|&b| b % n).collect();
        let mut out = String::new();
        for i in 0..n {
            if bad.contains(&i) {
                out.push_str("{ not json\n");
            } else {
                out.push_str(&format!(
                    "{{\"id\":{i},\"user\":\"u{}\",\"time\":{i},\"text\":\"word{} word{}\"}}\n",
                    i % 13,
                    i % 7,
                    i % 5
                ));
            }
        }
        if blank_tail == 1 {
            out.push_str("\n   \n");
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The inverted-index fast path and the naive all-pairs oracle emit
    /// byte-identical clusterings.
    #[test]
    fn indexed_path_matches_naive_scan(
        texts in texts(),
        threshold in 0.1f64..1.0,
        max_df in 2usize..12,
    ) {
        let cfg = ClusterConfig {
            jaccard_threshold: threshold,
            max_token_df: max_df,
        };
        prop_assert_eq!(cluster_texts(&texts, &cfg), cluster_texts_naive(&texts, &cfg));
    }

    /// Every worker count emits byte-identical assignments.
    #[test]
    fn clustering_is_identical_across_parallelism(texts in texts(), threshold in 0.1f64..1.0) {
        let cfg = ClusterConfig {
            jaccard_threshold: threshold,
            ..ClusterConfig::default()
        };
        let serial = cluster_texts_par(&texts, &cfg, Parallelism::Serial);
        for par in [Parallelism::Threads(1), Parallelism::Threads(2), Parallelism::Threads(4)] {
            prop_assert_eq!(&serial, &cluster_texts_par(&texts, &cfg, par), "{:?}", par);
        }
    }

    /// Reordering the tweets permutes the clustering but never changes
    /// the partition itself.
    #[test]
    fn clustering_is_invariant_under_reordering(
        texts in texts(),
        perm_seed in 0u64..u64::MAX,
        threshold in 0.1f64..1.0,
    ) {
        let cfg = ClusterConfig {
            jaccard_threshold: threshold,
            ..ClusterConfig::default()
        };
        let base: Clustering = cluster_texts(&texts, &cfg);
        let perm = permutation(texts.len(), perm_seed);
        let permuted: Vec<String> = perm.iter().map(|&i| texts[i].clone()).collect();
        let shuffled = cluster_texts(&permuted, &cfg);
        prop_assert_eq!(base.cluster_count, shuffled.cluster_count);
        // Map the shuffled assignment back onto original positions.
        let mut unshuffled = vec![0u32; texts.len()];
        for (pos, &orig) in perm.iter().enumerate() {
            unshuffled[orig] = shuffled.assignment[pos];
        }
        prop_assert_eq!(canonical(&base.assignment), canonical(&unshuffled));
    }

    /// Chunked JSONL parsing matches the serial parser exactly — same
    /// tweets on success, same first error (line number and message)
    /// wherever the bad lines land.
    #[test]
    fn parallel_jsonl_parse_matches_serial(input in jsonl_with_bad_lines()) {
        let serial = parse_tweets_jsonl(&input);
        for par in [Parallelism::Threads(2), Parallelism::Threads(4), Parallelism::Auto] {
            let got = parse_tweets_jsonl_with(&input, &IngestConfig { parallelism: par });
            prop_assert_eq!(&serial, &got, "{:?}", par);
        }
    }
}

#[test]
fn pipeline_top_k_never_exceeds_cluster_count() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.01), 2).unwrap();
    for top_k in [1usize, 5, 10_000] {
        let out = Apollo::new(ApolloConfig {
            top_k,
            ..ApolloConfig::default()
        })
        .run(&ds, &Voting::default())
        .unwrap();
        assert!(out.ranked.len() <= top_k.min(out.assertion_count as usize));
    }
}
