//! Observability acceptance tests: metrics are observation-only (the
//! recorder never changes a ranked score or a served answer), and one
//! recorded session exports every instrumented metric family.

use socsense_apollo::{
    assemble_corpus, parse_tweets_jsonl, Apollo, ApolloConfig, Corpus, ServeOptions, ServeSession,
};
use socsense_baselines::EmExtFinder;
use socsense_core::Obs;
use socsense_twitter::{ScenarioConfig, TwitterDataset};

fn score_bits(out: &socsense_apollo::ApolloOutput) -> Vec<(u32, u64)> {
    out.ranked
        .iter()
        .map(|r| (r.assertion, r.score.to_bits()))
        .collect()
}

/// A full Apollo run (simulated corpus, text clustering, EM-Ext) with
/// the in-memory recorder attached produces posterior scores
/// bit-identical to the no-op-sink run, while the recorder captures the
/// pipeline, ingest, and EM families.
#[test]
fn recorded_apollo_run_is_bit_identical_to_noop_sink_run() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.02), 7)
        .expect("scenario simulates");
    let cfg = ApolloConfig {
        cluster_text: true,
        ..ApolloConfig::default()
    };

    let plain = Apollo::new(cfg.clone())
        .run(&ds, &EmExtFinder::default())
        .expect("no-op-sink run");

    let (obs, rec) = Obs::recorder();
    let traced = Apollo::new(cfg)
        .with_obs(obs.clone())
        .run(&ds, &EmExtFinder::default().with_obs(obs))
        .expect("recorded run");

    assert_eq!(
        score_bits(&plain),
        score_bits(&traced),
        "attaching the recorder must not change any ranked score bit"
    );
    assert_eq!(plain.assertion_count, traced.assertion_count);

    let snap = rec.snapshot();
    assert!(snap.counter("pipeline.tweets_total") > 0);
    assert!(snap.counter("ingest.cluster.texts_total") > 0);
    assert!(snap.counter("em.runs_total") >= 1);
    assert!(snap.counter("em.runs_converged_total") >= 1);
    assert!(snap.histogram("em.run.iterations").is_some());
    assert!(snap.histogram("pipeline.estimate.seconds").is_some());
}

fn corpus() -> Corpus {
    let jsonl = r#"
        {"id":1,"user":"sally","time":10,"text":"breaking explosion near bridge a1 #x"}
        {"id":2,"user":"bob","time":11,"text":"breaking explosion near bridge a1 #x"}
        {"id":3,"user":"john","time":12,"text":"breaking explosion near bridge a1 #x","retweet_of":1}
        {"id":4,"user":"mia","time":13,"text":"crowd gathers at stadium a2 #x"}
        {"id":5,"user":"sally","time":14,"text":"crowd gathers at stadium a2 #x"}
        {"id":6,"user":"zed","time":15,"text":"power outage downtown grid a3 #x"}
    "#;
    assemble_corpus(parse_tweets_jsonl(jsonl).unwrap(), &[]).unwrap()
}

/// One recorded serve session exports every instrumented family in a
/// single JSON-lines stream: EM convergence, ingest, bound, and
/// serve-latency metrics (the ISSUE's four-family acceptance check).
#[test]
fn one_serve_session_exports_all_four_metric_families() {
    let (extra, rec) = Obs::recorder();
    let (session, _) = ServeSession::start_with_obs(&corpus(), &ServeOptions::default(), extra)
        .expect("session starts");
    session.answer("posterior 0").expect("posterior answers");
    session.answer("bound").expect("bound answers");
    let via_command = session.answer("metrics").expect("metrics answers");
    session.finish().expect("clean shutdown");

    let jsonl = rec.snapshot().to_jsonl();
    for family in [
        // EM convergence trajectory of the streamed refits.
        "em.runs_total",
        "em.run.iterations",
        // Ingest: the corpus was text-clustered on the way in.
        "ingest.cluster.texts_total",
        // Bound evaluation driven by the `bound` query.
        "bound.assertions_total",
        // Serve-side request latency histograms.
        "serve.request.posterior.seconds",
        "serve.queue.wait_seconds",
    ] {
        assert!(
            jsonl.lines().any(|l| l.contains(family)),
            "exported JSONL missing metric family member `{family}`:\n{jsonl}"
        );
    }
    // The REPL `metrics` command reads from the same worker recorder.
    assert!(
        via_command.contains("serve.requests_total"),
        "{via_command}"
    );
}
