//! Bit-identity regression tests for the detlint D1 fixes: the
//! pipeline's truth-label majority vote and the clustering purity
//! counters used to iterate `HashMap`s, so count ties resolved by
//! hash-iteration order and could flip between runs or binaries. These
//! tests pin the `BTreeMap` behaviour: repeated runs are bit-identical
//! and ties resolve by assertion id, not by memory layout.

use socsense_apollo::{cluster_texts, Apollo, ApolloConfig, ClusterConfig};
use socsense_baselines::Voting;
use socsense_twitter::{ScenarioConfig, TruthValue, TwitterDataset};

#[test]
fn pipeline_output_is_bit_identical_across_repeated_runs() {
    let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.02), 7).unwrap();
    let apollo = Apollo::new(ApolloConfig::default());
    let a = apollo.run(&ds, &Voting::default()).unwrap();
    let b = apollo.run(&ds, &Voting::default()).unwrap();

    assert_eq!(a.ranked.len(), b.ranked.len());
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(x.assertion, y.assertion);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
        assert_eq!(x.truth, y.truth, "truth label flipped between runs");
        assert_eq!(x.sample_text, y.sample_text);
    }
    assert_eq!(
        a.cluster_purity.to_bits(),
        b.cluster_purity.to_bits(),
        "purity must be bit-identical across runs"
    );
}

/// Two assertions tweeted with the *same* text land in one cluster with
/// a 1–1 majority tie. The tie must resolve to the smallest assertion
/// id — with the old `HashMap` majority table it resolved to whichever
/// entry hash-iteration happened to visit last.
#[test]
fn truth_label_tie_resolves_to_smallest_assertion_id() {
    let mut ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.01), 3).unwrap();
    // Rewrite the corpus: assertions 0 and 1 share identical text (one
    // tweet each — a guaranteed majority tie), assertion 2 stands apart.
    let shared = "bridge closed at dawn".to_string();
    let keep = 3.min(ds.tweets.len());
    ds.tweets.truncate(keep);
    assert!(keep >= 3, "scaled scenario too small for the fixture");
    for (i, t) in ds.tweets.iter_mut().enumerate() {
        t.id = i as u64;
        t.source = i as u32;
        t.assertion = i as u32;
        t.time = i as u64;
        t.retweet_of = None;
        t.text = if i < 2 {
            shared.clone()
        } else {
            "unrelated festival announcement".to_string()
        };
    }

    // The tied assertions must carry different labels, or a flipped tie
    // would be invisible.
    ds.truth[0] = TruthValue::True;
    ds.truth[1] = TruthValue::False;

    let apollo = Apollo::new(ApolloConfig::default());
    let run = |ds: &TwitterDataset| apollo.run(ds, &Voting::default()).unwrap();

    let out = run(&ds);
    let tied = out
        .ranked
        .iter()
        .find(|r| r.sample_text == shared)
        .expect("shared-text cluster is ranked");
    assert_eq!(
        tied.truth,
        ds.truth_value(0),
        "1-1 count tie must take assertion 0 (smallest id)"
    );

    // Reversing tweet insertion order must not flip the tie: the two
    // tied entries enter the majority table in the opposite order, which
    // is exactly the case hash-iteration used to leak.
    let mut rev = ds.clone();
    rev.tweets.reverse();
    let out_rev = run(&rev);
    let tied_rev = out_rev
        .ranked
        .iter()
        .find(|r| r.sample_text == shared)
        .expect("shared-text cluster is ranked in reversed corpus");
    assert_eq!(tied_rev.truth, tied.truth, "tie flipped with insert order");
}

#[test]
fn purity_is_bit_identical_across_repeated_calls() {
    let texts: Vec<String> = (0..40)
        .map(|i| format!("token{} token{} token{}", i % 5, i % 3, i % 7))
        .collect();
    let c = cluster_texts(&texts, &ClusterConfig::default());
    // Labels engineered so several clusters have tied label counts.
    let labels: Vec<u32> = (0..texts.len() as u32).map(|i| i % 2).collect();
    let p0 = c.purity(&labels);
    for _ in 0..10 {
        assert_eq!(c.purity(&labels).to_bits(), p0.to_bits());
    }
}
