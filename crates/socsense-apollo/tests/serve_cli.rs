//! End-to-end test of `apollo serve`: replay a JSONL trace through the
//! real binary and answer queries from stdin.

use std::io::Write;
use std::process::{Command, Stdio};

const TRACE: &str = r#"{"id":1,"user":"sally","time":10,"text":"breaking explosion near bridge a1 #x"}
{"id":2,"user":"bob","time":11,"text":"breaking explosion near bridge a1 #x"}
{"id":3,"user":"john","time":12,"text":"breaking explosion near bridge a1 #x","retweet_of":1}
{"id":4,"user":"mia","time":13,"text":"crowd gathers at stadium a2 #x"}
{"id":5,"user":"sally","time":14,"text":"crowd gathers at stadium a2 #x"}
"#;

#[test]
fn apollo_serve_replays_and_answers_stdin_queries() {
    let dir = std::env::temp_dir().join(format!("apollo-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.jsonl");
    std::fs::write(&trace, TRACE).expect("write trace");

    let mut child = Command::new(env!("CARGO_BIN_EXE_apollo"))
        .args([
            "serve",
            "--input",
            trace.to_str().unwrap(),
            "--batches",
            "3",
            "--threads",
            "1",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn apollo serve");

    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"stats\nposterior 0\ntop-sources 3\nbound\nbound 0\nnope\nquit\n")
        .expect("write queries");
    let out = child.wait_with_output().expect("apollo serve exits");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert!(
        out.status.success(),
        "exit {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );

    // Startup banner reports the replay (5 claims over 2 clusters).
    assert!(
        stderr.contains("4 sources, 2 assertion clusters, 5 claims replayed in 3 batches"),
        "stderr:\n{stderr}"
    );
    // One answer line (or block) per query, in order.
    assert!(stdout.contains("claims=5 pending=0"), "stdout:\n{stdout}");
    assert!(stdout.contains("posterior 0 = "), "stdout:\n{stdout}");
    assert!(stdout.contains("top 3 of 4 sources:"), "stdout:\n{stdout}");
    assert!(stdout.contains("precision="), "stdout:\n{stdout}");
    assert!(
        stdout.contains("bound over 2 assertions: error=0."),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("bound over 1 assertions: error=0."),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("error: unknown command `nope`"),
        "stdout:\n{stdout}"
    );
    // Graceful shutdown reports final service stats.
    assert!(stderr.contains("shutdown:"), "stderr:\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn apollo_serve_requires_an_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_apollo"))
        .args(["serve"])
        .output()
        .expect("run apollo serve");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert!(stderr.contains("--input"), "stderr:\n{stderr}");
}
