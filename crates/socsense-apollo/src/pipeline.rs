//! The end-to-end Apollo pipeline.

use serde::{Deserialize, Serialize};

use socsense_baselines::FactFinder;
use socsense_core::{ClaimData, Obs, Parallelism, SenseError};
use socsense_discover::{discover_dependencies_traced, DiscoverConfig};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_twitter::{TruthValue, TwitterDataset};

use crate::cluster::{cluster_texts_traced, ClusterConfig, Clustering};

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ApolloConfig {
    /// When `true`, tweets are grouped by text clustering; when `false`
    /// (default) the simulator's assertion ids are trusted, isolating the
    /// estimator from clustering noise (the configuration the Fig. 11
    /// harness uses).
    pub cluster_text: bool,
    /// Clustering parameters (used only when `cluster_text` is on).
    pub cluster: ClusterConfig,
    /// How many ranked assertions to keep in the report (Apollo's
    /// top-100 by default).
    pub top_k: usize,
    /// Worker threads for the ingest *and* estimation stages. The
    /// pipeline shards text clustering over this many workers, and the
    /// CLI forwards it to the EM-family fact-finders it constructs
    /// (`--threads`); embedders configuring their own [`FactFinder`]
    /// should thread it through `EmConfig::parallelism` the same way.
    /// Never changes results — clustering merges shard-local union-finds
    /// in index order — only wall-clock time (see
    /// `socsense_matrix::parallel`).
    pub parallelism: Parallelism,
    /// When set, the dependency graph is *discovered* from the claim log
    /// (`socsense-discover`) instead of taken from the dataset's follower
    /// graph — the "unknown graph" deployment mode behind
    /// `apollo run --discover-deps`. Discovery runs after clustering, on
    /// the same claims the matrices are built from.
    pub discover: Option<DiscoverConfig>,
}

impl Default for ApolloConfig {
    fn default() -> Self {
        Self {
            cluster_text: false,
            cluster: ClusterConfig::default(),
            top_k: 100,
            parallelism: Parallelism::Auto,
            discover: None,
        }
    }
}

/// One ranked assertion in the pipeline output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedAssertion {
    /// Assertion (cluster) id in the pipeline's claim matrix.
    pub assertion: u32,
    /// Credence score from the configured fact-finder.
    pub score: f64,
    /// Number of distinct sources asserting it.
    pub support: usize,
    /// A representative tweet text.
    pub sample_text: String,
    /// Ground-truth label (majority of member tweets' assertions), kept
    /// for evaluation; a deployed Apollo would not have this column.
    pub truth: TruthValue,
}

/// Full pipeline output.
#[derive(Debug, Clone)]
pub struct ApolloOutput {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Top-k assertions, best first.
    pub ranked: Vec<RankedAssertion>,
    /// Number of assertions the pipeline operated on (clusters or ids).
    pub assertion_count: u32,
    /// Clustering purity against simulator ids (1.0 when clustering is
    /// bypassed).
    pub cluster_purity: f64,
    /// The claim matrices handed to the estimator.
    pub claim_data: ClaimData,
}

impl ApolloOutput {
    /// The paper's Fig. 11 metric over the top `k` of this ranking:
    /// `#True / (#True + #False + #Opinion)`.
    pub fn top_k_accuracy(&self, k: usize) -> f64 {
        let take = self.ranked.iter().take(k);
        let (mut true_n, mut total) = (0usize, 0usize);
        for r in take {
            total += 1;
            if r.truth.is_true() {
                true_n += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            true_n as f64 / total as f64
        }
    }
}

/// One ranked assertion from an external corpus (no ground truth column).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusRanked {
    /// Cluster id in the pipeline's claim matrix.
    pub assertion: u32,
    /// Credence score from the configured fact-finder.
    pub score: f64,
    /// Number of distinct sources asserting it.
    pub support: usize,
    /// A representative tweet text.
    pub sample_text: String,
}

/// Pipeline output for an external corpus.
#[derive(Debug, Clone)]
pub struct CorpusOutput {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Top-k assertions, best first.
    pub ranked: Vec<CorpusRanked>,
    /// Number of text clusters found.
    pub assertion_count: u32,
    /// The claim matrices handed to the estimator.
    pub claim_data: ClaimData,
}

/// The pipeline runner.
#[derive(Debug, Clone, Default)]
pub struct Apollo {
    config: ApolloConfig,
    obs: Obs,
}

impl Apollo {
    /// Creates a runner with the given configuration.
    pub fn new(config: ApolloConfig) -> Self {
        Self {
            config,
            obs: Obs::none(),
        }
    }

    /// Attaches a metrics handle; runs then report `pipeline.*` stage
    /// timings plus the `ingest.cluster.*` metrics of the clustering
    /// stage. To also capture `em.*` metrics, build the fact-finder
    /// with the same handle (the EM-family finders take one via
    /// `with_obs`). Observation-only: rankings are bit-identical with
    /// or without a sink.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Resolves the dependency graph for matrix construction: `None`
    /// means "use the dataset's follower graph"; `Some` carries the
    /// graph discovered from the claim log when
    /// [`ApolloConfig::discover`] is set.
    fn dependency_graph(
        &self,
        n: u32,
        m: u32,
        claims: &[TimedClaim],
    ) -> Result<Option<FollowerGraph>, SenseError> {
        let Some(discover) = &self.config.discover else {
            return Ok(None);
        };
        let stage_timer = self.obs.timer("pipeline.discover.seconds");
        let discovery = discover_dependencies_traced(
            n,
            m,
            claims,
            discover,
            self.config.parallelism,
            &self.obs,
        )
        .map_err(|e| match e {
            socsense_discover::DiscoverError::BadConfig { what } => SenseError::BadConfig { what },
            // Claims are built in-pipeline from dataset tweets, so this
            // is unreachable in practice; surface it as a shape error.
            socsense_discover::DiscoverError::ClaimOutOfBounds { n, .. } => {
                SenseError::DimensionMismatch {
                    what: "discovery claim source id",
                    expected: n as usize,
                    actual: n as usize,
                }
            }
            _ => SenseError::BadConfig {
                what: "dependency discovery failed",
            },
        })?;
        stage_timer.stop();
        self.obs
            .counter("pipeline.discovered_edges", discovery.edges.len() as u64);
        Ok(Some(discovery.graph))
    }

    /// Runs ingest → cluster → matrix construction → estimation → ranking.
    ///
    /// # Errors
    ///
    /// Propagates estimator failures as [`SenseError`].
    pub fn run(
        &self,
        dataset: &TwitterDataset,
        finder: &dyn FactFinder,
    ) -> Result<ApolloOutput, SenseError> {
        if dataset.tweets.is_empty() {
            return Err(SenseError::EmptyData);
        }
        let _run_timer = self.obs.timer("pipeline.run.seconds");
        self.obs
            .counter("pipeline.tweets_total", dataset.tweets.len() as u64);

        // Stage 2: assertion identity per tweet.
        let (tweet_cluster, cluster_count, purity) = if self.config.cluster_text {
            let texts: Vec<String> = dataset.tweets.iter().map(|t| t.text.clone()).collect();
            let clustering: Clustering = cluster_texts_traced(
                &texts,
                &self.config.cluster,
                self.config.parallelism,
                &self.obs,
            )
            .0;
            let labels: Vec<u32> = dataset.tweets.iter().map(|t| t.assertion).collect();
            let purity = clustering.purity(&labels);
            (clustering.assignment, clustering.cluster_count, purity)
        } else {
            let ids: Vec<u32> = dataset.tweets.iter().map(|t| t.assertion).collect();
            (ids, dataset.assertion_count(), 1.0)
        };

        // Stage 3: SC / D from clustered claims + follow graph (given
        // or discovered from the claim log itself).
        let claims: Vec<TimedClaim> = dataset
            .tweets
            .iter()
            .zip(&tweet_cluster)
            .map(|(t, &c)| TimedClaim::new(t.source, c, t.time))
            .collect();
        let graph = self.dependency_graph(dataset.source_count(), cluster_count.max(1), &claims)?;
        let data = ClaimData::from_claims(
            dataset.source_count(),
            cluster_count.max(1),
            &claims,
            graph.as_ref().unwrap_or(&dataset.graph),
        );

        // Stage 4: estimation. Ranking scores (log-odds for the EM
        // family) avoid posterior saturation ties in the top-k.
        let fit_timer = self.obs.timer("pipeline.estimate.seconds");
        let scores = finder.ranking_scores(&data)?;
        fit_timer.stop();

        // Stage 5: ranking with representative text + ground truth.
        let mut sample_text: Vec<Option<&str>> = vec![None; cluster_count as usize];
        // BTreeMap, not HashMap: a count tie must resolve by assertion
        // id, not by hash-iteration order, or the reported truth label
        // flips between runs.
        let mut majority: Vec<std::collections::BTreeMap<u32, usize>> =
            vec![std::collections::BTreeMap::new(); cluster_count as usize];
        for (t, &c) in dataset.tweets.iter().zip(&tweet_cluster) {
            let cu = c as usize;
            sample_text[cu].get_or_insert(&t.text);
            *majority[cu].entry(t.assertion).or_default() += 1;
        }

        let mut order: Vec<u32> = (0..cluster_count).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let ranked: Vec<RankedAssertion> = order
            .into_iter()
            .take(self.config.top_k)
            .map(|c| {
                let cu = c as usize;
                let truth_assertion = majority[cu]
                    .iter()
                    .max_by_key(|(&a, &n)| (n, std::cmp::Reverse(a)))
                    .map(|(&a, _)| a);
                RankedAssertion {
                    assertion: c,
                    score: scores[cu],
                    support: data.sc().col_nnz(c),
                    sample_text: sample_text[cu].unwrap_or_default().to_owned(),
                    truth: truth_assertion
                        .map(|a| dataset.truth_value(a))
                        .unwrap_or(TruthValue::Opinion),
                }
            })
            .collect();

        Ok(ApolloOutput {
            dataset: dataset.name.clone(),
            algorithm: finder.name(),
            ranked,
            assertion_count: cluster_count,
            cluster_purity: purity,
            claim_data: data,
        })
    }
}

impl Apollo {
    /// Runs the pipeline on an externally ingested corpus (see
    /// [`crate::ingest`]). Text clustering always runs — external data
    /// carries no assertion ids — and the output has no ground-truth
    /// column.
    ///
    /// # Errors
    ///
    /// Propagates estimator failures; [`SenseError::EmptyData`] if the
    /// corpus holds no tweets.
    pub fn run_corpus(
        &self,
        corpus: &crate::ingest::Corpus,
        finder: &dyn FactFinder,
    ) -> Result<CorpusOutput, SenseError> {
        if corpus.tweets.is_empty() {
            return Err(SenseError::EmptyData);
        }
        let _run_timer = self.obs.timer("pipeline.run.seconds");
        self.obs
            .counter("pipeline.tweets_total", corpus.tweets.len() as u64);
        let texts: Vec<String> = corpus.tweets.iter().map(|t| t.text.clone()).collect();
        let clustering = cluster_texts_traced(
            &texts,
            &self.config.cluster,
            self.config.parallelism,
            &self.obs,
        )
        .0;
        let claims: Vec<TimedClaim> = corpus
            .tweets
            .iter()
            .zip(&clustering.assignment)
            .map(|(t, &c)| TimedClaim::new(t.source, c, t.time))
            .collect();
        let graph = self.dependency_graph(
            corpus.source_count(),
            clustering.cluster_count.max(1),
            &claims,
        )?;
        let data = ClaimData::from_claims(
            corpus.source_count(),
            clustering.cluster_count.max(1),
            &claims,
            graph.as_ref().unwrap_or(&corpus.graph),
        );
        let fit_timer = self.obs.timer("pipeline.estimate.seconds");
        let scores = finder.ranking_scores(&data)?;
        fit_timer.stop();

        let mut sample_text: Vec<Option<&str>> = vec![None; clustering.cluster_count as usize];
        for (t, &c) in corpus.tweets.iter().zip(&clustering.assignment) {
            sample_text[c as usize].get_or_insert(&t.text);
        }
        let mut order: Vec<u32> = (0..clustering.cluster_count).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let ranked = order
            .into_iter()
            .take(self.config.top_k)
            .map(|c| CorpusRanked {
                assertion: c,
                score: scores[c as usize],
                support: data.sc().col_nnz(c),
                sample_text: sample_text[c as usize].unwrap_or_default().to_owned(),
            })
            .collect();
        Ok(CorpusOutput {
            algorithm: finder.name(),
            ranked,
            assertion_count: clustering.cluster_count,
            claim_data: data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_baselines::{EmExtFinder, Voting};
    use socsense_twitter::ScenarioConfig;

    fn dataset() -> TwitterDataset {
        TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.02), 21).unwrap()
    }

    #[test]
    fn pipeline_with_known_ids_ranks_all_assertions() {
        let ds = dataset();
        let out = Apollo::new(ApolloConfig::default())
            .run(&ds, &Voting::default())
            .unwrap();
        assert_eq!(out.assertion_count, ds.assertion_count());
        assert_eq!(out.cluster_purity, 1.0);
        assert!(out.ranked.len() <= 100);
        // Ranking is by non-increasing score.
        for w in out.ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn pipeline_with_text_clustering_stays_faithful() {
        let ds = dataset();
        let cfg = ApolloConfig {
            cluster_text: true,
            ..ApolloConfig::default()
        };
        let out = Apollo::new(cfg).run(&ds, &Voting::default()).unwrap();
        assert!(out.cluster_purity > 0.9, "purity {:.3}", out.cluster_purity);
        // Cluster count lands near the number of *tweeted* assertions.
        let tweeted: std::collections::HashSet<u32> =
            ds.tweets.iter().map(|t| t.assertion).collect();
        let ratio = out.assertion_count as f64 / tweeted.len() as f64;
        assert!(
            (0.7..=1.4).contains(&ratio),
            "cluster/assertion ratio {ratio:.2}"
        );
    }

    #[test]
    fn top_k_accuracy_is_a_fraction() {
        let ds = dataset();
        let out = Apollo::new(ApolloConfig::default())
            .run(&ds, &EmExtFinder::default())
            .unwrap();
        let acc = out.top_k_accuracy(50);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn em_ext_beats_chance_on_simulated_data() {
        let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.05), 21).unwrap();
        let out = Apollo::new(ApolloConfig::default())
            .run(&ds, &EmExtFinder::default())
            .unwrap();
        // Base rate: share of True among all assertions ≈ 0.51.
        let base = ds.truth.iter().filter(|t| t.is_true()).count() as f64 / ds.truth.len() as f64;
        let acc = out.top_k_accuracy(30);
        assert!(
            acc > base + 0.1,
            "top-30 accuracy {acc:.2} vs base rate {base:.2}"
        );
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut ds = dataset();
        ds.tweets.clear();
        assert!(matches!(
            Apollo::new(ApolloConfig::default()).run(&ds, &Voting::default()),
            Err(SenseError::EmptyData)
        ));
    }

    #[test]
    fn external_corpus_runs_end_to_end() {
        let jsonl = r#"
            {"id":1,"user":"sally","time":10,"text":"breaking explosion near bridge a1 #x"}
            {"id":2,"user":"bob","time":11,"text":"breaking explosion near bridge a1 #x"}
            {"id":3,"user":"john","time":12,"text":"breaking explosion near bridge a1 #x","retweet_of":1}
            {"id":4,"user":"mia","time":13,"text":"crowd gathers at stadium a2 #x"}
        "#;
        let tweets = crate::ingest::parse_tweets_jsonl(jsonl).unwrap();
        let corpus = crate::ingest::assemble_corpus(tweets, &[]).unwrap();
        let out = Apollo::new(ApolloConfig::default())
            .run_corpus(&corpus, &Voting::default())
            .unwrap();
        assert_eq!(out.assertion_count, 2);
        assert_eq!(out.ranked.len(), 2);
        // The explosion cluster has 3 supporters and ranks first.
        assert_eq!(out.ranked[0].support, 3);
        assert!(out.ranked[0].sample_text.contains("explosion"));
        // John's repeat arrived after Sally's original via a retweet edge,
        // so his cell is dependent.
        let john = corpus.source_id("john").unwrap();
        let cluster = out.ranked[0].assertion;
        assert!(out.claim_data.dependent(john, cluster));
    }
}
