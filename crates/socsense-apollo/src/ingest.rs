//! External-data ingestion: run the pipeline on a real tweet corpus.
//!
//! The paper's Apollo consumed crawled tweets and "used retweet behaviors
//! and other indicators to empirically construct a dependency network".
//! This module reproduces that input path so the tool works beyond the
//! simulator:
//!
//! * tweets arrive as JSON Lines — one object per line with `user`,
//!   `time`, `text`, and optionally `id` and `retweet_of` (the id of the
//!   reposted tweet);
//! * an optional `follower,followee` CSV supplies explicit follow edges;
//! * every observed retweet additionally induces a follow edge from the
//!   retweeter to the original author — the paper's retweet-derived
//!   dependency indicator.
//!
//! Usernames are interned to dense source ids (sorted, so ingestion is
//! deterministic regardless of input order).

use serde::Deserialize;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use socsense_graph::FollowerGraph;
use socsense_matrix::{parallel, Parallelism};
use socsense_obs::Obs;

/// Configuration for the ingest stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestConfig {
    /// Worker threads for chunked JSONL parsing
    /// ([`parse_tweets_jsonl_with`]). Chunk boundaries are a pure
    /// function of the line count, chunk results merge in line order,
    /// and the first error in that order wins — so outputs *and* error
    /// line numbers are identical at every setting; only wall-clock
    /// time changes.
    pub parallelism: Parallelism,
}

/// One tweet as parsed from a JSONL line.
#[derive(Debug, Clone, PartialEq, Eq, Deserialize)]
pub struct RawTweet {
    /// Optional unique tweet id; required for tweets that others retweet.
    #[serde(default)]
    pub id: Option<u64>,
    /// Author handle.
    pub user: String,
    /// Timestamp (any monotone integer unit).
    pub time: u64,
    /// Tweet text.
    pub text: String,
    /// Id of the original tweet when this is a retweet.
    #[serde(default)]
    pub retweet_of: Option<u64>,
}

/// A corpus ready for [`crate::Apollo::run_corpus`].
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Interned handles, index = source id.
    pub usernames: Vec<String>,
    /// `(source id, time, text)` per tweet, time-ordered.
    pub tweets: Vec<CorpusTweet>,
    /// Explicit follows plus retweet-derived edges.
    pub graph: FollowerGraph,
}

/// One ingested tweet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusTweet {
    /// Dense source id (index into [`Corpus::usernames`]).
    pub source: u32,
    /// Timestamp.
    pub time: u64,
    /// Text, as supplied.
    pub text: String,
}

impl Corpus {
    /// Number of interned sources.
    pub fn source_count(&self) -> u32 {
        self.usernames.len() as u32
    }

    /// Looks up a source id by handle.
    pub fn source_id(&self, user: &str) -> Option<u32> {
        self.usernames
            .binary_search_by(|u| u.as_str().cmp(user))
            .ok()
            .map(|i| i as u32)
    }
}

/// Errors from parsing or assembling external data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IngestError {
    /// A JSONL line failed to parse.
    BadJson {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A CSV line did not have exactly two fields.
    BadCsv {
        /// 1-based line number.
        line: usize,
    },
    /// A `retweet_of` referenced an id no tweet carries.
    UnknownRetweetTarget {
        /// The dangling id.
        id: u64,
    },
    /// No tweets were supplied.
    Empty,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::BadJson { line, message } => {
                write!(f, "line {line}: invalid tweet JSON: {message}")
            }
            IngestError::BadCsv { line } => {
                write!(f, "line {line}: expected `follower,followee`")
            }
            IngestError::UnknownRetweetTarget { id } => {
                write!(f, "retweet_of references unknown tweet id {id}")
            }
            IngestError::Empty => write!(f, "no tweets in input"),
        }
    }
}

impl Error for IngestError {}

/// Parses a JSON-Lines tweet dump. Blank lines are skipped.
///
/// Serial convenience wrapper around [`parse_tweets_jsonl_with`].
///
/// # Errors
///
/// Returns [`IngestError::BadJson`] with the offending line number.
pub fn parse_tweets_jsonl(input: &str) -> Result<Vec<RawTweet>, IngestError> {
    parse_tweets_jsonl_with(
        input,
        &IngestConfig {
            parallelism: Parallelism::Serial,
        },
    )
}

/// Parses a JSON-Lines tweet dump over `config.parallelism` workers.
/// Blank lines are skipped.
///
/// Lines are split into fixed chunks by line index; each chunk parses
/// independently and stops at its first bad line. Chunk results are
/// merged in line order and the first error in that order is returned,
/// so both the parsed output and the reported error (line number and
/// message) are byte-identical to the serial parser at every
/// parallelism level.
///
/// # Errors
///
/// Returns [`IngestError::BadJson`] with the offending 1-based line
/// number — the same line the serial parser would report.
pub fn parse_tweets_jsonl_with(
    input: &str,
    config: &IngestConfig,
) -> Result<Vec<RawTweet>, IngestError> {
    parse_tweets_jsonl_traced(input, config, &Obs::none())
}

/// [`parse_tweets_jsonl_with`] reporting `ingest.parse.*` metrics to
/// `obs`: wall time, line/tweet totals, and throughput. Observation-only
/// — output and error line numbers are identical to the untraced call.
///
/// # Errors
///
/// See [`parse_tweets_jsonl`].
pub fn parse_tweets_jsonl_traced(
    input: &str,
    config: &IngestConfig,
    obs: &Obs,
) -> Result<Vec<RawTweet>, IngestError> {
    let timer = obs.timer("ingest.parse.seconds");
    let lines: Vec<&str> = input.lines().collect();
    let chunks: Vec<Result<Vec<RawTweet>, IngestError>> =
        parallel::par_chunks(config.parallelism, lines.len(), |range| {
            let mut out = Vec::new();
            for idx in range {
                let line = lines[idx].trim();
                if line.is_empty() {
                    continue;
                }
                match serde_json::from_str::<RawTweet>(line) {
                    Ok(tweet) => out.push(tweet),
                    Err(e) => {
                        return Err(IngestError::BadJson {
                            line: idx + 1,
                            message: e.to_string(),
                        })
                    }
                }
            }
            Ok(out)
        });
    let mut out = Vec::new();
    for chunk in chunks {
        out.extend(chunk?);
    }
    if obs.enabled() {
        obs.counter("ingest.parse.lines_total", lines.len() as u64);
        obs.counter("ingest.parse.tweets_total", out.len() as u64);
        let secs = timer.stop();
        if secs > 0.0 {
            obs.gauge("ingest.parse.tweets_per_sec", out.len() as f64 / secs);
        }
    }
    Ok(out)
}

/// Parses a `follower,followee` CSV (no header). Blank lines are skipped;
/// whitespace around handles is trimmed.
///
/// # Errors
///
/// Returns [`IngestError::BadCsv`] with the offending line number.
pub fn parse_follows_csv(input: &str) -> Result<Vec<(String, String)>, IngestError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) if !a.trim().is_empty() && !b.trim().is_empty() => {
                out.push((a.trim().to_owned(), b.trim().to_owned()));
            }
            _ => return Err(IngestError::BadCsv { line: idx + 1 }),
        }
    }
    Ok(out)
}

/// Assembles a corpus: interns users, wires explicit follow edges, and
/// derives one follow edge per observed retweet (retweeter → original
/// author), the paper's retweet-based dependency indicator.
///
/// # Errors
///
/// * [`IngestError::Empty`] — no tweets.
/// * [`IngestError::UnknownRetweetTarget`] — a `retweet_of` id matches no
///   tweet with an `id`.
pub fn assemble_corpus(
    tweets: Vec<RawTweet>,
    follows: &[(String, String)],
) -> Result<Corpus, IngestError> {
    if tweets.is_empty() {
        return Err(IngestError::Empty);
    }
    // Deterministic interning: sorted unique handles from both inputs.
    let mut usernames: Vec<String> = tweets
        .iter()
        .map(|t| t.user.clone())
        .chain(follows.iter().flat_map(|(a, b)| [a.clone(), b.clone()]))
        .collect();
    usernames.sort_unstable();
    usernames.dedup();
    let id_of: HashMap<&str, u32> = usernames
        .iter()
        .enumerate()
        .map(|(i, u)| (u.as_str(), i as u32))
        .collect();

    let mut graph = FollowerGraph::new(usernames.len() as u32);
    for (follower, followee) in follows {
        let (a, b) = (id_of[follower.as_str()], id_of[followee.as_str()]);
        if a != b {
            graph.add_follow(a, b);
        }
    }
    // Retweet-derived edges.
    let author_of: HashMap<u64, &str> = tweets
        .iter()
        .filter_map(|t| t.id.map(|id| (id, t.user.as_str())))
        .collect();
    for t in &tweets {
        if let Some(orig) = t.retweet_of {
            let original_author = author_of
                .get(&orig)
                .ok_or(IngestError::UnknownRetweetTarget { id: orig })?;
            let (a, b) = (id_of[t.user.as_str()], id_of[*original_author]);
            if a != b {
                graph.add_follow(a, b);
            }
        }
    }

    let mut out: Vec<CorpusTweet> = tweets
        .into_iter()
        .map(|t| CorpusTweet {
            source: id_of[t.user.as_str()],
            time: t.time,
            text: t.text,
        })
        .collect();
    out.sort_by_key(|t| (t.time, t.source));
    Ok(Corpus {
        usernames,
        tweets: out,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        {"id": 1, "user": "sally", "time": 10, "text": "main street congested"}
        {"id": 2, "user": "heather", "time": 11, "text": "university ave congested"}
        {"id": 3, "user": "john", "time": 12, "text": "main street congested", "retweet_of": 1}
        {"user": "john", "time": 13, "text": "university ave congested"}
    "#;

    #[test]
    fn jsonl_parses_with_optional_fields() {
        let tweets = parse_tweets_jsonl(SAMPLE).unwrap();
        assert_eq!(tweets.len(), 4);
        assert_eq!(tweets[0].id, Some(1));
        assert_eq!(tweets[3].id, None);
        assert_eq!(tweets[2].retweet_of, Some(1));
    }

    #[test]
    fn jsonl_reports_bad_lines() {
        let err = parse_tweets_jsonl("{\"user\": \"x\"}\n").unwrap_err();
        assert!(matches!(err, IngestError::BadJson { line: 1, .. }));
        let err =
            parse_tweets_jsonl("{\"user\":\"x\",\"time\":1,\"text\":\"t\"}\nnot json").unwrap_err();
        assert!(matches!(err, IngestError::BadJson { line: 2, .. }));
    }

    #[test]
    fn csv_parses_and_validates() {
        let ok = parse_follows_csv("john, sally\n\nheather,sally\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0], ("john".into(), "sally".into()));
        assert!(matches!(
            parse_follows_csv("justonefield"),
            Err(IngestError::BadCsv { line: 1 })
        ));
        assert!(matches!(
            parse_follows_csv("a,b,c"),
            Err(IngestError::BadCsv { line: 1 })
        ));
    }

    #[test]
    fn corpus_interns_users_and_derives_retweet_edges() {
        let tweets = parse_tweets_jsonl(SAMPLE).unwrap();
        let corpus = assemble_corpus(tweets, &[("heather".into(), "sally".into())]).unwrap();
        assert_eq!(corpus.source_count(), 3);
        // Sorted interning: heather < john < sally.
        assert_eq!(corpus.usernames, vec!["heather", "john", "sally"]);
        let john = corpus.source_id("john").unwrap();
        let sally = corpus.source_id("sally").unwrap();
        let heather = corpus.source_id("heather").unwrap();
        // Explicit edge.
        assert!(corpus.graph.follows(heather, sally));
        // Retweet-derived edge: john retweeted sally's tweet 1.
        assert!(corpus.graph.follows(john, sally));
        // Tweets are time-ordered.
        for w in corpus.tweets.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn dangling_retweet_is_an_error() {
        let tweets =
            parse_tweets_jsonl(r#"{"user":"a","time":1,"text":"x","retweet_of":99}"#).unwrap();
        assert!(matches!(
            assemble_corpus(tweets, &[]),
            Err(IngestError::UnknownRetweetTarget { id: 99 })
        ));
    }

    #[test]
    fn empty_corpus_is_an_error() {
        assert!(matches!(
            assemble_corpus(vec![], &[]),
            Err(IngestError::Empty)
        ));
    }

    /// Worker-count ladder used by the parallel-parsing tests.
    const LEVELS: [Parallelism; 4] = [
        Parallelism::Serial,
        Parallelism::Threads(1),
        Parallelism::Threads(2),
        Parallelism::Threads(4),
    ];

    #[test]
    fn parallel_parse_matches_serial_output() {
        // Enough lines for several of the fixed chunks.
        let jsonl: String = (0..500)
            .map(|i| {
                format!(
                    "{{\"id\":{i},\"user\":\"u{}\",\"time\":{i},\"text\":\"tweet {i}\"}}\n",
                    i % 17
                )
            })
            .collect();
        let serial = parse_tweets_jsonl(&jsonl).unwrap();
        assert_eq!(serial.len(), 500);
        for par in LEVELS {
            let got = parse_tweets_jsonl_with(&jsonl, &IngestConfig { parallelism: par }).unwrap();
            assert_eq!(serial, got, "{par:?}");
        }
    }

    #[test]
    fn parallel_parse_reports_serial_error_lines() {
        // Bad lines land in different fixed chunks (chunk size is
        // len/64, so for 500 lines chunks span 8 lines each); every
        // parallelism level must surface the earliest one, exactly as
        // the serial parser does.
        for &(bad_a, bad_b) in &[(3usize, 400usize), (120, 121), (0, 499), (499, 499)] {
            let jsonl: String = (0..500)
                .map(|i| {
                    if i == bad_a || i == bad_b {
                        "definitely not json\n".to_string()
                    } else {
                        format!("{{\"user\":\"u\",\"time\":{i},\"text\":\"t\"}}\n")
                    }
                })
                .collect();
            let serial_err = parse_tweets_jsonl(&jsonl).unwrap_err();
            assert!(
                matches!(serial_err, IngestError::BadJson { line, .. } if line == bad_a.min(bad_b) + 1)
            );
            for par in LEVELS {
                let err = parse_tweets_jsonl_with(&jsonl, &IngestConfig { parallelism: par })
                    .unwrap_err();
                assert_eq!(serial_err, err, "{par:?}");
            }
        }
    }

    #[test]
    fn ingestion_is_deterministic_under_reordering() {
        let mut tweets = parse_tweets_jsonl(SAMPLE).unwrap();
        let a = assemble_corpus(tweets.clone(), &[]).unwrap();
        tweets.reverse();
        let b = assemble_corpus(tweets, &[]).unwrap();
        assert_eq!(a.usernames, b.usernames);
        assert_eq!(a.tweets, b.tweets);
        assert_eq!(a.graph, b.graph);
    }
}
