//! Plain-text rendering of pipeline output.

use std::fmt::Write as _;

use socsense_twitter::TruthValue;

use crate::pipeline::ApolloOutput;

/// Renders an [`ApolloOutput`] as a fixed-width text report, the way the
/// Apollo tool surfaces its ranked feed.
pub fn render_report(out: &ApolloOutput, k: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Apollo report: {} via {} ({} assertions, purity {:.3}) ==",
        out.dataset, out.algorithm, out.assertion_count, out.cluster_purity
    );
    let _ = writeln!(
        s,
        "{:>5}  {:>8}  {:>7}  {:<7}  text",
        "rank", "score", "support", "truth"
    );
    for (rank, r) in out.ranked.iter().take(k).enumerate() {
        let label = match r.truth {
            TruthValue::True => "TRUE",
            TruthValue::False => "FALSE",
            TruthValue::Opinion => "OPINION",
        };
        let _ = writeln!(
            s,
            "{:>5}  {:>8.4}  {:>7}  {:<7}  {}",
            rank + 1,
            r.score,
            r.support,
            label,
            r.sample_text
        );
    }
    let _ = writeln!(
        s,
        "top-{} accuracy (#True / top-{}): {:.3}",
        k,
        k,
        out.top_k_accuracy(k)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Apollo, ApolloConfig};
    use socsense_baselines::Voting;
    use socsense_twitter::{ScenarioConfig, TwitterDataset};

    #[test]
    fn report_contains_header_rows_and_metric() {
        let ds = TwitterDataset::simulate(&ScenarioConfig::superbug().scaled(0.01), 4).unwrap();
        let out = Apollo::new(ApolloConfig::default())
            .run(&ds, &Voting::default())
            .unwrap();
        let text = render_report(&out, 10);
        assert!(text.contains("Apollo report: Superbug via Voting"));
        assert!(text.contains("top-10 accuracy"));
        // One line per ranked row (up to 10) plus header/footer.
        assert!(text.lines().count() >= 5);
    }
}
