//! Token-shingle clustering of tweets into assertions.
//!
//! Apollo's first stage must decide which tweets "say the same thing".
//! The merge rule is symmetric and local: two tweets belong to the same
//! assertion when (a) they share at least one *indexable* token — one
//! whose document frequency lies in `[2, max_token_df]`, since a token
//! appearing everywhere (a scenario hashtag) carries no grouping signal
//! — and (b) their token-set Jaccard similarity clears a threshold.
//! Clusters are the connected components of that relation, so the
//! partition is independent of tweet order and of the order in which
//! matching pairs are discovered.
//!
//! Evaluating the rule naively costs `n(n-1)/2` Jaccard comparisons
//! ([`cluster_texts_naive`], kept as the testing oracle). The fast path
//! interns tokens once, builds an inverted index `token id → tweet ids`,
//! and evaluates exact Jaccard only on pairs the index nominates —
//! pairs sharing at least one indexable token — after a size-ratio
//! prefilter (`J(a,b) ≤ min(|a|,|b|)/max(|a|,|b|)`, so a pair whose
//! length ratio is below the threshold cannot match). Matches merge
//! through a union-find; candidate generation shards over
//! `socsense_matrix::parallel` chunks keyed purely by tweet index, and
//! shard-local union-finds merge in shard order, so every
//! [`Parallelism`] level emits byte-identical assignments (see
//! [`socsense_matrix::UnionFind`] for the determinism argument).

use std::collections::{BTreeMap, HashMap};

use socsense_matrix::{parallel, Parallelism, UnionFind};
use socsense_obs::Obs;

/// Configuration for [`cluster_texts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Minimum token-set Jaccard similarity to merge two tweets.
    pub jaccard_threshold: f64,
    /// Tokens occurring in more than this many tweets are ignored for
    /// candidate generation (they still count toward similarity).
    pub max_token_df: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            jaccard_threshold: 0.5,
            max_token_df: 200,
        }
    }
}

/// Result of [`cluster_texts`]: a dense cluster id per input text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `assignment[i]` = cluster id of text `i`, in `0..cluster_count`.
    pub assignment: Vec<u32>,
    /// Number of distinct clusters.
    pub cluster_count: u32,
}

impl Clustering {
    /// Members of each cluster, indexed by cluster id.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.cluster_count as usize];
        for (i, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(i as u32);
        }
        out
    }

    /// Purity against reference labels: the fraction of texts whose
    /// cluster's majority reference label matches their own.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != assignment.len()`.
    pub fn purity(&self, labels: &[u32]) -> f64 {
        assert_eq!(labels.len(), self.assignment.len(), "label count mismatch");
        if labels.is_empty() {
            return 1.0;
        }
        let mut correct = 0usize;
        for members in self.members() {
            let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
            for &i in &members {
                *counts.entry(labels[i as usize]).or_default() += 1;
            }
            correct += counts.values().copied().max().unwrap_or(0);
        }
        correct as f64 / labels.len() as f64
    }
}

/// Work counters from one [`cluster_texts_with_stats`] run, recording
/// how much of the quadratic pair space the inverted index pruned away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Number of input texts.
    pub texts: usize,
    /// Distinct pairs the inverted index nominated (shared ≥ 1
    /// indexable token), before the size-ratio prefilter.
    pub candidate_pairs: u64,
    /// Exact Jaccard evaluations performed (candidates surviving the
    /// size-ratio prefilter).
    pub jaccard_comparisons: u64,
    /// Jaccard evaluations the naive all-pairs scan performs for the
    /// same input: `n(n-1)/2`.
    pub naive_comparisons: u64,
}

fn tokenize(text: &str) -> Vec<&str> {
    text.split_whitespace()
        .filter(|t| !t.eq_ignore_ascii_case("rt"))
        .collect()
}

/// Jaccard similarity of two sorted, deduplicated id slices.
fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Tweets tokenized into interned shingle ids, plus the inverted index.
struct TokenizedCorpus {
    /// Per tweet: sorted, deduplicated token ids.
    ids: Vec<Vec<u32>>,
    /// Posting list per token id, tweet ids ascending. Only *indexable*
    /// tokens (document frequency in `[2, max_token_df]`) keep their
    /// postings; the rest are emptied.
    postings: Vec<Vec<u32>>,
    /// Whether each token id is indexable.
    indexable: Vec<bool>,
}

/// Tokenizes in parallel chunks, then interns serially in tweet order so
/// token ids are a pure function of the input (not of the worker count).
fn tokenize_corpus(texts: &[String], max_token_df: usize, par: Parallelism) -> TokenizedCorpus {
    let words: Vec<Vec<&str>> =
        parallel::par_map_collect(par, texts.len(), |i| tokenize(&texts[i]));
    let mut intern: HashMap<&str, u32> = HashMap::new();
    let mut ids: Vec<Vec<u32>> = Vec::with_capacity(texts.len());
    for ws in &words {
        let mut v = Vec::with_capacity(ws.len());
        for &w in ws {
            let next = intern.len() as u32;
            v.push(*intern.entry(w).or_insert(next));
        }
        v.sort_unstable();
        v.dedup();
        ids.push(v);
    }
    let mut postings: Vec<Vec<u32>> = vec![Vec::new(); intern.len()];
    for (i, v) in ids.iter().enumerate() {
        for &t in v {
            postings[t as usize].push(i as u32);
        }
    }
    let mut indexable = vec![false; intern.len()];
    for (t, p) in postings.iter_mut().enumerate() {
        if p.len() >= 2 && p.len() <= max_token_df {
            indexable[t] = true;
        } else {
            p.clear();
        }
    }
    TokenizedCorpus {
        ids,
        postings,
        indexable,
    }
}

fn pair_count(n: usize) -> u64 {
    (n as u64) * (n as u64).saturating_sub(1) / 2
}

/// Clusters texts by token-set similarity (serial fast path).
///
/// Equivalent to [`cluster_texts_par`] with [`Parallelism::Serial`]; see
/// the module docs for the merge rule and the candidate-pruning scheme.
///
/// # Panics
///
/// Panics if `config.jaccard_threshold` is outside `[0, 1]`.
pub fn cluster_texts(texts: &[String], config: &ClusterConfig) -> Clustering {
    cluster_texts_par(texts, config, Parallelism::Serial)
}

/// Clusters texts with the inverted-index fast path, sharding candidate
/// generation over `par` workers. Assignments are byte-identical at
/// every parallelism level and equal to [`cluster_texts_naive`].
///
/// # Panics
///
/// Panics if `config.jaccard_threshold` is outside `[0, 1]`.
pub fn cluster_texts_par(texts: &[String], config: &ClusterConfig, par: Parallelism) -> Clustering {
    cluster_texts_with_stats(texts, config, par).0
}

/// [`cluster_texts_par`] plus the [`ClusterStats`] work counters.
///
/// # Panics
///
/// Panics if `config.jaccard_threshold` is outside `[0, 1]`.
pub fn cluster_texts_with_stats(
    texts: &[String],
    config: &ClusterConfig,
    par: Parallelism,
) -> (Clustering, ClusterStats) {
    cluster_texts_traced(texts, config, par, &Obs::none())
}

/// [`cluster_texts_with_stats`] reporting `ingest.cluster.*` metrics to
/// `obs`: wall time, text/candidate/comparison totals, and the cluster
/// count. Observation-only — assignments are byte-identical to the
/// untraced call.
///
/// # Panics
///
/// Panics if `config.jaccard_threshold` is outside `[0, 1]`.
pub fn cluster_texts_traced(
    texts: &[String],
    config: &ClusterConfig,
    par: Parallelism,
    obs: &Obs,
) -> (Clustering, ClusterStats) {
    let timer = obs.timer("ingest.cluster.seconds");
    assert!(
        (0.0..=1.0).contains(&config.jaccard_threshold),
        "jaccard_threshold must be in [0, 1]"
    );
    let n = texts.len();
    let threshold = config.jaccard_threshold;
    let corpus = tokenize_corpus(texts, config.max_token_df, par);

    // Shard candidate generation + exact Jaccard by tweet index. Each
    // shard records its merges in a local union-find; shards are merged
    // below in shard-index order (the partition is order-free anyway —
    // connected components don't depend on edge order).
    let shards: Vec<(UnionFind, u64, u64)> = parallel::par_chunks(par, n, |range| {
        let mut uf = UnionFind::new(n);
        let mut seen: Vec<u32> = vec![u32::MAX; n];
        let mut cands: Vec<u32> = Vec::new();
        let (mut candidate_pairs, mut comparisons) = (0u64, 0u64);
        for i in range {
            let iu = i as u32;
            cands.clear();
            for &tok in &corpus.ids[i] {
                for &j in &corpus.postings[tok as usize] {
                    if j >= iu {
                        break; // postings are ascending; rest is ≥ i
                    }
                    if seen[j as usize] != iu {
                        seen[j as usize] = iu;
                        cands.push(j);
                    }
                }
            }
            candidate_pairs += cands.len() as u64;
            let a = &corpus.ids[i];
            for &j in &cands {
                let b = &corpus.ids[j as usize];
                let (lo, hi) = (a.len().min(b.len()), a.len().max(b.len()));
                // J(a,b) ≤ lo/hi, and f64 division is monotone, so a
                // pair failing this test cannot clear the threshold.
                if (lo as f64) / (hi as f64) < threshold {
                    continue;
                }
                comparisons += 1;
                if jaccard_sorted(a, b) >= threshold {
                    uf.union(iu, j);
                }
            }
        }
        (uf, candidate_pairs, comparisons)
    });

    let mut uf = UnionFind::new(n);
    let mut stats = ClusterStats {
        texts: n,
        naive_comparisons: pair_count(n),
        ..ClusterStats::default()
    };
    for (shard, candidates, comparisons) in &shards {
        uf.merge_from(shard);
        stats.candidate_pairs += candidates;
        stats.jaccard_comparisons += comparisons;
    }
    let (assignment, cluster_count) = uf.dense_labels();
    if obs.enabled() {
        obs.counter("ingest.cluster.texts_total", n as u64);
        obs.counter(
            "ingest.cluster.candidate_pairs_total",
            stats.candidate_pairs,
        );
        obs.counter(
            "ingest.cluster.jaccard_comparisons_total",
            stats.jaccard_comparisons,
        );
        obs.gauge("ingest.cluster.clusters", cluster_count as f64);
        timer.stop();
    }
    (
        Clustering {
            assignment,
            cluster_count,
        },
        stats,
    )
}

/// Reference implementation: the all-pairs scan the inverted index
/// replaces. Evaluates every one of the `n(n-1)/2` pairs and applies
/// the identical merge rule, so its output is the oracle the fast path
/// is property-tested against.
///
/// # Panics
///
/// Panics if `config.jaccard_threshold` is outside `[0, 1]`.
pub fn cluster_texts_naive(texts: &[String], config: &ClusterConfig) -> Clustering {
    assert!(
        (0.0..=1.0).contains(&config.jaccard_threshold),
        "jaccard_threshold must be in [0, 1]"
    );
    let n = texts.len();
    let corpus = tokenize_corpus(texts, config.max_token_df, Parallelism::Serial);
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        let a = &corpus.ids[i];
        for j in 0..i {
            let b = &corpus.ids[j];
            // One merged walk computes the intersection and checks for
            // a shared indexable token.
            let (mut x, mut y, mut inter) = (0usize, 0usize, 0usize);
            let mut shares_indexable = false;
            while x < a.len() && y < b.len() {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        inter += 1;
                        shares_indexable |= corpus.indexable[a[x] as usize];
                        x += 1;
                        y += 1;
                    }
                }
            }
            let union = a.len() + b.len() - inter;
            let jac = if union == 0 {
                1.0
            } else {
                inter as f64 / union as f64
            };
            if shares_indexable && jac >= config.jaccard_threshold {
                uf.union(i as u32, j as u32);
            }
        }
    }
    let (assignment, cluster_count) = uf.dense_labels();
    Clustering {
        assignment,
        cluster_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn near_duplicates_cluster_together() {
        let texts = s(&[
            "breaking police confirm explosion near bridge a00001 #x",
            "RT police confirm explosion near bridge a00001 #x",
            "crowd observes rescue near stadium a00002 #x",
        ]);
        let c = cluster_texts(&texts, &ClusterConfig::default());
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
        assert_eq!(c.cluster_count, 2);
    }

    #[test]
    fn common_tokens_do_not_glue_everything() {
        // "#x" appears everywhere; with max_token_df small it is ignored
        // for candidate generation, so dissimilar tweets stay apart.
        let texts = s(&[
            "alpha beta gamma #x",
            "delta epsilon zeta #x",
            "eta theta iota #x",
        ]);
        let cfg = ClusterConfig {
            jaccard_threshold: 0.5,
            max_token_df: 2,
        };
        let c = cluster_texts(&texts, &cfg);
        assert_eq!(c.cluster_count, 3);
    }

    #[test]
    fn purity_measures_against_reference() {
        let texts = s(&["a b c", "a b c d", "x y z", "x y w"]);
        let c = cluster_texts(&texts, &ClusterConfig::default());
        let labels = vec![0, 0, 1, 1];
        assert!(c.purity(&labels) > 0.99);
    }

    #[test]
    fn empty_input_is_fine() {
        let c = cluster_texts(&[], &ClusterConfig::default());
        assert_eq!(c.cluster_count, 0);
        assert!(c.assignment.is_empty());
        assert_eq!(c.purity(&[]), 1.0);
    }

    #[test]
    fn threshold_one_only_merges_identical() {
        let texts = s(&["a b c", "a b c", "a b d"]);
        let cfg = ClusterConfig {
            jaccard_threshold: 1.0,
            ..ClusterConfig::default()
        };
        let c = cluster_texts(&texts, &cfg);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn union_find_handles_chains() {
        // a~b via shared tokens, b~c likewise -> all one cluster.
        let texts = s(&["p q r s", "q r s t", "r s t u"]);
        let c = cluster_texts(
            &texts,
            &ClusterConfig {
                jaccard_threshold: 0.6,
                max_token_df: 10,
            },
        );
        assert_eq!(c.cluster_count, 1);
    }

    #[test]
    fn indexed_path_matches_naive_oracle() {
        let texts = s(&[
            "breaking police confirm explosion near bridge a00001 #x",
            "RT police confirm explosion near bridge a00001 #x",
            "crowd observes rescue near stadium a00002 #x",
            "police confirm explosion a00001 #x",
            "a b c",
            "a b c",
            "",
        ]);
        for threshold in [0.2, 0.5, 0.8, 1.0] {
            let cfg = ClusterConfig {
                jaccard_threshold: threshold,
                ..ClusterConfig::default()
            };
            assert_eq!(
                cluster_texts(&texts, &cfg),
                cluster_texts_naive(&texts, &cfg)
            );
        }
    }

    #[test]
    fn stats_count_pruned_comparisons() {
        let texts = s(&["a b c", "a b c d", "x y z", "x y w", "lone tweet words"]);
        let (c, stats) =
            cluster_texts_with_stats(&texts, &ClusterConfig::default(), Parallelism::Serial);
        assert_eq!(c.assignment.len(), texts.len());
        assert_eq!(stats.texts, 5);
        assert_eq!(stats.naive_comparisons, 10);
        // Only the two similar pairs share indexable tokens.
        assert_eq!(stats.candidate_pairs, 2);
        assert!(stats.jaccard_comparisons <= stats.candidate_pairs);
        assert!(stats.candidate_pairs < stats.naive_comparisons);
    }

    #[test]
    fn parallel_levels_are_byte_identical() {
        let texts: Vec<String> = (0..200)
            .map(|i| format!("event {} token{} shared word{}", i % 13, i % 7, i % 3))
            .collect();
        let cfg = ClusterConfig::default();
        let serial = cluster_texts_par(&texts, &cfg, Parallelism::Serial);
        for par in [
            Parallelism::Auto,
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(4),
        ] {
            assert_eq!(serial, cluster_texts_par(&texts, &cfg, par), "{par:?}");
        }
    }

    #[test]
    fn clusters_simulated_tweets_close_to_truth() {
        use socsense_twitter::{ScenarioConfig, TwitterDataset};
        let ds = TwitterDataset::simulate(&ScenarioConfig::kirkuk().scaled(0.02), 9).unwrap();
        let texts: Vec<String> = ds.tweets.iter().map(|t| t.text.clone()).collect();
        let labels: Vec<u32> = ds.tweets.iter().map(|t| t.assertion).collect();
        let c = cluster_texts(&texts, &ClusterConfig::default());
        let p = c.purity(&labels);
        assert!(p > 0.9, "clustering purity {p:.3}");
    }
}
