//! Token-shingle clustering of tweets into assertions.
//!
//! Apollo's first stage must decide which tweets "say the same thing".
//! We tokenize, index tweets by their *rare* tokens (common tokens such
//! as a scenario hashtag appear everywhere and carry no grouping signal),
//! and union tweets whose token-set Jaccard similarity clears a
//! threshold. Union-find keeps the whole pass near-linear in the number
//! of tweet–token incidences.

use std::collections::HashMap;

/// Configuration for [`cluster_texts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Minimum token-set Jaccard similarity to merge two tweets.
    pub jaccard_threshold: f64,
    /// Tokens occurring in more than this many tweets are ignored for
    /// candidate generation (they still count toward similarity).
    pub max_token_df: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            jaccard_threshold: 0.5,
            max_token_df: 200,
        }
    }
}

/// Result of [`cluster_texts`]: a dense cluster id per input text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `assignment[i]` = cluster id of text `i`, in `0..cluster_count`.
    pub assignment: Vec<u32>,
    /// Number of distinct clusters.
    pub cluster_count: u32,
}

impl Clustering {
    /// Members of each cluster, indexed by cluster id.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.cluster_count as usize];
        for (i, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(i as u32);
        }
        out
    }

    /// Purity against reference labels: the fraction of texts whose
    /// cluster's majority reference label matches their own.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != assignment.len()`.
    pub fn purity(&self, labels: &[u32]) -> f64 {
        assert_eq!(labels.len(), self.assignment.len(), "label count mismatch");
        if labels.is_empty() {
            return 1.0;
        }
        let mut correct = 0usize;
        for members in self.members() {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &i in &members {
                *counts.entry(labels[i as usize]).or_default() += 1;
            }
            correct += counts.values().copied().max().unwrap_or(0);
        }
        correct as f64 / labels.len() as f64
    }
}

/// Union-find with path halving and union by size.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

fn tokenize(text: &str) -> Vec<&str> {
    text.split_whitespace()
        .filter(|t| !t.eq_ignore_ascii_case("rt"))
        .collect()
}

fn jaccard(a: &[&str], b: &[&str]) -> f64 {
    // Token lists are short (< 12); a sorted-merge would not beat this.
    let inter = a.iter().filter(|t| b.contains(t)).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Clusters texts by token-set similarity.
///
/// Each rare token nominates its first occurrence as a representative;
/// later tweets sharing the token merge with it when their Jaccard
/// similarity clears the threshold. Transitive merges through shared rare
/// tokens build the full clusters.
///
/// # Panics
///
/// Panics if `config.jaccard_threshold` is outside `[0, 1]`.
pub fn cluster_texts(texts: &[String], config: &ClusterConfig) -> Clustering {
    assert!(
        (0.0..=1.0).contains(&config.jaccard_threshold),
        "jaccard_threshold must be in [0, 1]"
    );
    let tokens: Vec<Vec<&str>> = texts.iter().map(|t| tokenize(t)).collect();

    // Inverted index with document frequencies.
    let mut postings: HashMap<&str, Vec<u32>> = HashMap::new();
    for (i, toks) in tokens.iter().enumerate() {
        for &t in toks {
            let entry = postings.entry(t).or_default();
            if entry.last() != Some(&(i as u32)) {
                entry.push(i as u32);
            }
        }
    }

    let mut uf = UnionFind::new(texts.len());
    for (_, posting) in postings {
        if posting.len() < 2 || posting.len() > config.max_token_df {
            continue;
        }
        let rep = posting[0];
        for &other in &posting[1..] {
            if uf.find(rep) == uf.find(other) {
                continue;
            }
            if jaccard(&tokens[rep as usize], &tokens[other as usize]) >= config.jaccard_threshold {
                uf.union(rep, other);
            }
        }
    }

    // Densify cluster ids.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut assignment = Vec::with_capacity(texts.len());
    for i in 0..texts.len() as u32 {
        let root = uf.find(i);
        let next = remap.len() as u32;
        let id = *remap.entry(root).or_insert(next);
        assignment.push(id);
    }
    Clustering {
        assignment,
        cluster_count: remap.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn near_duplicates_cluster_together() {
        let texts = s(&[
            "breaking police confirm explosion near bridge a00001 #x",
            "RT police confirm explosion near bridge a00001 #x",
            "crowd observes rescue near stadium a00002 #x",
        ]);
        let c = cluster_texts(&texts, &ClusterConfig::default());
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
        assert_eq!(c.cluster_count, 2);
    }

    #[test]
    fn common_tokens_do_not_glue_everything() {
        // "#x" appears everywhere; with max_token_df small it is ignored
        // for candidate generation, so dissimilar tweets stay apart.
        let texts = s(&[
            "alpha beta gamma #x",
            "delta epsilon zeta #x",
            "eta theta iota #x",
        ]);
        let cfg = ClusterConfig {
            jaccard_threshold: 0.5,
            max_token_df: 2,
        };
        let c = cluster_texts(&texts, &cfg);
        assert_eq!(c.cluster_count, 3);
    }

    #[test]
    fn purity_measures_against_reference() {
        let texts = s(&["a b c", "a b c d", "x y z", "x y w"]);
        let c = cluster_texts(&texts, &ClusterConfig::default());
        let labels = vec![0, 0, 1, 1];
        assert!(c.purity(&labels) > 0.99);
    }

    #[test]
    fn empty_input_is_fine() {
        let c = cluster_texts(&[], &ClusterConfig::default());
        assert_eq!(c.cluster_count, 0);
        assert!(c.assignment.is_empty());
        assert_eq!(c.purity(&[]), 1.0);
    }

    #[test]
    fn threshold_one_only_merges_identical() {
        let texts = s(&["a b c", "a b c", "a b d"]);
        let cfg = ClusterConfig {
            jaccard_threshold: 1.0,
            ..ClusterConfig::default()
        };
        let c = cluster_texts(&texts, &cfg);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn union_find_handles_chains() {
        // a~b via token t1, b~c via token t2 -> all one cluster.
        let texts = s(&["p q r s", "q r s t", "r s t u"]);
        let c = cluster_texts(
            &texts,
            &ClusterConfig {
                jaccard_threshold: 0.6,
                max_token_df: 10,
            },
        );
        assert_eq!(c.cluster_count, 1);
    }

    #[test]
    fn clusters_simulated_tweets_close_to_truth() {
        use socsense_twitter::{ScenarioConfig, TwitterDataset};
        let ds = TwitterDataset::simulate(&ScenarioConfig::kirkuk().scaled(0.02), 9).unwrap();
        let texts: Vec<String> = ds.tweets.iter().map(|t| t.text.clone()).collect();
        let labels: Vec<u32> = ds.tweets.iter().map(|t| t.assertion).collect();
        let c = cluster_texts(&texts, &ClusterConfig::default());
        let p = c.purity(&labels);
        assert!(p > 0.9, "clustering purity {p:.3}");
    }
}
