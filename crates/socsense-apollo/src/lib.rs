//! An Apollo-style fact-finding pipeline.
//!
//! The paper integrates its estimator into *Apollo*, a tool that ingests
//! raw tweets, groups them into assertions, and ranks the assertions by
//! estimated credibility. This crate reproduces that pipeline over the
//! simulated Twitter substrate:
//!
//! 1. **Ingest** a [`TwitterDataset`](socsense_twitter::TwitterDataset)
//!    (tweets + follower graph);
//! 2. **Cluster** tweets into assertions by token-shingle Jaccard
//!    similarity with a union-find ([`cluster_texts`]), pruned by an
//!    inverted shingle index and sharded deterministically over worker
//!    threads — or trust the simulator's assertion ids when configured,
//!    which isolates estimator quality from clustering quality;
//! 3. **Build** the `SC` / `D` matrices from the clustered claims and the
//!    follow relation (dependency = retweet-style repeats, via
//!    who-spoke-first);
//! 4. **Estimate** with any [`FactFinder`](socsense_baselines::FactFinder)
//!    (EM-Ext by default);
//! 5. **Rank** assertions and report the top-k with representative
//!    tweets, as Apollo surfaces its top-100.
//!
//! # Example
//!
//! ```
//! use socsense_apollo::{Apollo, ApolloConfig};
//! use socsense_baselines::EmExtFinder;
//! use socsense_twitter::{ScenarioConfig, TwitterDataset};
//!
//! let ds = TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(0.01), 5)?;
//! let out = Apollo::new(ApolloConfig::default())
//!     .run(&ds, &EmExtFinder::default())
//!     .expect("pipeline runs");
//! assert!(!out.ranked.is_empty());
//! # Ok::<(), socsense_twitter::TwitterError>(())
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod ingest;
mod pipeline;
mod report;
pub mod serve;

pub use cluster::{
    cluster_texts, cluster_texts_naive, cluster_texts_par, cluster_texts_traced,
    cluster_texts_with_stats, ClusterConfig, ClusterStats, Clustering,
};
pub use ingest::{
    assemble_corpus, parse_follows_csv, parse_tweets_jsonl, parse_tweets_jsonl_traced,
    parse_tweets_jsonl_with, Corpus, IngestConfig, IngestError,
};
pub use pipeline::{
    Apollo, ApolloConfig, ApolloOutput, CorpusOutput, CorpusRanked, RankedAssertion,
};
pub use report::render_report;
pub use serve::{ReplaySummary, ServeOptions, ServeSession};
