//! `apollo serve`: replay an ingested corpus through a live
//! [`QueryService`] and answer interactive queries.
//!
//! The session clusters the corpus into assertions once (external
//! corpora carry no assertion ids), replays the resulting timestamped
//! claims through the service in batches — the way a deployed Apollo
//! would poll the firehose — and then answers line-oriented queries:
//!
//! ```text
//! posterior <assertion-id>
//! top-sources <k>
//! bound [<assertion-id> ...]
//! stats
//! metrics
//! help
//! ```
//!
//! The command layer lives in the library (rather than the binary) so
//! the end-to-end path is testable without a subprocess.

use std::path::PathBuf;

use socsense_core::{Obs, Parallelism, RefitMode};
use socsense_graph::TimedClaim;
use socsense_serve::{
    PersistConfig, QueryService, ServeConfig, ServeError, ServeHandle, ServeStats, ShardedHandle,
    ShardedService,
};

use crate::cluster::{cluster_texts_traced, ClusterConfig};
use crate::ingest::Corpus;

/// Options for [`ServeSession::start`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// How many ingest batches the replay splits the corpus into.
    pub batches: usize,
    /// Worker threads for clustering and bound evaluation.
    pub parallelism: Parallelism,
    /// Forwarded to [`ServeConfig::refit_pending_claims`].
    pub refit_pending_claims: usize,
    /// Forwarded to [`ServeConfig::refit_mode`]: full warm refits per
    /// batch, or delta-scoped E-steps with threshold-guarded fallback.
    pub refit_mode: RefitMode,
    /// Serving backend: `0` runs the single-worker [`QueryService`];
    /// `N ≥ 1` runs the horizontally sharded tier ([`ShardedService`])
    /// with `N` worker shards. Answers are bit-identical either way on
    /// fully connected corpora, and bit-identical across shard counts
    /// always.
    pub shards: usize,
    /// Durable serve state: when set, the session write-ahead-logs every
    /// ingested batch and checkpoints under this directory, and a
    /// restart over the same directory recovers bit-identical state
    /// (see [`PersistConfig`]).
    pub data_dir: Option<PathBuf>,
    /// Text-clustering parameters.
    pub cluster: ClusterConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            batches: 6,
            parallelism: Parallelism::Auto,
            refit_pending_claims: 1,
            refit_mode: RefitMode::Full,
            shards: 0,
            data_dir: None,
            cluster: ClusterConfig::default(),
        }
    }
}

/// What the replay ingested, for the startup banner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Interned sources.
    pub sources: u32,
    /// Assertion clusters found in the corpus.
    pub assertions: u32,
    /// Claims replayed (`0` when a durable session recovered already
    /// ingested state instead of replaying).
    pub claims: usize,
    /// Ingest batches used.
    pub batches: usize,
}

/// The backend a session runs on (see [`ServeOptions::shards`]).
#[derive(Debug)]
enum Backend {
    Single(QueryService),
    Sharded(ShardedService),
}

/// A live query session over a replayed corpus.
#[derive(Debug)]
pub struct ServeSession {
    backend: Backend,
    client: ServeHandle,
    /// Present only on the sharded backend; serves `topology` queries.
    sharded_client: Option<ShardedHandle>,
    usernames: Vec<String>,
    sample_text: Vec<String>,
    assertion_count: u32,
}

impl ServeSession {
    /// Clusters `corpus`, spawns the query service, and replays every
    /// claim through it in [`ServeOptions::batches`] batches.
    ///
    /// # Errors
    ///
    /// Propagates service errors ([`ServeError`]); an empty corpus
    /// surfaces as the underlying estimator's shape error.
    pub fn start(
        corpus: &Corpus,
        opts: &ServeOptions,
    ) -> Result<(Self, ReplaySummary), ServeError> {
        Self::start_with_obs(corpus, opts, Obs::none())
    }

    /// As [`start`](Self::start), additionally teeing the session's
    /// metrics (clustering, ingest, and everything the service worker
    /// emits) into `extra` — e.g. a JSON-lines exporter. The `metrics`
    /// query command works either way: the service worker always keeps
    /// its own in-memory recorder.
    ///
    /// # Errors
    ///
    /// See [`start`](Self::start).
    pub fn start_with_obs(
        corpus: &Corpus,
        opts: &ServeOptions,
        extra: Obs,
    ) -> Result<(Self, ReplaySummary), ServeError> {
        let texts: Vec<String> = corpus.tweets.iter().map(|t| t.text.clone()).collect();
        let (clustering, _) = cluster_texts_traced(&texts, &opts.cluster, opts.parallelism, &extra);
        let m = clustering.cluster_count.max(1);

        let mut sample_text = vec![String::new(); m as usize];
        for (t, &c) in corpus.tweets.iter().zip(&clustering.assignment) {
            if sample_text[c as usize].is_empty() {
                sample_text[c as usize] = t.text.clone();
            }
        }
        let claims: Vec<TimedClaim> = corpus
            .tweets
            .iter()
            .zip(&clustering.assignment)
            .map(|(t, &c)| TimedClaim::new(t.source, c, t.time))
            .collect();

        let config = ServeConfig {
            refit_pending_claims: opts.refit_pending_claims,
            parallelism: opts.parallelism,
            refit_mode: opts.refit_mode,
            persist: opts.data_dir.as_deref().map(PersistConfig::at),
            ..ServeConfig::default()
        };
        let (backend, client, sharded_client) = if opts.shards == 0 {
            let service = QueryService::spawn_with_obs(
                corpus.source_count(),
                m,
                corpus.graph.clone(),
                config,
                extra,
            )?;
            let client = service.handle();
            (Backend::Single(service), client, None)
        } else {
            let service = ShardedService::spawn_with_obs(
                corpus.source_count(),
                m,
                corpus.graph.clone(),
                config,
                opts.shards,
                extra,
            )?;
            let sharded = service.handle();
            let client = (*sharded).clone();
            (Backend::Sharded(service), client, Some(sharded))
        };

        let batches = opts.batches.max(1);
        // A recovered data directory already holds the replayed stream:
        // re-ingesting the corpus would double every claim. Replay only
        // into a fresh service.
        let recovered = client.stats()?.total_claims;
        // Corpus tweets are time-ordered, so index chunks replay the
        // stream in arrival order.
        let chunk = claims.len().div_ceil(batches).max(1);
        let mut used = 0usize;
        let mut replayed = 0usize;
        if recovered == 0 {
            for batch in claims.chunks(chunk) {
                client.ingest(batch.to_vec())?;
                used += 1;
            }
            replayed = claims.len();
        }
        let summary = ReplaySummary {
            sources: corpus.source_count(),
            assertions: m,
            claims: replayed,
            batches: used,
        };
        Ok((
            Self {
                backend,
                client,
                sharded_client,
                usernames: corpus.usernames.clone(),
                sample_text,
                assertion_count: m,
            },
            summary,
        ))
    }

    /// A handle for issuing typed requests directly (e.g. from extra
    /// client threads).
    pub fn client(&self) -> ServeHandle {
        self.client.clone()
    }

    /// Number of assertion clusters the session serves.
    pub fn assertion_count(&self) -> u32 {
        self.assertion_count
    }

    /// Answers one query line; `Err` carries a user-facing message for
    /// unparseable or unknown commands (the session stays usable).
    ///
    /// # Errors
    ///
    /// `Err(String)` is a user error (bad command, bad id, or a service
    /// error rendered as text) — print it and keep reading.
    pub fn answer(&self, line: &str) -> Result<String, String> {
        let mut words = line.split_whitespace();
        let command = words.next().ok_or("empty command; try `help`")?;
        match command {
            "posterior" => {
                let j: u32 = parse_arg(words.next(), "posterior <assertion-id>")?;
                words_done(words)?;
                let p = self.client.posterior(j).map_err(|e| e.to_string())?;
                let text = self
                    .sample_text
                    .get(j as usize)
                    .map(String::as_str)
                    .unwrap_or("");
                Ok(format!("posterior {j} = {p:.6}  # {text}"))
            }
            "top-sources" => {
                let k: usize = parse_arg(words.next(), "top-sources <k>")?;
                words_done(words)?;
                let ranks = self.client.top_sources(k).map_err(|e| e.to_string())?;
                let mut out = format!("top {} of {} sources:", ranks.len(), self.usernames.len());
                for (rank, r) in ranks.iter().enumerate() {
                    let user = self
                        .usernames
                        .get(r.source as usize)
                        .map(String::as_str)
                        .unwrap_or("?");
                    out.push_str(&format!(
                        "\n{:>3}. {user}  precision={:.4}  a={:.3} b={:.3}",
                        rank + 1,
                        r.precision,
                        r.params.a,
                        r.params.b
                    ));
                }
                Ok(out)
            }
            "bound" => {
                let assertions: Vec<u32> = words
                    .map(|w| w.parse().map_err(|_| format!("bad assertion id `{w}`")))
                    .collect::<Result<_, _>>()?;
                let over = if assertions.is_empty() {
                    self.assertion_count as usize
                } else {
                    assertions.len()
                };
                let b = self
                    .client
                    .bound(assertions, None)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "bound over {over} assertions: error={:.6} fp={:.6} fn={:.6}",
                    b.error, b.false_positive, b.false_negative
                ))
            }
            "stats" => {
                words_done(words)?;
                let s = self.client.stats().map_err(|e| e.to_string())?;
                let opt = |v: Option<usize>| v.map(|i| i.to_string()).unwrap_or_else(|| "-".into());
                let exact = match s.last_ll_exact {
                    None => "-",
                    Some(true) => "exact",
                    Some(false) => "approx",
                };
                Ok(format!(
                    "claims={} pending={} requests={} chain_refits={} probe_refits={} \
                     cache_hits={} warm={} delta={} fallbacks={} last_iters={} \
                     last_touched={}/{} last_ll={exact}",
                    s.total_claims,
                    s.pending_claims,
                    s.requests_served,
                    s.chain_refits,
                    s.probe_refits,
                    s.probe_cache_hits,
                    s.warm_refits,
                    s.delta_refits,
                    s.fallback_refits,
                    opt(s.last_refit_iterations),
                    opt(s.last_touched_assertions),
                    opt(s.last_touched_sources),
                ))
            }
            "metrics" => {
                words_done(words)?;
                let m = self.client.metrics().map_err(|e| e.to_string())?;
                let text = m.to_jsonl();
                if text.is_empty() {
                    Ok("no metrics recorded".into())
                } else {
                    Ok(text)
                }
            }
            "topology" => {
                words_done(words)?;
                let client = self
                    .sharded_client
                    .as_ref()
                    .ok_or("topology needs the sharded backend; restart with --shards N")?;
                let t = client.topology().map_err(|e| e.to_string())?;
                let mut out = format!(
                    "{} shards, epoch {}, {} clusters:",
                    t.shards,
                    t.epoch,
                    t.clusters.len()
                );
                for c in &t.clusters {
                    out.push_str(&format!(
                        "\n  cluster {} -> shard {}  ({} sources, {} assertions)",
                        c.key, c.shard, c.sources, c.assertions
                    ));
                }
                Ok(out)
            }
            "help" => Ok("commands: posterior <assertion-id> | top-sources <k> | \
                          bound [<assertion-id> ...] | stats | metrics | topology | quit"
                .into()),
            other => Err(format!("unknown command `{other}`; try `help`")),
        }
    }

    /// Shuts the service down and returns its final statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeError::Closed`] when the worker already died.
    pub fn finish(self) -> Result<ServeStats, ServeError> {
        match self.backend {
            Backend::Single(service) => service.shutdown(),
            Backend::Sharded(service) => service.shutdown(),
        }
    }
}

fn parse_arg<T: std::str::FromStr>(word: Option<&str>, usage: &str) -> Result<T, String> {
    word.ok_or_else(|| format!("usage: {usage}"))?
        .parse()
        .map_err(|_| format!("usage: {usage}"))
}

fn words_done<'a>(mut words: impl Iterator<Item = &'a str>) -> Result<(), String> {
    match words.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument `{extra}`; try `help`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{assemble_corpus, parse_tweets_jsonl};

    fn corpus() -> Corpus {
        let jsonl = r#"
            {"id":1,"user":"sally","time":10,"text":"breaking explosion near bridge a1 #x"}
            {"id":2,"user":"bob","time":11,"text":"breaking explosion near bridge a1 #x"}
            {"id":3,"user":"john","time":12,"text":"breaking explosion near bridge a1 #x","retweet_of":1}
            {"id":4,"user":"mia","time":13,"text":"crowd gathers at stadium a2 #x"}
            {"id":5,"user":"sally","time":14,"text":"crowd gathers at stadium a2 #x"}
        "#;
        assemble_corpus(parse_tweets_jsonl(jsonl).unwrap(), &[]).unwrap()
    }

    #[test]
    fn session_replays_and_answers_queries() {
        let (session, summary) = ServeSession::start(&corpus(), &ServeOptions::default()).unwrap();
        assert_eq!(summary.sources, 4);
        assert_eq!(summary.assertions, 2);
        assert_eq!(summary.claims, 5);
        assert!(summary.batches >= 1);

        let ans = session.answer("posterior 0").unwrap();
        assert!(ans.starts_with("posterior 0 = "), "{ans}");
        let p: f64 = ans["posterior 0 = ".len()..]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((0.0..=1.0).contains(&p), "{ans}");
        let ans = session.answer("top-sources 3").unwrap();
        assert!(ans.contains("precision="), "{ans}");
        assert_eq!(ans.lines().count(), 4, "header + 3 ranked sources");
        let ans = session.answer("bound").unwrap();
        assert!(ans.contains("over 2 assertions"), "{ans}");
        let ans = session.answer("bound 0").unwrap();
        assert!(ans.contains("over 1 assertions"), "{ans}");
        let ans = session.answer("stats").unwrap();
        assert!(ans.contains("claims=5"), "{ans}");
        let ans = session.answer("metrics").unwrap();
        assert!(ans.contains("serve.requests_total"), "{ans}");
        assert!(ans.contains("serve.refit.chain_total"), "{ans}");
        assert!(ans.contains("em.runs_total"), "{ans}");

        assert!(session.answer("posterior").is_err());
        assert!(session.answer("posterior nope").is_err());
        assert!(session.answer("frobnicate").is_err());
        let err = session.answer("posterior 99").unwrap_err();
        assert!(err.contains("expected"), "{err}");

        let stats = session.finish().unwrap();
        assert_eq!(stats.total_claims, 5);
    }

    #[test]
    fn session_with_obs_captures_ingest_and_serve_families() {
        let (extra, rec) = Obs::recorder();
        let (session, _) =
            ServeSession::start_with_obs(&corpus(), &ServeOptions::default(), extra).unwrap();
        session.answer("posterior 0").unwrap();
        session.answer("bound").unwrap();
        session.finish().unwrap();
        let snap = rec.snapshot();
        // One exported stream spans clustering, streaming-EM, bound,
        // and serve latency families.
        assert_eq!(snap.counter("ingest.cluster.texts_total"), 5);
        assert!(snap.counter("em.runs_total") >= 1);
        assert!(snap.counter("bound.assertions_total") >= 1);
        assert!(snap.histogram("serve.request.posterior.seconds").is_some());
        assert!(snap.counter("serve.requests_total") >= 2);
    }

    #[test]
    fn delta_mode_session_serves_and_reports_mode_fields() {
        use socsense_core::DeltaConfig;
        let opts = ServeOptions {
            refit_mode: RefitMode::Delta(DeltaConfig::default()),
            ..ServeOptions::default()
        };
        let (session, _) = ServeSession::start(&corpus(), &opts).unwrap();
        let ans = session.answer("stats").unwrap();
        assert!(ans.contains("delta="), "{ans}");
        assert!(ans.contains("fallbacks="), "{ans}");
        assert!(ans.contains("last_touched="), "{ans}");
        assert!(ans.contains("last_ll="), "{ans}");
        // Delta-mode answers match a Full-mode session: the default
        // thresholds only ever swap in fallbacks, which are
        // bit-identical to full warm refits.
        let (full, _) = ServeSession::start(&corpus(), &ServeOptions::default()).unwrap();
        assert_eq!(
            session.answer("posterior 0").unwrap(),
            full.answer("posterior 0").unwrap()
        );
        session.finish().unwrap();
        full.finish().unwrap();
    }

    #[test]
    fn sharded_session_matches_single_worker_session() {
        // This corpus is one connected cluster (sally claims both
        // assertions), so the sharded tier must reproduce the
        // single-worker answers exactly — at any shard count.
        let (single, _) = ServeSession::start(&corpus(), &ServeOptions::default()).unwrap();
        for shards in [1usize, 2, 4] {
            let opts = ServeOptions {
                shards,
                ..ServeOptions::default()
            };
            let (session, summary) = ServeSession::start(&corpus(), &opts).unwrap();
            assert_eq!(summary.claims, 5);
            assert_eq!(
                single.answer("posterior 0").unwrap(),
                session.answer("posterior 0").unwrap(),
                "shards={shards}"
            );
            assert_eq!(
                single.answer("posterior 1").unwrap(),
                session.answer("posterior 1").unwrap()
            );
            assert_eq!(
                single.answer("bound").unwrap(),
                session.answer("bound").unwrap()
            );
            assert_eq!(
                single.answer("top-sources 4").unwrap(),
                session.answer("top-sources 4").unwrap()
            );
            let topo = session.answer("topology").unwrap();
            assert!(topo.contains(&format!("{shards} shards")), "{topo}");
            assert!(topo.contains("1 clusters"), "{topo}");
            session.finish().unwrap();
        }
        let err = single.answer("topology").unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        single.finish().unwrap();
    }

    #[test]
    fn durable_session_recovers_without_replaying_the_corpus() {
        let dir = std::env::temp_dir().join(format!("apollo-serve-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeOptions {
            data_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let (a, summary) = ServeSession::start(&corpus(), &opts).unwrap();
        assert_eq!(summary.claims, 5);
        let want_posterior = a.answer("posterior 0").unwrap();
        let want_bound = a.answer("bound").unwrap();
        a.finish().unwrap();

        let (b, summary) = ServeSession::start(&corpus(), &opts).unwrap();
        assert_eq!(summary.claims, 0, "recovered state is not re-replayed");
        assert_eq!(b.answer("posterior 0").unwrap(), want_posterior);
        assert_eq!(b.answer("bound").unwrap(), want_bound);
        let stats = b.finish().unwrap();
        assert_eq!(stats.total_claims, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn answers_are_stable_across_sessions() {
        let opts = ServeOptions::default();
        let (a, _) = ServeSession::start(&corpus(), &opts).unwrap();
        let (b, _) = ServeSession::start(&corpus(), &opts).unwrap();
        assert_eq!(
            a.answer("posterior 0").unwrap(),
            b.answer("posterior 0").unwrap()
        );
        assert_eq!(a.answer("bound").unwrap(), b.answer("bound").unwrap());
    }
}
