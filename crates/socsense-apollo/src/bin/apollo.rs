//! Apollo command-line tool: simulate a scenario, run a fact-finder,
//! print the ranked feed.
//!
//! ```text
//! # simulated scenario:
//! apollo [--scenario ukraine|kirkuk|superbug|la-marathon|paris-attack]
//!        [--scale F] [--seed N] [--algorithm em-ext|em-social|em|voting|sums|avg-log|truth-finder]
//!        [--top K] [--cluster-text] [--discover-deps] [--threads N] [--json PATH] [--metrics PATH]
//!
//! # external corpus (tweets as JSON Lines, optional follower CSV):
//! apollo --input tweets.jsonl [--follows follows.csv]
//!        [--algorithm NAME] [--top K] [--discover-deps] [--threads N] [--json PATH] [--metrics PATH]
//!
//! # live query service: replay a JSONL trace, answer queries on stdin
//! apollo serve --input tweets.jsonl [--follows follows.csv]
//!        [--batches N] [--refit-claims N] [--threads N] [--shards N]
//!        [--data-dir DIR] [--metrics PATH]
//! ```
//!
//! `--metrics PATH` attaches an in-memory metrics recorder to the whole
//! run (parsing, clustering, EM, bounds, serving) and dumps its snapshot
//! as JSON Lines on exit. Metrics are observation-only: every ranked
//! score and served posterior is bit-identical with or without the flag.
//!
//! `--threads N` pins the worker count for the whole run — JSONL
//! parsing, text clustering, and the estimator (`0` = one per core, the
//! default). The ranking, the clustering, and even parse-error line
//! numbers are bit-identical at every setting; the flag only trades
//! wall-clock time.
//!
//! `--discover-deps` ignores any supplied follower graph and infers the
//! dependency matrix from the claim log itself (`socsense-discover` at
//! its default configuration) — the "unknown graph" deployment mode.

use std::io::BufRead;
use std::process::ExitCode;

use socsense_apollo::{render_report, Apollo, ApolloConfig, ServeOptions, ServeSession};
use socsense_baselines::{
    AverageLog, EmExtFinder, EmIndependent, EmSocial, FactFinder, Sums, TruthFinder, Voting,
};
use socsense_core::{EmConfig, Obs, Parallelism};
use socsense_twitter::{ScenarioConfig, TwitterDataset};

struct Args {
    scenario: String,
    scale: f64,
    seed: u64,
    algorithm: String,
    top: usize,
    cluster_text: bool,
    discover_deps: bool,
    threads: Parallelism,
    json: Option<String>,
    metrics: Option<String>,
    input: Option<String>,
    follows: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "ukraine".into(),
        scale: 0.05,
        seed: 0,
        algorithm: "em-ext".into(),
        top: 25,
        cluster_text: false,
        discover_deps: false,
        threads: Parallelism::Auto,
        json: None,
        metrics: None,
        input: None,
        follows: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--algorithm" => args.algorithm = value("--algorithm")?,
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?
            }
            "--cluster-text" => args.cluster_text = true,
            "--discover-deps" => args.discover_deps = true,
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                args.threads = if n == 0 {
                    Parallelism::Auto
                } else {
                    Parallelism::Threads(n)
                };
            }
            "--json" => args.json = Some(value("--json")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--input" => args.input = Some(value("--input")?),
            "--follows" => args.follows = Some(value("--follows")?),
            "--help" | "-h" => {
                return Err("usage: apollo [--scenario NAME] [--scale F] [--seed N] \
                     [--algorithm NAME] [--top K] [--cluster-text] [--discover-deps] \
                     [--threads N] [--json PATH] [--metrics PATH] \
                     | apollo --input tweets.jsonl [--follows follows.csv] \
                     | apollo serve --input tweets.jsonl [--batches N]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    Ok(args)
}

fn scenario(name: &str) -> Result<ScenarioConfig, String> {
    Ok(match name {
        "ukraine" => ScenarioConfig::ukraine(),
        "kirkuk" => ScenarioConfig::kirkuk(),
        "superbug" => ScenarioConfig::superbug(),
        "la-marathon" => ScenarioConfig::la_marathon(),
        "paris-attack" => ScenarioConfig::paris_attack(),
        other => return Err(format!("unknown scenario {other}")),
    })
}

fn finder(name: &str, par: Parallelism, obs: &Obs) -> Result<Box<dyn FactFinder>, String> {
    // The EM family takes the worker-count knob and the metrics handle;
    // the counting heuristics have no hot loop worth instrumenting.
    let em = EmConfig {
        parallelism: par,
        ..EmConfig::default()
    };
    Ok(match name {
        "em-ext" => Box::new(EmExtFinder::new(em).with_obs(obs.clone())),
        "em-social" => Box::new(
            EmSocial {
                config: em,
                ..EmSocial::default()
            }
            .with_obs(obs.clone()),
        ),
        "em" => Box::new(EmIndependent::new(em).with_obs(obs.clone())),
        "voting" => Box::new(Voting::default()),
        "sums" => Box::new(Sums::default()),
        "avg-log" => Box::new(AverageLog::default()),
        "truth-finder" => Box::new(TruthFinder::default()),
        other => return Err(format!("unknown algorithm {other}")),
    })
}

fn run_external(args: &Args, input: &str) -> Result<(), String> {
    let (obs, rec) = metrics_obs(args.metrics.as_deref());
    let algo = finder(&args.algorithm, args.threads, &obs)?;
    let raw = std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))?;
    let ingest = socsense_apollo::IngestConfig {
        parallelism: args.threads,
    };
    let tweets = socsense_apollo::parse_tweets_jsonl_traced(&raw, &ingest, &obs)
        .map_err(|e| e.to_string())?;
    let follows = match &args.follows {
        Some(path) => {
            let raw = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            socsense_apollo::parse_follows_csv(&raw).map_err(|e| e.to_string())?
        }
        None => Vec::new(),
    };
    let corpus = socsense_apollo::assemble_corpus(tweets, &follows).map_err(|e| e.to_string())?;
    eprintln!(
        "{}: {} tweets from {} users, {} follow edges",
        input,
        corpus.tweets.len(),
        corpus.source_count(),
        corpus.graph.edge_count()
    );
    let out = Apollo::new(ApolloConfig {
        top_k: args.top.max(1),
        parallelism: args.threads,
        discover: args
            .discover_deps
            .then(socsense_discover::DiscoverConfig::default),
        ..ApolloConfig::default()
    })
    .with_obs(obs)
    .run_corpus(&corpus, algo.as_ref())
    .map_err(|e| e.to_string())?;
    println!(
        "== Apollo report: {input} via {} ({} assertion clusters) ==",
        out.algorithm, out.assertion_count
    );
    println!("{:>5}  {:>10}  {:>7}  text", "rank", "score", "support");
    for (rank, r) in out.ranked.iter().enumerate() {
        println!(
            "{:>5}  {:>10.4}  {:>7}  {}",
            rank + 1,
            r.score,
            r.support,
            r.sample_text
        );
    }
    if let Some(path) = &args.json {
        let payload = serde_json::json!({
            "input": input,
            "algorithm": out.algorithm,
            "assertion_count": out.assertion_count,
            "ranked": out.ranked,
        });
        std::fs::write(
            path,
            serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    dump_metrics(args.metrics.as_deref(), rec.as_deref())?;
    Ok(())
}

/// A recorder-backed handle when `--metrics` was given, else disabled.
fn metrics_obs(path: Option<&str>) -> (Obs, Option<std::sync::Arc<socsense_obs::Recorder>>) {
    match path {
        Some(_) => {
            let (obs, rec) = Obs::recorder();
            (obs, Some(rec))
        }
        None => (Obs::none(), None),
    }
}

/// Writes the recorder snapshot as JSON Lines to the `--metrics` path.
fn dump_metrics(path: Option<&str>, rec: Option<&socsense_obs::Recorder>) -> Result<(), String> {
    let (Some(path), Some(rec)) = (path, rec) else {
        return Ok(());
    };
    let mut text = rec.snapshot().to_jsonl();
    if !text.is_empty() {
        text.push('\n');
    }
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

struct ServeArgs {
    input: String,
    follows: Option<String>,
    batches: usize,
    refit_claims: usize,
    threads: Parallelism,
    metrics: Option<String>,
    delta: bool,
    shards: usize,
    data_dir: Option<String>,
}

fn parse_serve_args(it: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        input: String::new(),
        follows: None,
        batches: 6,
        refit_claims: 1,
        threads: Parallelism::Auto,
        metrics: None,
        delta: false,
        shards: 0,
        data_dir: None,
    };
    let mut it = it;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--input" => args.input = value("--input")?,
            "--follows" => args.follows = Some(value("--follows")?),
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("bad --batches: {e}"))?
            }
            "--refit-claims" => {
                args.refit_claims = value("--refit-claims")?
                    .parse()
                    .map_err(|e| format!("bad --refit-claims: {e}"))?
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                args.threads = if n == 0 {
                    Parallelism::Auto
                } else {
                    Parallelism::Threads(n)
                };
            }
            "--delta" => args.delta = true,
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("bad --shards: need at least 1 shard (omit the flag for \
                                the single-worker service)"
                        .into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: apollo serve --input tweets.jsonl [--follows follows.csv] \
                     [--batches N] [--refit-claims N] [--threads N] [--delta] \
                     [--shards N] [--data-dir DIR] [--metrics PATH]"
                        .into(),
                )
            }
            other => return Err(format!("unknown serve flag {other}; try --help")),
        }
    }
    if args.input.is_empty() {
        return Err("apollo serve requires --input tweets.jsonl".into());
    }
    Ok(args)
}

/// `apollo serve`: replay a JSONL trace through a live query service and
/// answer `posterior` / `top-sources` / `bound` / `stats` queries from
/// stdin. Answers go to stdout; banners and the final stats to stderr.
fn run_serve(it: impl Iterator<Item = String>) -> Result<(), String> {
    let args = parse_serve_args(it)?;
    let raw =
        std::fs::read_to_string(&args.input).map_err(|e| format!("reading {}: {e}", args.input))?;
    let ingest = socsense_apollo::IngestConfig {
        parallelism: args.threads,
    };
    let tweets =
        socsense_apollo::parse_tweets_jsonl_with(&raw, &ingest).map_err(|e| e.to_string())?;
    let follows = match &args.follows {
        Some(path) => {
            let raw = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            socsense_apollo::parse_follows_csv(&raw).map_err(|e| e.to_string())?
        }
        None => Vec::new(),
    };
    let corpus = socsense_apollo::assemble_corpus(tweets, &follows).map_err(|e| e.to_string())?;
    let opts = ServeOptions {
        batches: args.batches,
        parallelism: args.threads,
        refit_pending_claims: args.refit_claims,
        refit_mode: if args.delta {
            socsense_core::RefitMode::Delta(socsense_core::DeltaConfig::default())
        } else {
            socsense_core::RefitMode::Full
        },
        shards: args.shards,
        data_dir: args.data_dir.as_ref().map(std::path::PathBuf::from),
        ..ServeOptions::default()
    };
    let (obs, rec) = metrics_obs(args.metrics.as_deref());
    let (session, summary) =
        ServeSession::start_with_obs(&corpus, &opts, obs).map_err(|e| e.to_string())?;
    let backend = if args.shards == 0 {
        "single worker".to_string()
    } else {
        format!("{} shards", args.shards)
    };
    eprintln!(
        "serving {}: {} sources, {} assertion clusters, {} claims replayed in {} batches \
         ({backend})",
        args.input, summary.sources, summary.assertions, summary.claims, summary.batches
    );
    eprintln!(
        "ready; commands: posterior <id> | top-sources <k> | bound [<id> ...] | stats | \
         metrics | topology | quit"
    );
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        match session.answer(line) {
            Ok(answer) => println!("{answer}"),
            Err(message) => println!("error: {message}"),
        }
    }
    let stats = session.finish().map_err(|e| e.to_string())?;
    eprintln!(
        "shutdown: {} requests served, {} chain refits ({} delta, {} fallback), \
         {} probe refits, {} cache hits",
        stats.requests_served,
        stats.chain_refits,
        stats.delta_refits,
        stats.fallback_refits,
        stats.probe_refits,
        stats.probe_cache_hits
    );
    dump_metrics(args.metrics.as_deref(), rec.as_deref())?;
    Ok(())
}

fn run() -> Result<(), String> {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("serve") {
        raw.next();
        return run_serve(raw);
    }
    let args = parse_args()?;
    if let Some(input) = args.input.clone() {
        return run_external(&args, &input);
    }
    let cfg = scenario(&args.scenario)?.scaled(args.scale);
    let (obs, rec) = metrics_obs(args.metrics.as_deref());
    let algo = finder(&args.algorithm, args.threads, &obs)?;
    eprintln!(
        "simulating {} at scale {} (seed {}) ...",
        cfg.name, args.scale, args.seed
    );
    let dataset = TwitterDataset::simulate(&cfg, args.seed).map_err(|e| e.to_string())?;
    let summary = dataset.summary();
    eprintln!(
        "{}: {} sources, {} assertions, {} claims ({} original)",
        summary.name,
        summary.sources,
        summary.assertions,
        summary.total_claims,
        summary.original_claims
    );
    let out = Apollo::new(ApolloConfig {
        cluster_text: args.cluster_text,
        top_k: args.top.max(1),
        parallelism: args.threads,
        discover: args
            .discover_deps
            .then(socsense_discover::DiscoverConfig::default),
        ..ApolloConfig::default()
    })
    .with_obs(obs)
    .run(&dataset, algo.as_ref())
    .map_err(|e| e.to_string())?;
    print!("{}", render_report(&out, args.top));
    if let Some(path) = args.json {
        let payload = serde_json::json!({
            "dataset": out.dataset,
            "algorithm": out.algorithm,
            "assertion_count": out.assertion_count,
            "cluster_purity": out.cluster_purity,
            "ranked": out.ranked,
            "summary": summary,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    dump_metrics(args.metrics.as_deref(), rec.as_deref())?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
