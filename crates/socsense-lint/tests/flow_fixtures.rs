//! Fixture corpus for the workspace-aware rule families (P1, C2, C3,
//! F1) in `socsense_lint::flow`.
//!
//! Same contract as `fixtures.rs`: every rule gets a known-bad snippet
//! that must fire at an exact `file:line` and a known-good sibling that
//! must stay silent. The snippets live in raw strings so detlint's own
//! scan of this file never trips over them. Because these rules need a
//! whole-crate model, each fixture assembles one explicitly from
//! `(path, source)` pairs.

use socsense_lint::flow::{check_crate, CrateModel, FileModel};
use socsense_lint::rules::{Contract, Finding};

fn crate_model(name: &str, files: &[(&str, &str)]) -> CrateModel {
    CrateModel {
        name: name.to_string(),
        contract: Contract::Deterministic,
        files: files
            .iter()
            .map(|(path, src)| FileModel::new(path, src))
            .collect(),
    }
}

fn check(name: &str, files: &[(&str, &str)]) -> Vec<Finding> {
    check_crate(&crate_model(name, files)).0
}

/// `(file, line)` pairs where `rule` fired unsuppressed.
fn fired<'a>(findings: &'a [Finding], rule: &str) -> Vec<(&'a str, u32)> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .map(|f| (f.file.as_str(), f.line))
        .collect()
}

// ---------------------------------------------------------------- P1

#[test]
fn p1_fires_on_unwrap_in_serve_non_test_code_only() {
    let src = r#"pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
pub fn g(x: Result<u32, ()>) -> u32 {
    x.expect("present")
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let y: Option<u32> = Some(1);
        y.unwrap();
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[("crates/socsense-serve/src/worker.rs", src)],
    );
    assert_eq!(
        fired(&findings, "P1"),
        vec![
            ("crates/socsense-serve/src/worker.rs", 2),
            ("crates/socsense-serve/src/worker.rs", 5)
        ],
        "test mod exempt"
    );

    // The same code in a crate off the serve/persist path is fine.
    let elsewhere = check(
        "socsense-twitter",
        &[("crates/socsense-twitter/src/x.rs", src)],
    );
    assert!(elsewhere.is_empty(), "{elsewhere:?}");

    // core's streaming.rs seeds the walk.
    let streaming = check(
        "socsense-core",
        &[("crates/socsense-core/src/streaming.rs", src)],
    );
    assert_eq!(fired(&streaming, "P1").len(), 2);
}

#[test]
fn p1_propagates_through_local_helpers_across_files() {
    let entry = r#"pub fn dispatch(x: Option<u32>) -> u32 {
    crate::util::helper(x)
}
"#;
    let util = r#"pub fn helper(x: Option<u32>) -> u32 {
    second(x)
}
fn second(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn never_called(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    // `util.rs` lives outside the seed-file set (a non-seed helper
    // module would too), but `second` is reachable from the serve
    // entry point through `helper`, so its unwrap fires; the
    // unreachable sibling stays silent in a crate where only seed
    // files matter... except socsense-serve seeds *every* src file, so
    // model it in socsense-core where only streaming.rs seeds.
    let findings = check(
        "socsense-core",
        &[
            ("crates/socsense-core/src/streaming.rs", entry),
            ("crates/socsense-core/src/util.rs", util),
        ],
    );
    assert_eq!(
        fired(&findings, "P1"),
        vec![("crates/socsense-core/src/util.rs", 5)],
        "reachable helper fires, unreachable sibling does not: {findings:#?}"
    );
}

#[test]
fn p1_exempts_cfg_test_match_arms_and_suppressions() {
    let src = r#"pub enum Req { Go, Boom }
pub fn dispatch(r: Req) -> u32 {
    match r {
        Req::Go => 1,
        #[cfg(test)]
        Req::Boom => panic!("injected"),
        Req::Boom => 0,
    }
}
pub fn spawn_worker() {
    // detlint: allow(P1) -- construction-time: fixture justification
    std::thread::Builder::new().spawn(|| {}).expect("spawn");
}
"#;
    let findings = check("socsense-serve", &[("crates/socsense-serve/src/w.rs", src)]);
    assert_eq!(fired(&findings, "P1"), vec![], "{findings:#?}");
}

// ---------------------------------------------------------------- C2

const PROTO_ENUM: &str = r#"// detlint: protocol
pub enum Msg {
    Go(u32),
    Stop,
    Query { q: u32, reply: Sender<u32> },
}
"#;

#[test]
fn c2_fires_on_wildcard_arm_over_protocol_enum() {
    let worker = r#"pub fn run(m: Msg) -> u32 {
    match m {
        Msg::Go(n) => n,
        _ => 0,
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[
            ("crates/socsense-serve/src/msg.rs", PROTO_ENUM),
            ("crates/socsense-serve/src/worker.rs", worker),
        ],
    );
    assert_eq!(
        fired(&findings, "C2"),
        vec![("crates/socsense-serve/src/worker.rs", 4)],
        "{findings:#?}"
    );
}

#[test]
fn c2_fires_when_enum_gains_a_variant_the_worker_match_misses() {
    // The acceptance scenario: `Msg` gains `Drain`, the worker match
    // does not. The finding lands on the match line.
    let grown = r#"// detlint: protocol
pub enum Msg {
    Go(u32),
    Stop,
    Query { q: u32, reply: Sender<u32> },
    Drain,
}
"#;
    let worker = r#"pub fn run(m: Msg) -> u32 {
    match m {
        Msg::Go(n) => n,
        Msg::Stop => 0,
        Msg::Query { q, reply } => { reply.send(q).ok(); q }
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[
            ("crates/socsense-serve/src/msg.rs", grown),
            ("crates/socsense-serve/src/worker.rs", worker),
        ],
    );
    assert_eq!(
        fired(&findings, "C2"),
        vec![("crates/socsense-serve/src/worker.rs", 2)],
        "{findings:#?}"
    );
    let msg = &findings
        .iter()
        .find(|f| f.rule == "C2" && !f.suppressed)
        .unwrap()
        .message;
    assert!(
        msg.contains("Msg::Drain"),
        "names the missing variant: {msg}"
    );

    // Teaching the worker about `Drain` clears the finding.
    let fixed = r#"pub fn run(m: Msg) -> u32 {
    match m {
        Msg::Go(n) => n,
        Msg::Stop => 0,
        Msg::Query { q, reply } => { reply.send(q).ok(); q }
        Msg::Drain => 0,
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[
            ("crates/socsense-serve/src/msg.rs", grown),
            ("crates/socsense-serve/src/worker.rs", fixed),
        ],
    );
    assert_eq!(fired(&findings, "C2"), vec![], "{findings:#?}");
}

#[test]
fn c2_fires_when_a_baked_protocol_enum_loses_its_marker() {
    // socsense-serve's `Request` without `// detlint: protocol` is a
    // finding even though no match goes wrong: coverage cannot erode.
    let unmarked = r#"pub enum Request {
    Ingest(u32),
    Stats,
}
"#;
    let findings = check(
        "socsense-serve",
        &[("crates/socsense-serve/src/service.rs", unmarked)],
    );
    assert_eq!(
        fired(&findings, "C2"),
        vec![("crates/socsense-serve/src/service.rs", 1)],
        "{findings:#?}"
    );
}

#[test]
fn c2_allows_cfg_test_variants_matched_by_cfg_test_arms() {
    let with_test_variant = r#"// detlint: protocol
pub enum Msg {
    Go(u32),
    #[cfg(test)]
    InjectPanic,
}
"#;
    let worker = r#"pub fn run(m: Msg) -> u32 {
    match m {
        Msg::Go(n) => n,
        #[cfg(test)]
        Msg::InjectPanic => panic!("injected"),
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[
            ("crates/socsense-serve/src/msg.rs", with_test_variant),
            ("crates/socsense-serve/src/worker.rs", worker),
        ],
    );
    assert_eq!(fired(&findings, "C2"), vec![], "{findings:#?}");
    assert_eq!(fired(&findings, "P1"), vec![], "cfg(test) arm exempt");
}

// ---------------------------------------------------------------- C3

#[test]
fn c3_fires_on_spawn_without_any_join() {
    let src = r#"pub fn start() {
    std::thread::spawn(|| {});
}
"#;
    let findings = check("socsense-serve", &[("crates/socsense-serve/src/w.rs", src)]);
    assert_eq!(
        fired(&findings, "C3"),
        vec![("crates/socsense-serve/src/w.rs", 2)],
        "{findings:#?}"
    );

    // A join anywhere in the crate clears it; so does thread::scope.
    let joined = r#"pub fn start() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
pub fn stop(h: std::thread::JoinHandle<()>) {
    h.join().ok();
}
"#;
    let findings = check(
        "socsense-serve",
        &[("crates/socsense-serve/src/w.rs", joined)],
    );
    assert_eq!(fired(&findings, "C3"), vec![], "{findings:#?}");

    let scoped = r#"pub fn run_all() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
"#;
    let findings = check(
        "socsense-matrix",
        &[("crates/socsense-matrix/src/p.rs", scoped)],
    );
    assert_eq!(fired(&findings, "C3"), vec![], "scoped threads self-join");
}

#[test]
fn c3_fires_on_discarded_spawn_handle() {
    let src = r#"pub fn start() {
    let _ = std::thread::spawn(|| {});
    ()
}
pub fn stop(h: std::thread::JoinHandle<()>) {
    h.join().ok();
}
"#;
    let findings = check("socsense-serve", &[("crates/socsense-serve/src/w.rs", src)]);
    assert_eq!(
        fired(&findings, "C3"),
        vec![("crates/socsense-serve/src/w.rs", 2)],
        "{findings:#?}"
    );
}

#[test]
fn c3_fires_when_a_reply_channel_is_bound_but_never_answered() {
    let worker = r#"pub fn run(m: Msg) -> u32 {
    match m {
        Msg::Go(n) => n,
        Msg::Stop => 0,
        Msg::Query { q, reply } => q,
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[
            ("crates/socsense-serve/src/msg.rs", PROTO_ENUM),
            ("crates/socsense-serve/src/worker.rs", worker),
        ],
    );
    assert_eq!(
        fired(&findings, "C3"),
        vec![("crates/socsense-serve/src/worker.rs", 5)],
        "{findings:#?}"
    );

    // Forwarding the reply (not just `.send`ing it) counts.
    let forwards = r#"pub fn run(m: Msg) -> u32 {
    match m {
        Msg::Go(n) => n,
        Msg::Stop => 0,
        Msg::Query { q, reply } => answer(q, reply),
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[
            ("crates/socsense-serve/src/msg.rs", PROTO_ENUM),
            ("crates/socsense-serve/src/worker.rs", forwards),
        ],
    );
    assert_eq!(fired(&findings, "C3"), vec![], "{findings:#?}");
}

#[test]
fn c3_fires_when_a_rest_pattern_drops_the_reply_channel() {
    let worker = r#"pub fn run(m: Msg) -> u32 {
    match m {
        Msg::Go(n) => n,
        Msg::Stop => 0,
        Msg::Query { q, .. } => q,
    }
}
"#;
    let findings = check(
        "socsense-serve",
        &[
            ("crates/socsense-serve/src/msg.rs", PROTO_ENUM),
            ("crates/socsense-serve/src/worker.rs", worker),
        ],
    );
    assert_eq!(
        fired(&findings, "C3"),
        vec![("crates/socsense-serve/src/worker.rs", 5)],
        "{findings:#?}"
    );
}

// ---------------------------------------------------------------- F1

#[test]
fn f1_fires_on_cross_statement_reduction_of_parallel_partials() {
    let src = r#"pub fn total(par: Parallelism, xs: &[f64]) -> f64 {
    let partials = par_map_collect(par, xs, |x| x * 2.0);
    let mut acc = 0.0;
    for p in &partials {
        acc += p;
    }
    acc
}
"#;
    let findings = check("socsense-core", &[("crates/socsense-core/src/em.rs", src)]);
    assert_eq!(
        fired(&findings, "F1"),
        vec![("crates/socsense-core/src/em.rs", 5)],
        "{findings:#?}"
    );

    let sum = r#"pub fn total(par: Parallelism, xs: &[f64]) -> f64 {
    let partials = par_map_collect(par, xs, |x| x * 2.0);
    let t = partials.iter().sum::<f64>();
    t
}
"#;
    let findings = check("socsense-core", &[("crates/socsense-core/src/em.rs", sum)]);
    assert_eq!(
        fired(&findings, "F1"),
        vec![("crates/socsense-core/src/em.rs", 3)],
        "{findings:#?}"
    );

    // The blessed route: reduce inside par_map_reduce (one statement —
    // D3's territory, not F1's) or keep the partials unreduced.
    let blessed = r#"pub fn total(par: Parallelism, xs: &[f64]) -> f64 {
    let partials = par_map_collect(par, xs, |x| x * 2.0);
    let shipped = partials.len();
    shipped as f64
}
"#;
    let findings = check(
        "socsense-core",
        &[("crates/socsense-core/src/em.rs", blessed)],
    );
    assert_eq!(fired(&findings, "F1"), vec![], "{findings:#?}");
}

#[test]
fn f1_taints_through_local_parallel_helpers() {
    let helper = r#"pub fn partials_of(par: Parallelism, xs: &[f64]) -> Vec<f64> {
    par_map_collect(par, xs, |x| x * 2.0)
}
"#;
    let caller = r#"pub fn total(par: Parallelism, xs: &[f64]) -> f64 {
    let parts = partials_of(par, xs);
    parts.iter().sum::<f64>()
}
"#;
    let findings = check(
        "socsense-core",
        &[
            ("crates/socsense-core/src/helper.rs", helper),
            ("crates/socsense-core/src/em.rs", caller),
        ],
    );
    // The caller binds the helper's parallel output and reduces it two
    // statements later — wait, it reduces in the tail expression, which
    // is a separate statement window from the `let`.
    assert_eq!(
        fired(&findings, "F1"),
        vec![("crates/socsense-core/src/em.rs", 3)],
        "{findings:#?}"
    );
}

#[test]
fn f1_is_silent_in_the_blessed_merge_file_and_for_serial_reductions() {
    let src = r#"pub fn total(par: Parallelism, xs: &[f64]) -> f64 {
    let partials = par_map_collect(par, xs, |x| x * 2.0);
    partials.iter().sum::<f64>()
}
"#;
    let findings = check(
        "socsense-matrix",
        &[("crates/socsense-matrix/src/parallel.rs", src)],
    );
    assert_eq!(fired(&findings, "F1"), vec![], "blessed file exempt");

    let serial = r#"pub fn total(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
    doubled.iter().sum::<f64>()
}
"#;
    let findings = check(
        "socsense-core",
        &[("crates/socsense-core/src/em.rs", serial)],
    );
    assert_eq!(fired(&findings, "F1"), vec![], "no parallel taint, no rule");
}

// ----------------------------------------------------- suppressions

#[test]
fn flow_findings_respect_justified_suppressions() {
    let src = r#"pub fn f(x: Option<u32>) -> u32 {
    // detlint: allow(P1) -- fixture: invariant argued here
    x.unwrap()
}
"#;
    let findings = check("socsense-serve", &[("crates/socsense-serve/src/w.rs", src)]);
    assert_eq!(fired(&findings, "P1"), vec![], "{findings:#?}");
    let suppressed: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "P1" && f.suppressed)
        .collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(
        suppressed[0].justification.as_deref(),
        Some("fixture: invariant argued here")
    );
}
