//! Span-soundness fuzz for the detlint lexer.
//!
//! Two corpora, one contract. Every token the lexer emits must satisfy:
//!
//! 1. `offset` lands on a char boundary and
//!    `src[offset..offset + text.len()] == text` — the span really is
//!    the token (this is the invariant the byte/char confusion bug of
//!    the checkpoint-log PR violated, so it gets its own regression
//!    corpus here);
//! 2. spans never overlap and come out in source order;
//! 3. `line` equals one plus the number of `\n` bytes before `offset`.
//!
//! Corpus A is the live workspace: every `.rs` file under `crates/`,
//! so any real construct the tree grows (raw strings, byte literals,
//! lifetimes, multibyte idents) is covered the day it lands. Corpus B
//! is proptest-generated adversarial soup biased toward lexer edge
//! fragments: unterminated literals, escapes, `b'\n'`, emoji, nested
//! comment openers.

use proptest::prelude::*;
use socsense_lint::lexer::lex;

/// Panics with a labelled message on the first invariant violation.
fn assert_spans_sound(label: &str, src: &str) {
    let lexed = lex(src);
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for (i, tok) in lexed.tokens.iter().enumerate() {
        let start = tok.offset as usize;
        let end = start + tok.text.len();
        assert!(
            end <= src.len(),
            "{label}: token {i} ({:?}) span {start}..{end} exceeds source len {}",
            tok.text,
            src.len()
        );
        let slice = src.get(start..end).unwrap_or_else(|| {
            panic!(
                "{label}: token {i} ({:?}) span {start}..{end} splits a char boundary",
                tok.text
            )
        });
        assert_eq!(
            slice, tok.text,
            "{label}: token {i} span text mismatch at offset {start}"
        );
        assert!(
            start >= prev_end,
            "{label}: token {i} ({:?}) at {start} overlaps the previous token ending at {prev_end}",
            tok.text
        );
        assert!(
            tok.line >= prev_line,
            "{label}: token {i} line {} went backwards from {prev_line}",
            tok.line
        );
        let newlines = src.as_bytes()[..start]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        assert_eq!(
            tok.line as usize,
            newlines + 1,
            "{label}: token {i} ({:?}) at offset {start} claims line {}",
            tok.text,
            tok.line
        );
        prev_end = end;
        prev_line = tok.line;
    }
}

fn workspace_rs_files() -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![socsense_bench::workspace_root().join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("reading workspace dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn every_workspace_source_file_lexes_with_sound_spans() {
    let files = workspace_rs_files();
    assert!(
        files.len() > 50,
        "workspace walk looks truncated: {} files",
        files.len()
    );
    for path in files {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        assert_spans_sound(&path.display().to_string(), &src);
    }
}

/// Hand-picked regressions for the byte/char offset class: multibyte
/// characters *before* a token must not shift its reported span, and a
/// newline smuggled inside a byte literal must not advance the line
/// counter twice.
#[test]
fn multibyte_prefixes_and_escaped_newlines_keep_spans_honest() {
    let cases: &[&str] = &[
        "// é commentaire\nlet x = 1;\n",
        "let s = \"🦀🦀🦀\"; let y = s;\n",
        "let b = b'\\n'; let after = 1;\n",
        "let c = '\\n'; let after = 2;\n",
        "let r = r#\"raw \" with quote\"#; next()\n",
        "fn f<'a>(x: &'a str) -> &'a str { x }\n",
        "let émoji = \"noël\"; émoji.len();\n",
        "/* block \n comment */ let z = 0x2a;\n",
        // Unterminated forms must degrade, not panic or mis-span.
        "let s = \"never closed\nlet t = 1;\n",
        "let r = r#\"still open\nlet u = 2;\n",
        "let c = 'x\nlet v = 3;\n",
    ];
    for src in cases {
        assert_spans_sound("regression case", src);
    }
}

/// Fragment pool biased toward every branch of the scanner: string and
/// raw-string openers, char/lifetime ambiguity, comment introducers,
/// directives, multibyte text, and bare structure. The last entries are
/// raw single characters so the soup also hits sequences no fragment
/// anticipates.
const FRAGMENTS: &[&str] = &[
    "\"",
    "'",
    "\\",
    "\n",
    "r#\"",
    "\"#",
    "b\"",
    "b'",
    "b'\\n'",
    "//",
    "/*",
    "*/",
    "// detlint: allow(D1) -- x",
    "// detlint: contract = deterministic",
    "// detlint: protocol",
    "'a",
    "'static",
    "🦀",
    "é",
    "\u{0}",
    "\t",
    "\r\n",
    "0x2a",
    "1_000.5e-3",
    "ident",
    "fn f() { }",
    "match m { _ => {} }",
    "#",
    "{",
    "}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn adversarial_fragment_soup_lexes_with_sound_spans(
        idxs in vec(0usize..1000, 0..64)
    ) {
        let src: String = idxs
            .iter()
            .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
            .collect();
        assert_spans_sound("fragment soup", &src);
    }

    #[test]
    fn arbitrary_unicode_lexes_with_sound_spans(
        codes in vec(0u32..0x11_0000, 0..256)
    ) {
        // Surrogate code points do not survive `char::from_u32`; every
        // other scalar value — control bytes, astral plane, BOM — does.
        let src: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        assert_spans_sound("arbitrary unicode", &src);
    }
}
