//! Live-workspace meta-test plus an end-to-end exercise of the
//! `detlint` binary against a throwaway fake workspace.
//!
//! The meta-test is the teeth of the determinism contract: the real
//! source tree must lint clean (zero *unsuppressed* findings, every
//! suppression justified). The binary test is the negative control CI
//! cannot express directly — it plants a known-bad file, asserts exit 1
//! and a JSON finding at the right line, fixes the file, and asserts
//! exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

use serde_json::Value;
use socsense_lint::scan_workspace;

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.as_object()
        .unwrap_or_else(|| panic!("expected object with key {key}, got {v:?}"))
        .get(key)
        .unwrap_or_else(|| panic!("missing key {key} in {v:?}"))
}

fn as_bool(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        other => panic!("expected bool, got {other:?}"),
    }
}

#[test]
fn live_workspace_has_zero_unsuppressed_findings() {
    let root = socsense_bench::workspace_root();
    let report = scan_workspace(&root).expect("scanning the live workspace");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );

    let loose: Vec<_> = report.findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        loose.is_empty(),
        "live workspace has unsuppressed detlint findings:\n{:#?}",
        loose
    );
    for f in report.findings.iter().filter(|f| f.suppressed) {
        let why = f.justification.as_deref().unwrap_or("");
        assert!(
            !why.trim().is_empty(),
            "suppression at {}:{} has an empty justification",
            f.file,
            f.line
        );
    }
}

#[test]
fn live_workspace_declares_every_expected_crate_deterministic() {
    let root = socsense_bench::workspace_root();
    let report = scan_workspace(&root).expect("scanning the live workspace");
    for name in socsense_lint::rules::EXPECT_DETERMINISTIC {
        let found = report
            .crates
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("crate {name} missing from scan"));
        assert_eq!(
            found.1, "deterministic",
            "crate {name} lost its deterministic contract"
        );
    }
}

/// Builds a minimal fake workspace under a unique temp dir and returns
/// its root. Layout: `Cargo.toml` with `[workspace]`, one crate
/// `crates/socsense-core` with the given `src/lib.rs` contents.
fn fake_workspace(tag: &str, lib_rs: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("detlint-e2e-{tag}-{}", std::process::id()));
    let src = root.join("crates/socsense-core/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
    root
}

fn detlint(root: &Path, format: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["--root", &root.display().to_string(), "--format", format])
        .output()
        .expect("running detlint")
}

#[test]
fn binary_flags_planted_violation_then_passes_after_fix() {
    let bad = concat!(
        "// detlint: contract = deterministic\n",
        "#![forbid(unsafe_code)]\n",
        "use std::collections::HashMap;\n",
        "pub fn f() {\n",
        "    let m: HashMap<u32, u32> = HashMap::new();\n",
        "    for (k, v) in &m {\n",
        "        let _ = (k, v);\n",
        "    }\n",
        "}\n"
    );
    let root = fake_workspace("bad", bad);

    let out = detlint(&root, "json");
    assert_eq!(
        out.status.code(),
        Some(1),
        "planted D1 violation must fail the run; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json: Value =
        serde_json::from_str(&stdout).expect("detlint --format json emits valid JSON");
    assert_eq!(field(&json, "unsuppressed").as_f64(), Some(1.0));
    let finding = &field(&json, "findings").as_array().unwrap()[0];
    assert_eq!(field(finding, "rule").as_str(), Some("D1"));
    assert_eq!(
        field(finding, "file").as_str(),
        Some("crates/socsense-core/src/lib.rs")
    );
    assert_eq!(
        field(finding, "line").as_f64(),
        Some(6.0),
        "fires on the `for` line"
    );
    assert!(!as_bool(field(finding, "suppressed")));

    // Fix: keyed lookup over a BTreeMap — the same shape the real
    // apollo/twitter fixes took.
    let good = concat!(
        "// detlint: contract = deterministic\n",
        "#![forbid(unsafe_code)]\n",
        "use std::collections::BTreeMap;\n",
        "pub fn f() {\n",
        "    let m: BTreeMap<u32, u32> = BTreeMap::new();\n",
        "    for (k, v) in &m {\n",
        "        let _ = (k, v);\n",
        "    }\n",
        "}\n"
    );
    std::fs::write(root.join("crates/socsense-core/src/lib.rs"), good).unwrap();

    let out = detlint(&root, "text");
    assert_eq!(
        out.status.code(),
        Some(0),
        "fixed tree must pass; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("(0 unsuppressed)"),
        "summary line reports clean: {text}"
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn binary_flags_stale_match_when_protocol_enum_gains_a_variant() {
    // The v2 acceptance scenario end-to-end: a protocol enum grows a
    // `Drain` variant, the worker's match does not, and the binary
    // fails with a C2 finding at the match line. Teaching the worker
    // about the new variant turns the run green again.
    let stale = concat!(
        "// detlint: contract = deterministic\n",
        "#![forbid(unsafe_code)]\n",
        "// detlint: protocol\n",
        "pub enum Msg {\n",
        "    Go(u32),\n",
        "    Stop,\n",
        "    Drain,\n",
        "}\n",
        "pub fn run(m: Msg) -> u32 {\n",
        "    match m {\n",
        "        Msg::Go(n) => n,\n",
        "        Msg::Stop => 0,\n",
        "    }\n",
        "}\n"
    );
    let root = std::env::temp_dir().join(format!("detlint-e2e-c2-{}", std::process::id()));
    let src = root.join("crates/socsense-serve/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(src.join("lib.rs"), stale).unwrap();

    let out = detlint(&root, "json");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale protocol match must fail the run; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let findings = field(&json, "findings").as_array().unwrap().clone();
    let c2: Vec<&Value> = findings
        .iter()
        .filter(|f| field(f, "rule").as_str() == Some("C2") && !as_bool(field(f, "suppressed")))
        .collect();
    assert_eq!(c2.len(), 1, "exactly one C2 finding: {findings:#?}");
    assert_eq!(
        field(c2[0], "file").as_str(),
        Some("crates/socsense-serve/src/lib.rs")
    );
    assert_eq!(
        field(c2[0], "line").as_f64(),
        Some(10.0),
        "fires on the `match` line"
    );
    assert!(
        field(c2[0], "message")
            .as_str()
            .unwrap()
            .contains("Msg::Drain"),
        "message names the missing variant"
    );

    let fixed = stale.replace(
        "        Msg::Stop => 0,\n",
        "        Msg::Stop => 0,\n        Msg::Drain => 0,\n",
    );
    std::fs::write(src.join("lib.rs"), fixed).unwrap();
    let out = detlint(&root, "text");
    assert_eq!(
        out.status.code(),
        Some(0),
        "covering the new variant passes; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn binary_accepts_justified_suppression_but_rejects_empty_one() {
    let justified = concat!(
        "// detlint: contract = deterministic\n",
        "#![forbid(unsafe_code)]\n",
        "pub fn f() {\n",
        "    // detlint: allow(D2) -- test fixture clock, output unused\n",
        "    let t = std::time::Instant::now();\n",
        "    let _ = t;\n",
        "}\n"
    );
    let root = fake_workspace("sup", justified);
    let out = detlint(&root, "text");
    assert_eq!(
        out.status.code(),
        Some(0),
        "justified suppression passes; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let empty = justified.replace(" -- test fixture clock, output unused", "");
    std::fs::write(root.join("crates/socsense-core/src/lib.rs"), empty).unwrap();
    let out = detlint(&root, "json");
    assert_eq!(
        out.status.code(),
        Some(1),
        "empty justification fails the run"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json: Value = serde_json::from_str(&stdout).unwrap();
    let rules: Vec<&str> = field(&json, "findings")
        .as_array()
        .unwrap()
        .iter()
        .filter(|f| !as_bool(field(f, "suppressed")))
        .map(|f| field(f, "rule").as_str().unwrap())
        .collect();
    assert!(rules.contains(&"S1"), "S1 fires: {rules:?}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sharded_tier_modules_stay_under_the_deterministic_contract() {
    let root = socsense_bench::workspace_root();
    let report = scan_workspace(&root).expect("scanning the live workspace");

    // The sharded serving tier lives in socsense-serve; its contract
    // must not quietly loosen to `tooling` now that router/shard
    // modules carry thread spawns and channel plumbing.
    let serve = report
        .crates
        .iter()
        .find(|(n, _)| n == "socsense-serve")
        .expect("socsense-serve missing from scan");
    assert_eq!(
        serve.1, "deterministic",
        "socsense-serve lost its deterministic contract"
    );

    // The router's construction-time `.expect()`s are justified
    // suppressions; their presence in the report proves the new module
    // is actually scanned under the strict rule set rather than
    // skipped. (A rule change that stops flagging them at all would
    // also trip this, which is the point: coverage must be explicit.)
    let router_suppressed = report
        .findings
        .iter()
        .filter(|f| f.file.ends_with("socsense-serve/src/router.rs") && f.suppressed)
        .count();
    assert!(
        router_suppressed >= 2,
        "expected the router's justified suppressions in the scan, found {router_suppressed}"
    );

    // And neither new module may carry an unsuppressed finding.
    let loose: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            !f.suppressed
                && (f.file.ends_with("socsense-serve/src/router.rs")
                    || f.file.ends_with("socsense-serve/src/shard.rs"))
        })
        .collect();
    assert!(
        loose.is_empty(),
        "sharded-tier modules have unsuppressed detlint findings:\n{loose:#?}"
    );
}

#[test]
fn discovery_crate_stays_under_the_deterministic_contract() {
    let root = socsense_bench::workspace_root();
    let report = scan_workspace(&root).expect("scanning the live workspace");

    // Dependency discovery feeds D-hat straight into the pipeline, so it
    // rides the same bit-identical contract as the estimators. A PR that
    // drops the crate from EXPECT_DETERMINISTIC, or removes its header,
    // must fail here rather than silently shrink lint coverage.
    assert!(
        socsense_lint::rules::EXPECT_DETERMINISTIC.contains(&"socsense-discover"),
        "socsense-discover dropped from EXPECT_DETERMINISTIC"
    );
    let discover = report
        .crates
        .iter()
        .find(|(n, _)| n == "socsense-discover")
        .expect("socsense-discover missing from scan");
    assert_eq!(
        discover.1, "deterministic",
        "socsense-discover lost its deterministic contract"
    );
    let loose: Vec<_> = report
        .findings
        .iter()
        .filter(|f| !f.suppressed && f.file.contains("socsense-discover/"))
        .collect();
    assert!(
        loose.is_empty(),
        "socsense-discover has unsuppressed detlint findings:\n{loose:#?}"
    );

    // Negative control: loosening the declaration is a C1 finding.
    let (_, findings) = socsense_lint::rules::declared_contract(
        "socsense-discover",
        "crates/socsense-discover/src/lib.rs",
        "// detlint: contract = tooling\npub fn f() {}\n",
    );
    assert!(
        findings.iter().any(|f| f.rule == "C1"),
        "loosening socsense-discover's contract must be a C1 finding, got {findings:#?}"
    );
}
