//! Rule-level fixture corpus for detlint.
//!
//! Each rule gets at least one known-bad snippet that must fire at an
//! exact `file:line`, and a known-good sibling that must stay silent.
//! The snippets live in raw strings — detlint's lexer strips string
//! literals, so scanning this test file never trips over its own
//! fixtures. Suppression round-trips (justified, empty, wrong-rule)
//! and contract declaration errors are covered here too.

use socsense_lint::{check_file, declared_contract, Contract, FileInput, Finding};

fn check(contract: Contract, rel_path: &str, source: &str) -> Vec<Finding> {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("socsense-core");
    check_file(&FileInput {
        crate_name,
        rel_path,
        is_crate_root: false,
        contract,
        source,
    })
}

fn det(source: &str) -> Vec<Finding> {
    check(
        Contract::Deterministic,
        "crates/socsense-core/src/x.rs",
        source,
    )
}

fn fired(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fires_on_hashmap_for_loop_at_exact_line() {
    let src = r#"use std::collections::HashMap;
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    for (k, v) in &m {
        let _ = (k, v);
    }
}
"#;
    assert_eq!(fired(&det(src), "D1"), vec![4]);
}

#[test]
fn d1_fires_on_keys_values_iter_drain() {
    let src = r#"use std::collections::{HashMap, HashSet};
fn f() {
    let mut m = HashMap::<u32, u32>::new();
    let s: HashSet<u32> = HashSet::new();
    let _ = m.keys().count();
    let _ = m.values().max();
    let _ = s.iter().sum::<u32>();
    for x in m.drain() {
        let _ = x;
    }
}
"#;
    assert_eq!(fired(&det(src), "D1"), vec![5, 6, 7, 8]);
}

#[test]
fn d1_fires_through_index_chains() {
    let src = r#"use std::collections::HashMap;
fn f(cu: usize) {
    let tables: Vec<HashMap<u32, usize>> = vec![HashMap::new()];
    let _ = tables[cu].iter().max_by_key(|(_, &n)| n);
}
"#;
    assert_eq!(fired(&det(src), "D1"), vec![4]);
}

#[test]
fn d1_fires_on_hashset_set_ops() {
    let src = r#"fn f(a: &str, b: &str) -> usize {
    let sa: std::collections::HashSet<&str> = a.split_whitespace().collect();
    let sb: std::collections::HashSet<&str> = b.split_whitespace().collect();
    sa.intersection(&sb).count()
}
"#;
    assert_eq!(fired(&det(src), "D1"), vec![4]);
}

#[test]
fn d1_silent_on_keyed_lookup_and_btreemap() {
    let src = r#"use std::collections::{BTreeMap, HashMap};
fn f() {
    let mut m: HashMap<&str, u32> = HashMap::new();
    m.insert("k", 1);
    let _ = m.get("k");
    let _ = m["k"];
    let _ = m.len();
    let _ = m.entry("x").or_insert(2);
    let b: BTreeMap<u32, u32> = BTreeMap::new();
    for (k, v) in &b {
        let _ = (k, v);
    }
    let _ = b.keys().count();
    let plain = vec![1, 2, 3];
    let _ = plain.iter().sum::<i32>();
}
"#;
    assert_eq!(det(src).len(), 0, "{:?}", det(src));
}

#[test]
fn d1_silent_in_tooling_crates() {
    let src = r#"use std::collections::HashMap;
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    for (k, v) in &m {
        let _ = (k, v);
    }
}
"#;
    let f = check(Contract::Tooling, "crates/socsense-bench/src/x.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_each_nondeterminism_source() {
    let src = r#"use std::time::{Instant, SystemTime};
fn f() {
    let t = Instant::now();
    let s = SystemTime::now();
    let r = rand::thread_rng();
    let v = std::env::var("SEED");
    let _ = (t, s, r, v);
}
"#;
    assert_eq!(fired(&det(src), "D2"), vec![1, 3, 4, 5, 6]);
    // line 1: `SystemTime` in the use statement — any mention of the
    // type is flagged, not just `::now()` calls.
}

#[test]
fn d2_fires_on_pointer_cast() {
    let src = r#"fn f(x: &u32) -> usize {
    let p = x as *const u32;
    p as usize
}
"#;
    assert_eq!(fired(&det(src), "D2"), vec![2]);
}

#[test]
fn d2_silent_on_seeded_rng_and_env_args() {
    let src = r#"fn f() {
    let rng = StdRng::seed_from_u64(42);
    let arg = std::env::args().nth(1);
    let _ = (rng, arg);
}
"#;
    assert_eq!(det(src).len(), 0);
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fires_on_float_reduction_over_parallel_results() {
    let src = r#"fn f(par: Parallelism, n: usize, xs: &[f64]) -> f64 {
    let total = parallel::par_chunks(par, n, |r| chunk(xs, r))
        .iter()
        .map(|c| c.local_sum)
        .sum::<f64>();
    total
}
"#;
    assert_eq!(fired(&det(src), "D3"), vec![5]);
}

#[test]
fn d3_fires_on_fold_merge_of_shards() {
    let src = r#"fn f(par: Parallelism, n: usize) -> f64 {
    parallel::par_map_collect(par, n, eval).into_iter().fold(0.0, |a, b| a + b)
}
"#;
    assert_eq!(fired(&det(src), "D3"), vec![2]);
}

#[test]
fn d3_silent_on_serial_reductions_and_blessed_file() {
    let serial = r#"fn f(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
"#;
    assert_eq!(det(serial).len(), 0);

    let merge = r#"fn merge(shards: Vec<f64>, par: Parallelism, n: usize) -> f64 {
    parallel::par_chunks(par, n, eval).iter().sum::<f64>()
}
"#;
    let blessed = check(
        Contract::Deterministic,
        "crates/socsense-matrix/src/parallel.rs",
        merge,
    );
    assert!(blessed.is_empty(), "blessed merge helpers are exempt");
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_fires_on_partial_cmp_unwrap_at_exact_line() {
    let src = r#"fn f(scores: &mut Vec<f64>) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scores.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
}
"#;
    assert_eq!(fired(&det(src), "D4"), vec![2, 3]);
}

#[test]
fn d4_silent_on_total_cmp_and_guarded_fallback() {
    let src = r#"fn f(scores: &mut Vec<f64>, idx: &mut Vec<u32>) {
    scores.sort_by(f64::total_cmp);
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}
"#;
    assert_eq!(det(src).len(), 0, "{:?}", det(src));
}

// ---------------------------------------------------------------- D5

#[test]
fn d5_fires_on_missing_forbid_unsafe_header() {
    let src = "pub fn f() {}\n";
    let findings = check_file(&FileInput {
        crate_name: "socsense-core",
        rel_path: "crates/socsense-core/src/lib.rs",
        is_crate_root: true,
        contract: Contract::Deterministic,
        source: src,
    });
    assert_eq!(fired(&findings, "D5"), vec![1]);

    let good = "// detlint: contract = deterministic\n#![forbid(unsafe_code)]\npub fn f() {}\n";
    let findings = check_file(&FileInput {
        crate_name: "socsense-core",
        rel_path: "crates/socsense-core/src/lib.rs",
        is_crate_root: true,
        contract: Contract::Deterministic,
        source: good,
    });
    assert!(findings.is_empty(), "{findings:?}");
}

// The serve-path unwrap audit graduated from D5's per-file check to
// the workspace-aware P1 rule; its fixtures live in `flow_fixtures.rs`.

// ------------------------------------------------------ suppressions

#[test]
fn suppression_with_justification_silences_same_and_next_line() {
    let trailing = r#"use std::time::Instant;
fn f() {
    let t = Instant::now(); // detlint: allow(D2) -- bench-only timer
    let _ = t;
}
"#;
    let f = det(trailing);
    assert_eq!(fired(&f, "D2"), Vec::<u32>::new(), "{f:?}");
    assert!(f
        .iter()
        .any(|x| x.suppressed && x.justification.as_deref() == Some("bench-only timer")));

    let preceding = r#"use std::time::Instant;
fn f() {
    // detlint: allow(D2) -- bench-only timer
    let t = Instant::now();
    let _ = t;
}
"#;
    assert_eq!(fired(&det(preceding), "D2"), Vec::<u32>::new());
}

#[test]
fn suppression_with_empty_justification_is_an_error() {
    let src = r#"use std::time::Instant;
fn f() {
    // detlint: allow(D2)
    let t = Instant::now();
    let _ = t;
}
"#;
    let f = det(src);
    assert_eq!(fired(&f, "S1"), vec![3], "empty justification errors");
    let bare = r#"use std::time::Instant;
fn f() {
    // detlint: allow(D2) --
    let t = Instant::now();
    let _ = t;
}
"#;
    assert_eq!(fired(&det(bare), "S1"), vec![3], "bare `--` errors too");
}

#[test]
fn suppression_for_the_wrong_rule_does_not_silence() {
    let src = r#"use std::time::Instant;
fn f() {
    // detlint: allow(D1) -- not the rule that fires here
    let t = Instant::now();
    let _ = t;
}
"#;
    assert_eq!(fired(&det(src), "D2"), vec![4]);
}

#[test]
fn suppression_does_not_leak_past_the_next_line() {
    let src = r#"use std::time::Instant;
fn f() {
    // detlint: allow(D2) -- covers only the next line
    let a = Instant::now();
    let b = Instant::now();
    let _ = (a, b);
}
"#;
    assert_eq!(fired(&det(src), "D2"), vec![5]);
}

#[test]
fn malformed_directive_is_an_error() {
    let src = "// detlint: allow D2 -- missing parens\nfn f() {}\n";
    assert_eq!(fired(&det(src), "S1"), vec![1]);
}

// --------------------------------------------------------- contracts

#[test]
fn contract_declarations_parse_and_default() {
    let (c, f) = declared_contract(
        "socsense-core",
        "crates/socsense-core/src/lib.rs",
        "// detlint: contract = deterministic\n#![forbid(unsafe_code)]\n",
    );
    assert_eq!(c, Contract::Deterministic);
    assert!(f.is_empty());

    let (c, f) = declared_contract(
        "socsense-bench",
        "crates/socsense-bench/src/lib.rs",
        "// detlint: contract = tooling\n",
    );
    assert_eq!(c, Contract::Tooling);
    assert!(f.is_empty());
}

#[test]
fn missing_contract_is_an_error_but_still_lints_strict() {
    let (c, f) = declared_contract(
        "socsense-core",
        "crates/socsense-core/src/lib.rs",
        "#![forbid(unsafe_code)]\n",
    );
    assert_eq!(c, Contract::Deterministic, "named crates stay strict");
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, "C1");
}

#[test]
fn serving_path_crates_cannot_loosen_to_tooling() {
    let (c, f) = declared_contract(
        "socsense-serve",
        "crates/socsense-serve/src/lib.rs",
        "// detlint: contract = tooling\n",
    );
    assert_eq!(c, Contract::Tooling, "declaration honoured…");
    assert_eq!(f.len(), 1, "…but reported");
    assert_eq!(f[0].rule, "C1");
    assert!(f[0].message.contains("cannot loosen"));
}
