//! A lightweight item parser on top of [`crate::lexer`]: enough
//! `fn`/`enum`/`match` structure for the workspace-aware rule families
//! (P, C2/C3, F), still dependency-free.
//!
//! This is deliberately *not* a grammar-complete Rust parser. It
//! recovers exactly the shapes the v2 rules consume:
//!
//! - every `fn` item with its name and body token range (the
//!   call-graph nodes),
//! - every `enum` item with its variants, each variant's `#[cfg(test)]`
//!   attribution and whether it carries a `reply:` channel field (the
//!   protocol message map),
//! - every `match` expression with its arm pattern/body token ranges
//!   and per-arm `#[cfg(test)]` attribution (the exhaustiveness
//!   audit),
//! - generalized `#[cfg(test)]` ranges covering attributed *items and
//!   match arms*, not just `mod tests { … }` blocks.
//!
//! Anything the parser cannot make sense of degrades to "no item
//! here", never a panic — the same contract the lexer makes — so a
//! half-edited file still lints.

use crate::lexer::{Tok, TokKind};

/// One `fn` item: a call-graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body `{ … }`, inclusive of both braces.
    pub body: (usize, usize),
    /// Whether the item itself carries `#[test]` / `#[cfg(test)]`.
    pub is_test: bool,
}

/// One variant of a parsed enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumVariant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant name.
    pub line: u32,
    /// Whether the variant is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// Whether the variant is a struct variant with a `reply:` field —
    /// a reply-carrying protocol message the C3 rule audits.
    pub has_reply: bool,
}

/// One `enum` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variants in declaration order.
    pub variants: Vec<EnumVariant>,
}

/// One arm of a `match` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchArm {
    /// 1-based line the pattern starts on.
    pub line: u32,
    /// Whether the arm carries `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Token index range `[start, end)` of the pattern, guard included.
    pub pat: (usize, usize),
    /// Token index range `[start, end)` of the arm body.
    pub body: (usize, usize),
}

/// One `match` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSite {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Token index range `[start, end)` of the scrutinee.
    pub scrutinee: (usize, usize),
    /// Arms in source order.
    pub arms: Vec<MatchArm>,
}

/// The parsed structure of one file.
#[derive(Debug, Default)]
pub struct FileTree {
    /// Every `fn` item, nested ones included, in source order.
    pub fns: Vec<FnDef>,
    /// Every `enum` item in source order.
    pub enums: Vec<EnumDef>,
    /// Every `match` expression in source order (nested ones get their
    /// own entry).
    pub matches: Vec<MatchSite>,
    /// Token index ranges (inclusive) covered by `#[cfg(test)]`.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileTree {
    /// Whether token index `idx` lies inside any `#[cfg(test)]` range.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }
}

/// Index of the token matching `open` at `open_idx` (`{`/`}`, `(`/`)`,
/// `[`/`]`). Returns the last token index when unbalanced.
fn balanced(toks: &[Tok], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut k = open_idx;
    while k < toks.len() {
        if toks[k].is_punct(open) {
            depth += 1;
        } else if toks[k].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// Whether the attribute group opening at `bracket` (`#` is at
/// `bracket - 1`) mentions both `cfg` and `test` — `#[cfg(test)]` in
/// any spelling — or is a bare `#[test]`.
fn attr_is_test(toks: &[Tok], bracket: usize) -> (bool, usize) {
    let end = balanced(toks, bracket, '[', ']');
    let body = &toks[bracket + 1..end];
    let has = |s: &str| body.iter().any(|t| t.is_ident(s));
    let is_test = (has("cfg") && has("test")) || (body.len() == 1 && body[0].is_ident("test"));
    (is_test, end)
}

/// Scans forward over consecutive `#[…]` attribute groups starting at
/// `i`; returns (first index past the attributes, whether any was a
/// test attribute).
fn skip_attrs(toks: &[Tok], mut i: usize) -> (usize, bool) {
    let mut test = false;
    while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
        let (is_test, end) = attr_is_test(toks, i + 1);
        test |= is_test;
        i = end + 1;
    }
    (i, test)
}

/// Whether the item/arm starting at `start` is preceded by a test
/// attribute (scanning backward over `#[…]` groups).
fn has_test_attr_before(toks: &[Tok], start: usize) -> bool {
    let mut k = start;
    while k >= 2 && toks[k - 1].is_punct(']') {
        // Walk back to the matching `[`.
        let mut depth = 0i32;
        let mut j = k - 1;
        loop {
            if toks[j].is_punct(']') {
                depth += 1;
            } else if toks[j].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || !toks[j - 1].is_punct('#') {
            return false;
        }
        if attr_is_test(toks, j).0 {
            return true;
        }
        k = j - 1;
    }
    false
}

/// Parses the token stream of one file into its item tree.
pub fn parse(toks: &[Tok]) -> FileTree {
    let mut tree = FileTree {
        test_ranges: cfg_test_ranges(toks),
        ..FileTree::default()
    };
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some((def, next)) = parse_fn(toks, i) {
                tree.fns.push(def);
                // Do not skip the body: nested fns/matches inside it
                // must still be discovered.
                i = next;
                continue;
            }
        } else if toks[i].is_ident("enum") {
            if let Some((def, next)) = parse_enum(toks, i) {
                tree.enums.push(def);
                i = next;
                continue;
            }
        } else if toks[i].is_ident("match") {
            if let Some(site) = parse_match(toks, i) {
                tree.matches.push(site);
                // Continue scanning *inside* the match for nested sites.
            }
        }
        i += 1;
    }
    tree
}

/// Parses a `fn` item starting at the `fn` keyword; returns the def and
/// the index to resume scanning from (just past the body's opening
/// brace, so nested items are still visited).
fn parse_fn(toks: &[Tok], kw: usize) -> Option<(FnDef, usize)> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(` pointer type or `Fn` trait sugar
    }
    // Signature: scan to the body `{` at group depth 0. A `;` first
    // means a bodyless trait/extern declaration — not a graph node.
    let mut depth = 0i32;
    let mut j = kw + 2;
    let open = loop {
        let t = toks.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            break j;
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
        j += 1;
    };
    let close = balanced(toks, open, '{', '}');
    Some((
        FnDef {
            name: name_tok.text.clone(),
            line: toks[kw].line,
            body: (open, close),
            is_test: has_test_attr_before(toks, kw),
        },
        open + 1,
    ))
}

/// Parses an `enum` item starting at the `enum` keyword.
fn parse_enum(toks: &[Tok], kw: usize) -> Option<(EnumDef, usize)> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Skip generics/where to the body `{`; a `;` first would be
    // something else entirely.
    let mut j = kw + 2;
    let open = loop {
        let t = toks.get(j)?;
        if t.is_punct('{') {
            break j;
        }
        if t.is_punct(';') {
            return None;
        }
        j += 1;
    };
    let close = balanced(toks, open, '{', '}');
    let mut variants = Vec::new();
    let mut k = open + 1;
    while k < close {
        let (past_attrs, cfg_test) = skip_attrs(toks, k);
        k = past_attrs;
        if k >= close || toks[k].kind != TokKind::Ident {
            break;
        }
        let name = toks[k].text.clone();
        let line = toks[k].line;
        let mut has_reply = false;
        k += 1;
        if k < close && toks[k].is_punct('(') {
            k = balanced(toks, k, '(', ')') + 1;
        } else if k < close && toks[k].is_punct('{') {
            let end = balanced(toks, k, '{', '}');
            has_reply = toks[k..end]
                .windows(2)
                .any(|w| w[0].is_ident("reply") && w[1].is_punct(':'));
            k = end + 1;
        }
        // Skip a `= discriminant` expression to the variant separator.
        while k < close && !toks[k].is_punct(',') {
            if toks[k].is_punct('(') {
                k = balanced(toks, k, '(', ')');
            } else if toks[k].is_punct('{') {
                k = balanced(toks, k, '{', '}');
            }
            k += 1;
        }
        variants.push(EnumVariant {
            name,
            line,
            cfg_test,
            has_reply,
        });
        k += 1; // past the `,`
    }
    Some((
        EnumDef {
            name: name_tok.text.clone(),
            line: toks[kw].line,
            variants,
        },
        close + 1,
    ))
}

/// Parses a `match` expression starting at the `match` keyword.
fn parse_match(toks: &[Tok], kw: usize) -> Option<MatchSite> {
    // Scrutinee: everything to the body `{` at group depth 0. (A bare
    // struct literal is not legal in scrutinee position, so the first
    // depth-0 `{` is the match body.)
    let mut depth = 0i32;
    let mut j = kw + 1;
    let open = loop {
        let t = toks.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            break j;
        } else if depth == 0 && t.is_punct(';') {
            return None; // `match` used as an identifier-ish fragment
        }
        j += 1;
    };
    if open == kw + 1 {
        return None; // no scrutinee: not a match expression
    }
    let close = balanced(toks, open, '{', '}');
    let mut arms = Vec::new();
    let mut k = open + 1;
    while k < close {
        let (past_attrs, cfg_test) = skip_attrs(toks, k);
        k = past_attrs;
        if k >= close {
            break;
        }
        let pat_start = k;
        // Pattern (guard included): scan to `=>` at group depth 0.
        let mut depth = 0i32;
        let arrow = loop {
            if k >= close {
                break None;
            }
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0
                && t.is_punct('=')
                && toks.get(k + 1).is_some_and(|n| n.is_punct('>'))
            {
                break Some(k);
            }
            k += 1;
        };
        let Some(arrow) = arrow else { break };
        let body_start = arrow + 2;
        if body_start >= close {
            break;
        }
        let body_end; // exclusive
        if toks[body_start].is_punct('{') {
            let end = balanced(toks, body_start, '{', '}');
            body_end = end + 1;
            k = body_end;
            if k < close && toks[k].is_punct(',') {
                k += 1;
            }
        } else {
            // Expression body: scan to `,` at group depth 0, or the
            // match's closing brace.
            let mut depth = 0i32;
            let mut e = body_start;
            while e < close {
                let t = &toks[e];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    break;
                }
                e += 1;
            }
            body_end = e;
            k = if e < close { e + 1 } else { close };
        }
        arms.push(MatchArm {
            line: toks[pat_start].line,
            cfg_test: cfg_test || has_test_attr_before(toks, pat_start),
            pat: (pat_start, arrow),
            body: (body_start, body_end),
        });
    }
    Some(MatchSite {
        line: toks[kw].line,
        scrutinee: (kw + 1, open),
        arms,
    })
}

/// Token index ranges (inclusive) gated behind `#[cfg(test)]`.
///
/// Generalizes the v1 `mod tests { … }` detection: after a test
/// attribute (plus any further attribute groups), the range extends to
/// the end of the next balanced `{ … }` group at depth 0, or to the
/// first depth-0 `,` or `;` — whichever comes first. That covers
/// attributed modules, fns, impls, enum variants, *and* match arms
/// (`#[cfg(test)] Request::InjectPanic => panic!(…),`).
pub fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let (start_is_test, mut end) = attr_is_test(toks, i + 1);
        let start = i;
        let mut is_test = start_is_test;
        // Coalesce the whole attribute run.
        let mut j = end + 1;
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            let (t, e) = attr_is_test(toks, j + 1);
            is_test |= t;
            end = e;
            j = e + 1;
        }
        if !is_test {
            i = end + 1;
            continue;
        }
        // Extent of the attributed thing.
        let mut depth = 0i32;
        let mut k = end + 1;
        let mut stop = toks.len().saturating_sub(1);
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                stop = balanced(toks, k, '{', '}');
                break;
            } else if depth == 0 && (t.is_punct(',') || t.is_punct(';')) {
                stop = k;
                break;
            }
            k += 1;
        }
        ranges.push((start, stop));
        i = stop + 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> FileTree {
        parse(&lex(src).tokens)
    }

    #[test]
    fn fns_nested_and_test_attributed() {
        let src = r#"
pub fn outer(x: u32) -> u32 {
    fn inner(y: u32) -> u32 { y + 1 }
    inner(x)
}
#[test]
fn check() { assert_eq!(outer(1), 2); }
trait T { fn sig_only(&self); }
type F = fn(u32) -> u32;
"#;
        let t = tree(src);
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "check"], "{:?}", t.fns);
        assert!(!t.fns[0].is_test);
        assert!(t.fns[2].is_test);
    }

    #[test]
    fn enum_variants_with_reply_and_cfg_test() {
        let src = r#"
pub enum Msg {
    Epoch(u64),
    Ingest { epoch: u64, ops: Vec<u8>, reply: Sender<Ack> },
    Query { q: Q, reply: Sender<R> },
    #[cfg(test)]
    InjectPanic,
    Shutdown,
}
"#;
        let t = tree(src);
        assert_eq!(t.enums.len(), 1);
        let e = &t.enums[0];
        assert_eq!(e.name, "Msg");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            ["Epoch", "Ingest", "Query", "InjectPanic", "Shutdown"]
        );
        assert!(!e.variants[0].has_reply);
        assert!(e.variants[1].has_reply && e.variants[2].has_reply);
        assert!(e.variants[3].cfg_test && !e.variants[4].cfg_test);
    }

    #[test]
    fn match_arms_with_blocks_guards_and_cfg_test() {
        let src = r#"
fn dispatch(m: Msg) -> u32 {
    match m {
        Msg::Epoch(e) if e > 0 => { bump(e); 1 }
        Msg::Ingest { epoch, reply, .. } => reply.send(epoch).map(|_| 2).unwrap_or(0),
        #[cfg(test)]
        Msg::InjectPanic => panic!("injected"),
        other => match other { _ => 0 },
    }
}
"#;
        let t = tree(src);
        assert_eq!(t.matches.len(), 2, "outer + nested");
        let outer = &t.matches[0];
        assert_eq!(outer.arms.len(), 4, "{outer:#?}");
        assert!(outer.arms[2].cfg_test);
        assert!(!outer.arms[1].cfg_test);
        // The nested match is its own site with one arm.
        assert_eq!(t.matches[1].arms.len(), 1);
    }

    #[test]
    fn cfg_test_ranges_cover_mods_fns_and_arms() {
        let src = r#"
fn live() { helper(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { live(); }
}
fn dispatch(m: M) {
    match m {
        M::A => go(),
        #[cfg(test)]
        M::Boom => panic!("test only"),
    }
}
"#;
        let toks = lex(src).tokens;
        let t = parse(&toks);
        let panic_idx = toks.iter().position(|t| t.is_ident("panic")).unwrap();
        assert!(t.in_test(panic_idx), "cfg(test) arm covered");
        let live_idx = toks.iter().position(|t| t.is_ident("helper")).unwrap();
        assert!(!t.in_test(live_idx));
        let inner_t = toks.iter().rposition(|t| t.is_ident("live")).unwrap();
        assert!(t.in_test(inner_t), "test mod contents covered");
    }

    #[test]
    fn malformed_input_degrades_without_panicking() {
        for src in [
            "fn",
            "fn {",
            "enum",
            "enum E {",
            "match",
            "match x",
            "match x { A =>",
            "fn f( { }",
            "#[cfg(test)]",
            "} } fn g() { match { } }",
        ] {
            let _ = tree(src);
        }
    }
}
