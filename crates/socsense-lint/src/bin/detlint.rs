//! `detlint` — workspace determinism & numeric-safety lint.
//!
//! ```text
//! detlint [--workspace] [--root PATH] [--format text|json]
//! ```
//!
//! Scans the workspace (root resolved via
//! [`socsense_bench::workspace_root`], so the binary agrees with the
//! perf-gate tooling when invoked from a crate subdirectory), prints
//! findings as `file:line: rule(id): message` (or one JSON object with
//! `--format json`), and exits `1` on any unsuppressed finding, `2` on
//! usage or I/O errors.

use std::process::ExitCode;

use socsense_lint::report::{render_json, render_text};
use socsense_lint::scan_workspace;

fn run() -> Result<bool, String> {
    let mut root: Option<std::path::PathBuf> = None;
    let mut format = "text".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --workspace is the (only) mode; accepted for clarity.
            "--workspace" => {}
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                root = Some(v.into());
            }
            "--format" => {
                format = args.next().ok_or("--format needs text|json")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}` (expected text|json)"));
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(socsense_bench::workspace_root);
    let report = scan_workspace(&root)?;
    if format == "json" {
        print!("{}", render_json(&report));
        // Keep the human summary visible when stdout is redirected.
        eprint!("{}", render_text(&report));
    } else {
        print!("{}", render_text(&report));
    }
    Ok(report.unsuppressed() == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
