//! detlint throughput harness: times a full workspace scan — lexing,
//! brace-tree parsing, the per-file rules, and the workspace-aware
//! P/C/F flow pass — over the live tree behind the `lint-throughput`
//! CI gate.
//!
//! The scan is run [`REPS`] times and the median wall-clock reported
//! via `median_timed`, alongside files/s and MB/s derived from the
//! actual bytes lexed. The harness also re-reports the live tree's
//! unsuppressed-finding count: the checked-in `BENCH_lint.json` doubles
//! as a record that the tree was lint-clean when the numbers were
//! taken, and the `lint-clean` gate holds it at zero. Writes
//! `BENCH_lint.json` (repo root, or the path given as the first
//! argument).
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_lint [OUT.json]
//! ```

use std::process::ExitCode;

use socsense_lint::scan_workspace;
use socsense_obs::Obs;

const REPS: usize = 5;

fn main() -> ExitCode {
    let root = socsense_bench::workspace_root();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| root.join("BENCH_lint.json").display().to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (obs, rec) = Obs::recorder();

    // One untimed scan establishes the corpus shape (and warms the page
    // cache so the timed reps measure the analysis, not cold IO).
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source_bytes: u64 = report.graph.iter().map(|g| g.source_bytes as u64).sum();

    let mut last_files = 0usize;
    let median_secs = socsense_obs::median_timed(&obs, "bench.lint.seconds", REPS, || {
        let r = scan_workspace(&root).expect("workspace root scans");
        last_files = r.files_scanned;
    });
    let files_per_sec = last_files as f64 / median_secs;
    let mb_per_sec = source_bytes as f64 / 1e6 / median_secs;
    eprintln!(
        "scan: {} files, {} crates, {} finding(s) ({} unsuppressed) in \
         {:.4}s median ({:.0} files/s, {:.1} MB/s)",
        report.files_scanned,
        report.crates.len(),
        report.findings.len(),
        report.unsuppressed(),
        median_secs,
        files_per_sec,
        mb_per_sec
    );

    let mut payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": "the scan is single-threaded; files/s depends on \
                     single-core speed, not core count",
        }),
        "scan": serde_json::json!({
            "files_scanned": report.files_scanned,
            "crates": report.crates.len(),
            "source_bytes": source_bytes,
            "findings": report.findings.len(),
            "unsuppressed": report.unsuppressed(),
            "timed_runs": REPS,
            "median_secs": median_secs,
            "files_per_sec": files_per_sec,
            "mb_per_sec": mb_per_sec,
        }),
        "metrics": rec.snapshot(),
    });
    if cores < 2 {
        if let serde_json::Value::Object(map) = &mut payload {
            map.insert(
                "warning".into(),
                serde_json::json!(format!(
                    "LOW-CORE HOST ({cores} < 2 cores): the scan shares \
                     its core with the OS; files/s may read low."
                )),
            );
        }
    }
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
