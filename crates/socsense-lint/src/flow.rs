//! The workspace-aware rule families (v2): panic-path audit (P1),
//! protocol exhaustiveness and channel discipline (C2/C3), and
//! cross-statement float-accumulation dataflow (F1).
//!
//! Unlike the per-file D-rules in [`crate::rules`], these operate on a
//! whole-crate model built from every file's [`crate::tree::FileTree`]:
//! a call graph keyed by function name (no type resolution — a name
//! collision merges conservatively), the set of `// detlint: protocol`
//! enums, and every `match` site. The model is what lets a rule say
//! "this `unwrap` is *reachable from* the serve loop through two local
//! helpers" instead of only "this file contains an `unwrap`".
//!
//! | rule | what it rejects |
//! |------|-----------------|
//! | P1 | `unwrap`/`expect`/`panic!`-family calls in non-test code reachable (via the crate-local call graph) from serve/persist entry files |
//! | C2 | protocol enums without a `// detlint: protocol` marker; wildcard arms or missing variants in non-test matches over protocol enums |
//! | C3 | spawned workers never joined, discarded spawn handles, and reply-carrying protocol variants matched without answering/forwarding `reply` |
//! | F1 | a `par_*` result bound to a local that a *later* statement reduces with `.sum::<f64>()`/`.fold(`/`+=` outside the blessed merge file |
//!
//! All four are suppressed the usual way (`// detlint: allow(P1) --
//! why`), and every suppression still demands a justification.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Directive, Lexed, Tok, TokKind};
use crate::rules::{Contract, Finding};
use crate::tree::{self, EnumDef, FileTree, MatchArm};

/// The parsed model of one file, shared by every crate-level rule.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Lexer output (tokens + directives).
    pub lexed: Lexed,
    /// Item tree parsed from the tokens.
    pub tree: FileTree,
    /// Length of the source text in bytes (throughput accounting).
    pub source_bytes: usize,
}

impl FileModel {
    /// Builds the model for one file.
    pub fn new(rel_path: &str, source: &str) -> Self {
        let lexed = crate::lexer::lex(source);
        let tree = tree::parse(&lexed.tokens);
        FileModel {
            rel_path: rel_path.to_string(),
            lexed,
            tree,
            source_bytes: source.len(),
        }
    }

    fn is_test_file(&self) -> bool {
        self.rel_path.contains("/tests/")
    }
}

/// One crate's worth of parsed files.
#[derive(Debug)]
pub struct CrateModel {
    /// Crate name (directory name).
    pub name: String,
    /// The crate's declared contract.
    pub contract: Contract,
    /// Parsed files in scan order.
    pub files: Vec<FileModel>,
}

/// Per-crate call-graph statistics, surfaced in the JSON report so CI
/// artifacts show what the workspace pass actually resolved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphSummary {
    /// Crate name.
    pub crate_name: String,
    /// Number of `fn` items parsed.
    pub fns: usize,
    /// Number of resolved crate-local call edges.
    pub edges: usize,
    /// Number of `// detlint: protocol` enums.
    pub protocol_enums: usize,
    /// Number of `match` sites parsed.
    pub match_sites: usize,
    /// Total bytes of source the crate model was built from.
    pub source_bytes: usize,
}

/// Enums that must carry the `// detlint: protocol` marker, per crate:
/// the serve tier's request/shard message types. Deleting the marker
/// (and with it the exhaustiveness audit) is itself a C2 finding, so
/// protocol coverage cannot erode silently — the same trick
/// [`crate::rules::EXPECT_DETERMINISTIC`] plays for contracts.
pub const EXPECT_PROTOCOL: &[(&str, &str)] = &[
    ("socsense-serve", "Request"),
    ("socsense-serve", "ShardMsg"),
    ("socsense-serve", "ShardQuery"),
    ("socsense-serve", "ClusterOp"),
];

/// Files whose non-test fns seed the P1 panic-path reachability walk:
/// a panic in (or reachable from) these wedges a serve worker or
/// corrupts a durable-state recovery.
fn p1_seed_file(crate_name: &str, rel_path: &str) -> bool {
    match crate_name {
        "socsense-serve" | "socsense-persist" => !rel_path.contains("/tests/"),
        "socsense-core" => rel_path.ends_with("/streaming.rs") || rel_path.ends_with("/delta.rs"),
        _ => false,
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

const PAR_PRIMITIVES: &[&str] = &[
    "par_chunks",
    "par_map_collect",
    "par_map_reduce",
    "par_fill",
];

/// The one module allowed to reduce floats over parallel results.
const BLESSED_MERGE_FILE: &str = "crates/socsense-matrix/src/parallel.rs";

/// Runs every crate-level rule over `model`, applies per-file
/// suppressions, and returns the findings plus the call-graph summary.
pub fn check_crate(model: &CrateModel) -> (Vec<Finding>, GraphSummary) {
    let graph = CallGraph::build(model);
    let mut findings = Vec::new();

    if model.contract == Contract::Deterministic {
        rule_p1(model, &graph, &mut findings);
        rule_c2(model, &mut findings);
        rule_c3(model, &mut findings);
        rule_f1(model, &graph, &mut findings);
    }

    // Suppression pass, file by file (same line / line-above contract
    // as the per-file rules; S1 for empty justifications is emitted by
    // `rules::check_file`, not duplicated here).
    for file in &model.files {
        for d in &file.lexed.directives {
            if let Directive::Allow {
                line,
                rules,
                justification,
            } = d
            {
                for f in findings.iter_mut() {
                    if f.file == file.rel_path
                        && !f.suppressed
                        && (f.line == *line || f.line == line + 1)
                        && rules.iter().any(|r| r == f.rule)
                    {
                        f.suppressed = true;
                        f.justification = Some(justification.clone());
                    }
                }
            }
        }
    }

    let summary = GraphSummary {
        crate_name: model.name.clone(),
        fns: model.files.iter().map(|f| f.tree.fns.len()).sum(),
        edges: graph.edge_count,
        protocol_enums: protocol_enums(model).len(),
        match_sites: model.files.iter().map(|f| f.tree.matches.len()).sum(),
        source_bytes: model.files.iter().map(|f| f.source_bytes).sum(),
    };
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    (findings, summary)
}

fn finding(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        message,
        suppressed: false,
        justification: None,
    }
}

// ---------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------

/// A crate-local call graph over `(file index, fn index)` nodes,
/// resolved by bare function name.
struct CallGraph {
    /// `name -> node ids` for every fn in the crate.
    by_name: BTreeMap<String, Vec<(usize, usize)>>,
    /// Outgoing call edges per node.
    calls: BTreeMap<(usize, usize), Vec<(usize, usize)>>,
    /// Total resolved edges.
    edge_count: usize,
}

impl CallGraph {
    fn build(model: &CrateModel) -> Self {
        let mut by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in model.files.iter().enumerate() {
            for (gi, f) in file.tree.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        let mut calls: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
        let mut edge_count = 0usize;
        for (fi, file) in model.files.iter().enumerate() {
            let toks = &file.lexed.tokens;
            for (gi, f) in file.tree.fns.iter().enumerate() {
                let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
                let (open, close) = f.body;
                let mut i = open + 1;
                while i < close {
                    // `name(` that is not a definition (`fn name(`) and
                    // not a macro (`name!(`) is a candidate call; the
                    // receiver shape (`.helper(`, `Self::helper(`) falls
                    // out of the same pattern.
                    if toks[i].kind == TokKind::Ident
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && !toks
                            .get(i.wrapping_sub(1))
                            .is_some_and(|t| t.is_ident("fn"))
                    {
                        if let Some(targets) = by_name.get(&toks[i].text) {
                            for &t in targets {
                                if t != (fi, gi) && seen.insert(t) {
                                    calls.entry((fi, gi)).or_default().push(t);
                                    edge_count += 1;
                                }
                            }
                        }
                    }
                    i += 1;
                }
            }
        }
        CallGraph {
            by_name,
            calls,
            edge_count,
        }
    }

    /// Nodes reachable from `seeds` (seeds included).
    fn reachable(&self, seeds: &[(usize, usize)]) -> BTreeSet<(usize, usize)> {
        let mut seen: BTreeSet<(usize, usize)> = seeds.iter().copied().collect();
        let mut stack: Vec<(usize, usize)> = seeds.to_vec();
        while let Some(n) = stack.pop() {
            if let Some(next) = self.calls.get(&n) {
                for &m in next {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
        }
        seen
    }
}

/// Innermost fn whose body contains token index `idx`.
fn enclosing_fn(tree: &FileTree, idx: usize) -> Option<usize> {
    tree.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.body.0 <= idx && idx <= f.body.1)
        .min_by_key(|(_, f)| f.body.1 - f.body.0)
        .map(|(i, _)| i)
}

// ---------------------------------------------------------------------
// P1: panic-path audit
// ---------------------------------------------------------------------

/// Panic sites in `file`: `(token index, line, description)`.
fn panic_sites(file: &FileModel) -> Vec<(usize, u32, String)> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push((i, t.line, format!("`.{}()`", t.text)));
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push((i, t.line, format!("`{}!`", t.text)));
        }
    }
    out
}

fn rule_p1(model: &CrateModel, graph: &CallGraph, findings: &mut Vec<Finding>) {
    // Seeds: every non-test fn defined in a seed file.
    let mut seeds: Vec<(usize, usize)> = Vec::new();
    let mut any_seed_file = false;
    for (fi, file) in model.files.iter().enumerate() {
        if !p1_seed_file(&model.name, &file.rel_path) || file.is_test_file() {
            continue;
        }
        any_seed_file = true;
        for (gi, f) in file.tree.fns.iter().enumerate() {
            if !f.is_test && !file.tree.in_test(f.body.0) {
                seeds.push((fi, gi));
            }
        }
    }
    if !any_seed_file {
        return;
    }
    let reachable = graph.reachable(&seeds);

    for (fi, file) in model.files.iter().enumerate() {
        if file.is_test_file() {
            continue;
        }
        let seed_file = p1_seed_file(&model.name, &file.rel_path);
        for (idx, line, what) in panic_sites(file) {
            if file.tree.in_test(idx) {
                continue;
            }
            let hit = match enclosing_fn(&file.tree, idx) {
                Some(gi) => {
                    let node = (fi, gi);
                    if reachable.contains(&node) {
                        let via = if seeds.contains(&node) {
                            String::new()
                        } else {
                            format!(
                                " (reachable from the serve/persist path via `{}`)",
                                file.tree.fns[gi].name
                            )
                        };
                        Some(via)
                    } else {
                        None
                    }
                }
                // Top-level code outside any fn (consts, statics) in a
                // seed file is on the path by definition.
                None if seed_file => Some(String::new()),
                None => None,
            };
            if let Some(via) = hit {
                findings.push(finding(
                    &file.rel_path,
                    line,
                    "P1",
                    format!(
                        "{what} on the serve/persist panic path{via}: a panicking worker \
                         wedges every client; propagate the error or justify with \
                         `allow(P1)`"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// C2: protocol exhaustiveness
// ---------------------------------------------------------------------

/// Enums marked `// detlint: protocol`, with their defining file index.
fn protocol_enums(model: &CrateModel) -> Vec<(usize, &EnumDef)> {
    let mut out = Vec::new();
    for (fi, file) in model.files.iter().enumerate() {
        let marks: Vec<u32> = file
            .lexed
            .directives
            .iter()
            .filter_map(|d| match d {
                Directive::Protocol { line } => Some(*line),
                _ => None,
            })
            .collect();
        for e in &file.tree.enums {
            // The marker sits directly above the declaration (below any
            // derive attributes), so a small window suffices.
            if marks
                .iter()
                .any(|&m| e.line > m && e.line <= m.saturating_add(3))
            {
                out.push((fi, e));
            }
        }
    }
    out
}

/// Effective pattern of an arm with guard and leading binding modes
/// stripped: `[start, end)` token range.
fn effective_pat(toks: &[Tok], arm: &MatchArm) -> (usize, usize) {
    let (mut s, mut e) = arm.pat;
    // Cut the guard: `if` at group depth 0.
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(e).skip(s) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("if") {
            e = k;
            break;
        }
    }
    while s < e && (toks[s].is_punct('&') || toks[s].is_ident("ref") || toks[s].is_ident("mut")) {
        s += 1;
    }
    (s, e)
}

/// Whether the arm is a catch-all: `_`, or a bare binding identifier.
fn is_wildcard_arm(toks: &[Tok], arm: &MatchArm) -> bool {
    let (s, e) = effective_pat(toks, arm);
    e == s + 1
        && toks[s].kind == TokKind::Ident
        && toks[s].text != "true"
        && toks[s].text != "false"
}

/// Whether the token range mentions the qualified variant `Enum::V`.
fn pat_mentions(toks: &[Tok], range: (usize, usize), enum_name: &str, variant: &str) -> bool {
    let (s, e) = range;
    (s..e).any(|k| {
        toks[k].is_ident(enum_name)
            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 3).is_some_and(|t| t.is_ident(variant))
            && k + 3 < e
    })
}

fn rule_c2(model: &CrateModel, findings: &mut Vec<Finding>) {
    let protos = protocol_enums(model);

    // Erosion guard: baked protocol enums must carry the marker.
    for &(crate_name, enum_name) in EXPECT_PROTOCOL {
        if crate_name != model.name {
            continue;
        }
        for file in &model.files {
            if file.is_test_file() {
                continue;
            }
            for e in &file.tree.enums {
                let is_marked = protos
                    .iter()
                    .any(|(_, pe)| pe.name == e.name && pe.line == e.line);
                if e.name == enum_name && !is_marked && !file.tree.in_test(0) {
                    findings.push(finding(
                        &file.rel_path,
                        e.line,
                        "C2",
                        format!(
                            "enum `{}` is a serve-tier protocol type and must carry a \
                             `// detlint: protocol` marker so its matches stay exhaustive",
                            e.name
                        ),
                    ));
                }
            }
        }
    }

    // Exhaustiveness: every non-test match over a protocol enum.
    for file in &model.files {
        if file.is_test_file() {
            continue;
        }
        let toks = &file.lexed.tokens;
        for site in &file.tree.matches {
            if site.arms.is_empty() || file.tree.in_test(site.scrutinee.0) {
                continue;
            }
            for (_, e) in &protos {
                let involved = site.arms.iter().any(|a| {
                    e.variants
                        .iter()
                        .any(|v| pat_mentions(toks, a.pat, &e.name, &v.name))
                });
                if !involved {
                    continue;
                }
                let mut wildcarded = false;
                for arm in &site.arms {
                    if is_wildcard_arm(toks, arm) {
                        wildcarded = true;
                        findings.push(finding(
                            &file.rel_path,
                            arm.line,
                            "C2",
                            format!(
                                "wildcard arm in a `match` over protocol enum `{}`: a new \
                                 variant would be silently swallowed; list every variant",
                                e.name
                            ),
                        ));
                    }
                }
                if wildcarded {
                    continue;
                }
                for v in &e.variants {
                    let covered = site
                        .arms
                        .iter()
                        .any(|a| pat_mentions(toks, a.pat, &e.name, &v.name));
                    if !covered {
                        findings.push(finding(
                            &file.rel_path,
                            site.line,
                            "C2",
                            format!(
                                "`match` over protocol enum `{}` does not handle variant \
                                 `{}::{}`",
                                e.name, e.name, v.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// C3: worker join + reply discipline
// ---------------------------------------------------------------------

fn rule_c3(model: &CrateModel, findings: &mut Vec<Finding>) {
    // C3a: spawned workers must be joined somewhere in the crate, and a
    // spawn handle must not be discarded on the spot.
    let mut spawn_sites: Vec<(usize, u32, usize)> = Vec::new(); // (file, line, tok idx)
    let mut join_count = 0usize;
    for (fi, file) in model.files.iter().enumerate() {
        if file.is_test_file() {
            continue;
        }
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            if file.tree.in_test(i) {
                continue;
            }
            if toks[i].is_ident("spawn") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                spawn_sites.push((fi, toks[i].line, i));
            }
            // `.join()` — or `thread::scope(…)`, which joins every
            // scoped worker (and re-raises panics) on scope exit.
            let explicit_join = toks[i].is_ident("join")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            let scoped = toks[i].is_ident("scope")
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("thread")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            if explicit_join || scoped {
                join_count += 1;
            }
        }
    }
    for &(fi, line, idx) in &spawn_sites {
        let toks = &model.files[fi].lexed.tokens;
        // Statement start: previous `;`/`{`/`}`.
        let start = (0..idx)
            .rev()
            .find(|&j| toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}'))
            .map(|j| j + 1)
            .unwrap_or(0);
        let discarded = toks.get(start).is_some_and(|t| t.is_ident("let"))
            && toks.get(start + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(start + 2).is_some_and(|t| t.is_punct('='));
        if discarded {
            findings.push(finding(
                &model.files[fi].rel_path,
                line,
                "C3",
                "spawn handle discarded with `let _ =`: the worker can never be joined, \
                 so its panic (and its drained state) is lost on shutdown"
                    .into(),
            ));
        }
    }
    if !spawn_sites.is_empty() && join_count == 0 {
        let (fi, line, _) = spawn_sites[0];
        findings.push(finding(
            &model.files[fi].rel_path,
            line,
            "C3",
            "crate spawns worker threads but never `.join()`s any: shutdown cannot \
             observe worker panics or drain in-flight state"
                .into(),
        ));
    }

    // C3b: a reply-carrying protocol variant, when matched, must answer
    // or forward its `reply` channel.
    let protos = protocol_enums(model);
    for file in &model.files {
        if file.is_test_file() {
            continue;
        }
        let toks = &file.lexed.tokens;
        for site in &file.tree.matches {
            if file.tree.in_test(site.scrutinee.0) {
                continue;
            }
            for arm in &site.arms {
                for (_, e) in &protos {
                    for v in e.variants.iter().filter(|v| v.has_reply) {
                        if !pat_mentions(toks, arm.pat, &e.name, &v.name) {
                            continue;
                        }
                        let (ps, pe) = arm.pat;
                        let rest_pattern = (ps..pe.saturating_sub(1))
                            .any(|k| toks[k].is_punct('.') && toks[k + 1].is_punct('.'));
                        let binds_reply = (ps..pe).any(|k| toks[k].is_ident("reply"));
                        let (bs, be) = arm.body;
                        let body_uses_reply = (bs..be).any(|k| toks[k].is_ident("reply"));
                        if rest_pattern && !binds_reply {
                            findings.push(finding(
                                &file.rel_path,
                                arm.line,
                                "C3",
                                format!(
                                    "`{}::{}` carries a reply channel but the `..` pattern \
                                     drops it: the caller would block forever; bind `reply` \
                                     and answer it",
                                    e.name, v.name
                                ),
                            ));
                        } else if binds_reply && !body_uses_reply {
                            findings.push(finding(
                                &file.rel_path,
                                arm.line,
                                "C3",
                                format!(
                                    "`{}::{}`'s `reply` channel is bound but never sent or \
                                     forwarded: the caller would block forever",
                                    e.name, v.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// F1: cross-statement float-accumulation dataflow
// ---------------------------------------------------------------------

/// fn nodes whose body calls a `par_*` primitive directly.
fn parallel_fns(model: &CrateModel) -> BTreeSet<(usize, usize)> {
    let mut out = BTreeSet::new();
    for (fi, file) in model.files.iter().enumerate() {
        let toks = &file.lexed.tokens;
        for (gi, f) in file.tree.fns.iter().enumerate() {
            let (open, close) = f.body;
            if (open..=close).any(|k| {
                toks[k].kind == TokKind::Ident
                    && PAR_PRIMITIVES.contains(&toks[k].text.as_str())
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            }) {
                out.insert((fi, gi));
            }
        }
    }
    out
}

fn rule_f1(model: &CrateModel, graph: &CallGraph, findings: &mut Vec<Finding>) {
    let par_fns = parallel_fns(model);
    let par_fn_names: BTreeSet<&str> = graph
        .by_name
        .iter()
        .filter(|(_, nodes)| nodes.iter().any(|n| par_fns.contains(n)))
        .map(|(name, _)| name.as_str())
        .collect();

    for file in &model.files {
        if file.is_test_file() || file.rel_path.ends_with(BLESSED_MERGE_FILE) {
            continue;
        }
        let toks = &file.lexed.tokens;
        for f in &file.tree.fns {
            if f.is_test || file.tree.in_test(f.body.0) {
                continue;
            }
            let (open, close) = f.body;
            // Statement windows inside the body, split at `;`/`{`/`}`.
            let mut stmts: Vec<(usize, usize)> = Vec::new();
            let mut s = open + 1;
            for (k, t) in toks.iter().enumerate().take(close).skip(open + 1) {
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    if k > s {
                        stmts.push((s, k));
                    }
                    s = k + 1;
                }
            }
            if close > s {
                stmts.push((s, close));
            }

            // Pass 1: `let`-bound locals initialized from a parallel
            // primitive (or a crate-local fn that uses one).
            let mut tainted: Vec<(String, usize)> = Vec::new(); // (name, stmt idx)
            for (si, &(a, b)) in stmts.iter().enumerate() {
                if !toks[a].is_ident("let") {
                    continue;
                }
                let mut n = a + 1;
                if n < b && toks[n].is_ident("mut") {
                    n += 1;
                }
                if n >= b || toks[n].kind != TokKind::Ident {
                    continue;
                }
                let taints = (a..b).any(|k| {
                    toks[k].kind == TokKind::Ident
                        && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                        && (PAR_PRIMITIVES.contains(&toks[k].text.as_str())
                            || par_fn_names.contains(toks[k].text.as_str()))
                });
                if taints {
                    tainted.push((toks[n].text.clone(), si));
                }
            }
            if tainted.is_empty() {
                continue;
            }

            // Alias pass: a `for p in &partials` header taints the
            // loop variable too, so the classic accumulation loop
            // (`for p in &partials { acc += p; }`) is caught even
            // though the reduction statement never names the binding.
            for (si, &(a, b)) in stmts.iter().enumerate() {
                if !toks[a].is_ident("for") || a + 1 >= b || toks[a + 1].kind != TokKind::Ident {
                    continue;
                }
                let iterates_tainted = tainted
                    .iter()
                    .any(|(name, def_si)| si > *def_si && (a..b).any(|k| toks[k].is_ident(name)));
                if iterates_tainted {
                    tainted.push((toks[a + 1].text.clone(), si));
                }
            }

            // Pass 2: later statements reducing a tainted local.
            for (si, &(a, b)) in stmts.iter().enumerate() {
                let mentions = |name: &str| (a..b).any(|k| toks[k].is_ident(name));
                let Some((name, _)) = tainted
                    .iter()
                    .find(|(name, def_si)| si > *def_si && mentions(name))
                else {
                    continue;
                };
                for k in a..b {
                    let is_float_sum = toks[k].is_ident("sum")
                        && k > a
                        && toks[k - 1].is_punct('.')
                        && toks
                            .get(k + 4)
                            .is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"));
                    let is_fold = toks[k].is_ident("fold")
                        && k > a
                        && toks[k - 1].is_punct('.')
                        && toks.get(k + 1).is_some_and(|t| t.is_punct('('));
                    let is_plus_eq =
                        toks[k].is_punct('+') && toks.get(k + 1).is_some_and(|t| t.is_punct('='));
                    if is_float_sum || is_fold || is_plus_eq {
                        findings.push(finding(
                            &file.rel_path,
                            toks[k].line,
                            "F1",
                            format!(
                                "`{name}` holds per-chunk parallel results but is reduced \
                                 here outside `socsense_matrix::parallel`'s in-order merge \
                                 helpers; use `par_map_reduce` or merge in shard order"
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
}
