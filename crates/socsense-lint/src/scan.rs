//! Workspace discovery and the scan driver.
//!
//! A scan walks the root package plus every directory under `crates/`,
//! reads each crate's contract from its `src/lib.rs`, and runs
//! [`crate::rules::check_file`] over every `.rs` file in `src/` and
//! `tests/`. Files are visited in sorted path order so reports are
//! byte-stable. The `vendor/` stand-in crates are outside the contract
//! (they mimic external APIs verbatim) and are not scanned; paths with
//! a `fixtures` component are skipped so a test corpus of deliberately
//! bad snippets can live on disk without failing the live tree.

use std::path::{Path, PathBuf};

use crate::flow::{self, CrateModel, FileModel, GraphSummary};
use crate::rules::{check_file, declared_contract, Contract, FileInput, Finding};

/// The outcome of one workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Root that was scanned.
    pub root: String,
    /// Number of `.rs` files visited.
    pub files_scanned: usize,
    /// Crates visited, in scan order, with their declared contracts.
    pub crates: Vec<(String, &'static str)>,
    /// Per-crate call-graph statistics from the workspace-aware pass.
    pub graph: Vec<GraphSummary>,
    /// All findings, suppressed ones included.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by a justified suppression — the exit-code
    /// driver.
    pub fn unsuppressed(&self) -> usize {
        self.findings.iter().filter(|f| !f.suppressed).count()
    }
}

fn contract_name(c: Contract) -> &'static str {
    match c {
        Contract::Deterministic => "deterministic",
        Contract::Tooling => "tooling",
    }
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            out.extend(rs_files(&path));
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans one crate directory (its `src/` and `tests/` trees).
fn scan_crate(root: &Path, crate_dir: &Path, crate_name: &str, report: &mut Report) {
    let lib_rs = crate_dir.join("src/lib.rs");
    let lib_rel = rel(root, &lib_rs);
    let lib_src = std::fs::read_to_string(&lib_rs).unwrap_or_default();
    let (contract, contract_findings) = declared_contract(crate_name, &lib_rel, &lib_src);
    report.findings.extend(contract_findings);
    report
        .crates
        .push((crate_name.to_string(), contract_name(contract)));

    let mut files = rs_files(&crate_dir.join("src"));
    files.extend(rs_files(&crate_dir.join("tests")));
    let mut models: Vec<FileModel> = Vec::new();
    for path in files {
        let rel_path = rel(root, &path);
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        report.findings.extend(check_file(&FileInput {
            crate_name,
            rel_path: &rel_path,
            is_crate_root: path == lib_rs,
            contract,
            source: &source,
        }));
        models.push(FileModel::new(&rel_path, &source));
    }

    // Workspace-aware pass: P/C2/C3/F over the whole-crate model.
    let model = CrateModel {
        name: crate_name.to_string(),
        contract,
        files: models,
    };
    let (crate_findings, summary) = flow::check_crate(&model);
    report.findings.extend(crate_findings);
    report.graph.push(summary);
}

/// Scans the whole workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when `root` has neither a root `src/` nor a
/// `crates/` directory — a wrong `--root` must not report a clean tree.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report {
        root: root.display().to_string(),
        ..Report::default()
    };

    let root_src = root.join("src");
    let crates_dir = root.join("crates");
    if !root_src.is_dir() && !crates_dir.is_dir() {
        return Err(format!(
            "{} has no src/ or crates/ directory; not a workspace root",
            root.display()
        ));
    }

    // The facade package at the workspace root.
    if root_src.is_dir() {
        scan_crate(root, root, "socsense", &mut report);
    }

    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            scan_crate(root, &dir, &name, &mut report);
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
