//! Report rendering: `file:line: rule(id): message` text, and a
//! machine-readable JSON document for CI artifacts.
//!
//! The JSON writer is hand-rolled (string escaping + literal layout) in
//! the same no-external-deps style as the lexer; the crate's tests
//! parse the output back with the vendored `serde_json` to pin
//! well-formedness.

use crate::scan::Report;

/// Renders findings as `file:line: rule(id): message` lines, suppressed
/// findings annotated, followed by a one-line summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.suppressed {
            let why = f.justification.as_deref().unwrap_or("");
            out.push_str(&format!(
                "{}:{}: rule({}): suppressed: {} [allow: {}]\n",
                f.file, f.line, f.rule, f.message, why
            ));
        } else {
            out.push_str(&format!(
                "{}:{}: rule({}): {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
    }
    out.push_str(&format!(
        "detlint: {} file(s), {} crate(s), {} finding(s) ({} unsuppressed)\n",
        report.files_scanned,
        report.crates.len(),
        report.findings.len(),
        report.unsuppressed()
    ));
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as one JSON object:
///
/// ```json
/// {
///   "root": "…", "files_scanned": 120, "unsuppressed": 0,
///   "crates": [{"name": "socsense-core", "contract": "deterministic"}],
///   "call_graph": [{"crate": "socsense-core", "fns": 210, "edges": 87,
///                   "protocol_enums": 0, "match_sites": 44,
///                   "source_bytes": 512034}],
///   "findings": [{"file": "…", "line": 3, "rule": "D1",
///                 "message": "…", "suppressed": true,
///                 "justification": "…"}]
/// }
/// ```
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"root\": \"{}\",\n", esc(&report.root)));
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"unsuppressed\": {},\n",
        report.files_scanned,
        report.unsuppressed()
    ));
    out.push_str("  \"crates\": [");
    for (i, (name, contract)) in report.crates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"contract\": \"{}\"}}",
            esc(name),
            contract
        ));
    }
    out.push_str("],\n  \"call_graph\": [\n");
    for (i, g) in report.graph.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"crate\": \"{}\", \"fns\": {}, \"edges\": {}, \
             \"protocol_enums\": {}, \"match_sites\": {}, \
             \"source_bytes\": {}}}{}\n",
            esc(&g.crate_name),
            g.fns,
            g.edges,
            g.protocol_enums,
            g.match_sites,
            g.source_bytes,
            if i + 1 == report.graph.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let justification = match &f.justification {
            Some(j) => format!("\"{}\"", esc(j)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \
             \"suppressed\": {}, \"justification\": {}}}{}\n",
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.message),
            f.suppressed,
            justification,
            if i + 1 == report.findings.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
