//! A minimal hand-rolled Rust lexer: enough structure for the detlint
//! rules, nothing more.
//!
//! The lexer strips comments, string literals (plain, raw, byte), and
//! character literals — so a rule pattern appearing inside a string or
//! a doc comment can never fire — and returns the remaining source as
//! a flat token stream with line numbers. It is deliberately not a
//! parser: rules match token shapes (`ident . ident (`), which is the
//! same trade the `socsense_bench::gate` TOML reader makes (the
//! workspace vendors no `syn`).
//!
//! Comments are not discarded entirely: `// detlint: …` directives
//! (contract declarations and scoped suppressions) are extracted into
//! [`Directive`]s as a side channel. Only *line* comments can carry
//! directives; a directive quoted inside a doc example (e.g.
//! `//! // detlint: …`) still starts with `//` after the comment
//! introducer is stripped and is therefore ignored.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `HashMap`, `for`, …).
    Ident,
    /// Numeric literal (the whole literal is one token).
    Number,
    /// A single punctuation character (`.`, `:`, `(`, …). Multi-char
    /// operators appear as consecutive punct tokens.
    Punct,
}

/// One token of stripped source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first character in the original
    /// source. For a lifetime, the offset of the name (past the `'`),
    /// so `src[offset..offset + text.len()] == text` holds for every
    /// token the lexer emits.
    pub offset: u32,
    /// Token class.
    pub kind: TokKind,
    /// Token text (single character for punctuation).
    pub text: String,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `// detlint: …` comment extracted during lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// detlint: contract = <name>` — the per-crate contract
    /// declaration (meaningful only in a crate root file).
    Contract {
        /// 1-based line of the comment.
        line: u32,
        /// Declared contract name, e.g. `deterministic`.
        value: String,
    },
    /// `// detlint: protocol` — marks the enum declared on the next
    /// line(s) as a protocol message type whose matches the C2/C3
    /// rules audit for exhaustiveness and reply discipline.
    Protocol {
        /// 1-based line of the comment.
        line: u32,
    },
    /// `// detlint: allow(D1, …) -- justification` — suppresses the
    /// named rules on this line and the next.
    Allow {
        /// 1-based line of the comment.
        line: u32,
        /// Uppercased rule ids named in the parentheses.
        rules: Vec<String>,
        /// Text after `--`, trimmed; empty when omitted (an error the
        /// rules layer reports).
        justification: String,
    },
    /// A `detlint:` comment that parses as neither of the above.
    Malformed {
        /// 1-based line of the comment.
        line: u32,
        /// Why it did not parse.
        message: String,
    },
}

/// Lexer output: the stripped token stream plus extracted directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Directives in source order.
    pub directives: Vec<Directive>,
}

/// Lexes `src`, stripping comments/strings/chars and extracting
/// `detlint:` directives. Never fails: malformed input (unterminated
/// literals, stray bytes) degrades to fewer tokens, not an error, so a
/// half-edited file still lints.
pub fn lex(src: &str) -> Lexed {
    let mut chars: Vec<char> = Vec::with_capacity(src.len());
    // Byte offset of each char (plus a sentinel at the end), so token
    // spans can be reported in byte terms while the scanner itself
    // stays a simple char-index walk.
    let mut bytes: Vec<u32> = Vec::with_capacity(src.len() + 1);
    for (off, c) in src.char_indices() {
        bytes.push(off as u32);
        chars.push(c);
    }
    bytes.push(src.len() as u32);
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if let Some(d) = parse_directive(&text, line) {
                    out.directives.push(d);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comments, counting lines.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    match (chars[i], chars.get(i + 1)) {
                        ('/', Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '"' => i = skip_string(&chars, i, &mut line),
            '\'' => i = skip_char_or_lifetime(&chars, &bytes, i, &mut line, &mut out.tokens),
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: the "identifier"
                // is a string prefix — consume the literal instead.
                let next = chars.get(i).copied();
                if matches!(text.as_str(), "r" | "b" | "br")
                    && (next == Some('"') || (text != "b" && next == Some('#')))
                {
                    i = skip_raw_or_plain_string(&chars, i, &mut line);
                    continue;
                }
                if text == "b" && next == Some('\'') {
                    // `i` already points at the opening quote; a byte
                    // char like `b'\n'` is never a lifetime.
                    i = skip_char_or_lifetime(&chars, &bytes, i, &mut line, &mut out.tokens);
                    continue;
                }
                out.tokens.push(Tok {
                    line,
                    offset: bytes[start],
                    kind: TokKind::Ident,
                    text,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `0..n`: a second dot ends the literal; `1.max(2)`:
                    // a dot followed by an identifier is a method call.
                    if chars[i] == '.' {
                        match chars.get(i + 1) {
                            Some(&d) if d.is_ascii_digit() => {}
                            _ => break,
                        }
                    }
                    i += 1;
                }
                out.tokens.push(Tok {
                    line,
                    offset: bytes[start],
                    kind: TokKind::Number,
                    text: chars[start..i].iter().collect(),
                });
            }
            _ => {
                out.tokens.push(Tok {
                    line,
                    offset: bytes[i],
                    kind: TokKind::Punct,
                    text: c.to_string(),
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips a plain `"…"` string starting at the opening quote; returns
/// the index past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(chars[i], '"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            // A line-continuation (`\` at end of line) swallows a real
            // newline; it still has to count toward the line number.
            '\\' => {
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw (`#`-fenced) or plain string whose prefix identifier was
/// already consumed; `i` points at `"` or the first `#`.
fn skip_raw_or_plain_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i; // not actually a string; resume normal lexing
    }
    if hashes == 0 {
        // `r"…"` has no escapes but also no fence; close on bare quote.
        i += 1;
        while i < chars.len() {
            match chars[i] {
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                '"' => return i + 1,
                _ => i += 1,
            }
        }
        return i;
    }
    i += 1;
    // Close on `"` followed by `hashes` `#`s.
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Distinguishes `'a'` / `'\n'` (char literal, skipped) from `'a`
/// (lifetime, whose name is emitted as a plain identifier token). `i`
/// points at the opening quote.
fn skip_char_or_lifetime(
    chars: &[char],
    bytes: &[u32],
    i: usize,
    line: &mut u32,
    tokens: &mut Vec<Tok>,
) -> usize {
    debug_assert_eq!(chars[i], '\'');
    match chars.get(i + 1) {
        // Escape: a char literal for sure. `'\''`, `'\n'`, `'\u{…}'`.
        // Malformed input can put real newlines before the closing
        // quote; they still count toward the line number.
        Some('\\') => {
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' {
                if chars[j] == '\n' {
                    *line += 1;
                }
                j += 1;
            }
            j + 1
        }
        // `'x'` where the char after x closes the quote: char literal.
        // Anything else (`'a`, `'static`, `'_`) is a lifetime.
        Some(&c) if c != '\'' => {
            if chars.get(i + 2) == Some(&'\'') {
                if c == '\n' {
                    *line += 1;
                }
                i + 3
            } else {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j > i + 1 {
                    tokens.push(Tok {
                        line: *line,
                        offset: bytes[i + 1],
                        kind: TokKind::Ident,
                        text: chars[i + 1..j].iter().collect(),
                    });
                }
                j
            }
        }
        _ => i + 1,
    }
}

/// Parses one line comment into a [`Directive`], if it is one.
///
/// `text` includes the leading `//`. Exactly the comment introducer is
/// stripped (`//`, then one optional doc marker `/` or `!`) — so a
/// directive *quoted* in a doc example keeps its inner `//` and does
/// not register.
fn parse_directive(text: &str, line: u32) -> Option<Directive> {
    let body = text.strip_prefix("//")?;
    let body = body
        .strip_prefix('/')
        .or_else(|| body.strip_prefix('!'))
        .unwrap_or(body);
    let body = body.trim_start();
    let rest = body.strip_prefix("detlint:")?.trim();

    if let Some(decl) = rest.strip_prefix("contract") {
        let decl = decl.trim_start();
        let Some(value) = decl.strip_prefix('=') else {
            return Some(Directive::Malformed {
                line,
                message: "contract declaration must be `contract = <name>`".into(),
            });
        };
        return Some(Directive::Contract {
            line,
            value: value.trim().to_string(),
        });
    }

    if rest == "protocol" {
        return Some(Directive::Protocol { line });
    }

    if let Some(after) = rest.strip_prefix("allow") {
        let after = after.trim_start();
        let Some(after) = after.strip_prefix('(') else {
            return Some(Directive::Malformed {
                line,
                message: "suppression must be `allow(<rules>) -- <justification>`".into(),
            });
        };
        let Some(close) = after.find(')') else {
            return Some(Directive::Malformed {
                line,
                message: "unclosed rule list in allow(…)".into(),
            });
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_ascii_uppercase())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return Some(Directive::Malformed {
                line,
                message: "allow(…) names no rules".into(),
            });
        }
        let tail = after[close + 1..].trim();
        let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        return Some(Directive::Allow {
            line,
            rules,
            justification: justification.to_string(),
        });
    }

    Some(Directive::Malformed {
        line,
        message: format!("unknown detlint directive `{rest}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
// HashMap in a comment
/* HashMap in /* a nested */ block */
let x = "HashMap::iter()";
let y = r#"SystemTime"#;
let z = 'H';
let l: &'static str = "thread_rng";
"##;
        let ids = idents(src);
        assert!(ids.iter().all(|t| !t.contains("HashMap")), "{ids:?}");
        assert!(ids.iter().all(|t| t != "SystemTime"), "{ids:?}");
        assert!(ids.iter().all(|t| t != "thread_rng"), "{ids:?}");
        assert!(ids.contains(&"static".to_string()), "lifetime name lexes");
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn char_literal_with_escaped_quote() {
        let toks = lex(r"let q = '\''; let after = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn byte_char_literals_are_skipped() {
        // Regression: the `b'…'` path used to hand the lexer the char
        // *after* the opening quote, so an escaped byte like `b'\n'`
        // derailed it.
        let toks = lex(r"line.push(b'\n'); let sep = b' '; let after = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(!toks.iter().any(|t| t.is_ident("n")), "{toks:?}");
    }

    #[test]
    fn numeric_range_does_not_eat_dots() {
        let toks = lex("for i in 0..n {}").tokens;
        assert!(toks.iter().any(|t| t.is_ident("n")));
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 2);
    }

    #[test]
    fn directives_parse() {
        let src = "\n// detlint: contract = deterministic\n// detlint: allow(D1, d2) -- keyed scan\n// detlint: allow(D3)\n//! // detlint: contract = tooling\n";
        let d = lex(src).directives;
        assert_eq!(d.len(), 3, "doc-quoted directive ignored: {d:?}");
        assert_eq!(
            d[0],
            Directive::Contract {
                line: 2,
                value: "deterministic".into()
            }
        );
        assert_eq!(
            d[1],
            Directive::Allow {
                line: 3,
                rules: vec!["D1".into(), "D2".into()],
                justification: "keyed scan".into()
            }
        );
        assert_eq!(
            d[2],
            Directive::Allow {
                line: 4,
                rules: vec!["D3".into()],
                justification: String::new()
            }
        );
    }

    #[test]
    fn malformed_directives_are_reported() {
        let d = lex("// detlint: allow D1\n// detlint: frobnicate\n").directives;
        assert!(matches!(d[0], Directive::Malformed { line: 1, .. }));
        assert!(matches!(d[1], Directive::Malformed { line: 2, .. }));
    }
}
