//! `socsense-lint` — the `detlint` static-analysis pass.
//!
//! Every estimate this workspace ships is contractually bit-identical
//! across worker counts, warm/cold refits, and recorder on/off — and
//! the serving tier must not wedge on a panic or drift out of protocol
//! with its shards. The runtime `f64::to_bits` tests check the first
//! contract *after the fact*; `detlint` promotes both to
//! machine-checked properties of the source. The analyzer is
//! dependency-free (no `syn` — the workspace vendors none) and layers:
//!
//! * [`lexer`] — comments and literals stripped; every token carries
//!   its line and byte offset (fuzz-pinned span soundness);
//! * [`tree`] — a brace-tree pass recovering `fn` items, `enum`
//!   variants, `match` arms, and `#[cfg(test)]` ranges;
//! * [`rules`] — the per-file token-shape catalogue (`D1`–`D5`):
//!   hash-order iteration, wall-clock/env/RNG reads, same-statement
//!   parallel float reductions, NaN-poisoned comparators, headers;
//! * [`flow`] — the workspace-aware families over a whole-crate model
//!   with a crate-local call graph: panic paths reachable from the
//!   serve/persist seed set (`P1`), protocol-enum exhaustiveness and
//!   erosion (`C2`), spawn-join and reply-channel discipline (`C3`),
//!   and cross-statement float-accumulation dataflow (`F1`).
//!
//! Each crate declares its contract in its root file:
//!
//! ```text
//! # detlint: contract = deterministic   (written with `//`)
//! ```
//!
//! protocol message enums are marked `// detlint: protocol`, and
//! individual findings are silenced, one line at a time, with a
//! justified suppression:
//!
//! ```text
//! # detlint: allow(D2) -- observation-only: feeds latency histograms
//! ```
//!
//! An empty justification is itself an error. See `DESIGN.md` §9 for
//! the rule catalogue and the relation to the runtime bit-identity
//! tests and to the Miri/loom CI lanes, and [`rules`]/[`flow`] for
//! the per-rule details. The `bench_lint` binary times the full scan
//! for the `lint-throughput` perf gate.
//!
//! The `detlint` binary exits nonzero on any unsuppressed finding:
//!
//! ```text
//! cargo run -p socsense-lint --bin detlint -- --workspace
//! cargo run -p socsense-lint --bin detlint -- --workspace --format json
//! ```

// detlint: contract = tooling

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod tree;

pub use rules::{check_file, declared_contract, Contract, FileInput, Finding};
pub use scan::{scan_workspace, Report};
