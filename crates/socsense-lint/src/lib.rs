//! `socsense-lint` — the `detlint` static-analysis pass.
//!
//! Every estimate this workspace ships is contractually bit-identical
//! across worker counts, warm/cold refits, and recorder on/off. The
//! runtime `f64::to_bits` tests check that contract *after the fact*;
//! `detlint` promotes it to a machine-checked property of the source:
//! a hand-rolled lexer (no `syn` — the workspace vendors none) strips
//! comments and literals from every `src/` and `tests/` file, and a
//! small rule catalogue rejects the constructs that historically break
//! determinism in dependency-aware truth discovery — hash-order
//! iteration, wall-clock reads, out-of-order float reductions,
//! NaN-poisoned comparators, and panicking calls on the serve path.
//!
//! Each crate declares its contract in its root file:
//!
//! ```text
//! # detlint: contract = deterministic   (written with `//`)
//! ```
//!
//! and individual findings are silenced, one line at a time, with a
//! justified suppression:
//!
//! ```text
//! # detlint: allow(D2) -- observation-only: feeds latency histograms
//! ```
//!
//! An empty justification is itself an error. See `DESIGN.md` §9 for
//! the rule catalogue and the relation to the runtime bit-identity
//! tests, and [`rules`] for the per-rule details.
//!
//! The `detlint` binary exits nonzero on any unsuppressed finding:
//!
//! ```text
//! cargo run -p socsense-lint --bin detlint -- --workspace
//! cargo run -p socsense-lint --bin detlint -- --workspace --format json
//! ```

// detlint: contract = tooling

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

pub use rules::{check_file, declared_contract, Contract, FileInput, Finding};
pub use scan::{scan_workspace, Report};
