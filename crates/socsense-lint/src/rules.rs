//! The detlint rule catalogue (D1–D5) plus the contract and
//! suppression machinery.
//!
//! Rules operate on the stripped token stream from [`crate::lexer`] and
//! are deliberately *shape-based*: no type inference, no name
//! resolution. Where a rule needs to know a value's type (D1's "is this
//! a hash collection?"), it uses a per-file heuristic — `let` bindings
//! whose declaration statement mentions `HashMap`/`HashSet` are marked,
//! and iteration methods on marked names fire. The heuristic is tuned
//! to miss nothing the workspace actually writes; a false positive is
//! silenced with a justified `// detlint: allow(…) -- …` comment, which
//! is itself a reviewable diff.
//!
//! | rule | contract | what it rejects |
//! |------|----------|-----------------|
//! | D1 | deterministic | order-escaping iteration over `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, set ops, `for … in map`) |
//! | D2 | deterministic | nondeterminism sources: `Instant::now`, `SystemTime`, `thread_rng`, `std::env::var*`, pointer casts |
//! | D3 | deterministic | float reductions (`.sum::<f32/f64>()`, `.fold(`) in the same statement as a `par_*` primitive, outside the blessed `socsense_matrix::parallel` merge helpers |
//! | D4 | deterministic | `partial_cmp(…).unwrap()/expect()` — NaN-poisoned comparator panics |
//! | D5 | all | crate roots missing `#![forbid(unsafe_code)]` |
//!
//! `C1` (contract declaration problems) and `S1` (suppression
//! problems, including an empty justification) are meta-rules emitted
//! by this module; they cannot themselves be suppressed.
//!
//! The workspace-aware rule families (P1 panic-path audit — the v2
//! successor to D5's old per-file unwrap check — plus C2/C3 protocol
//! discipline and F1 float dataflow) live in [`crate::flow`]; they need
//! the whole-crate model, not one file.

use crate::lexer::{lex, Directive, Tok, TokKind};

/// The determinism contract a crate declares in its root file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contract {
    /// Full contract: D1–D5 all apply. Required for every crate on the
    /// serving path (`socsense-core` … `socsense-serve`).
    Deterministic,
    /// Tooling contract: only the D5 header audit applies (benches,
    /// eval harnesses, observability, and detlint itself — code whose
    /// output never feeds a posterior).
    Tooling,
}

impl Contract {
    /// Parses a declared contract name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "deterministic" => Some(Self::Deterministic),
            "tooling" => Some(Self::Tooling),
            _ => None,
        }
    }
}

/// Crates that must declare `contract = deterministic`; a declaration
/// loosening one of these to `tooling` is itself a finding, so the
/// contract cannot erode silently.
pub const EXPECT_DETERMINISTIC: &[&str] = &[
    "socsense",
    "socsense-core",
    "socsense-matrix",
    "socsense-graph",
    "socsense-baselines",
    "socsense-synth",
    "socsense-twitter",
    "socsense-apollo",
    "socsense-serve",
    "socsense-persist",
    "socsense-discover",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id: `D1`–`D5`, `C1`, or `S1`.
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Whether a justified suppression covers this finding.
    pub suppressed: bool,
    /// The suppression's justification, when suppressed.
    pub justification: Option<String>,
}

/// Everything [`check_file`] needs to know about one source file.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    /// Crate the file belongs to (directory name, e.g. `socsense-core`).
    pub crate_name: &'a str,
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Whether this is the crate root (`src/lib.rs`) — the header-audit
    /// target.
    pub is_crate_root: bool,
    /// The crate's declared contract.
    pub contract: Contract,
    /// File contents.
    pub source: &'a str,
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

const PAR_PRIMITIVES: &[&str] = &[
    "par_chunks",
    "par_map_collect",
    "par_map_reduce",
    "par_fill",
];

/// The one module allowed to reduce floats over parallel results: its
/// merges fold shard outputs in shard-index order.
const BLESSED_MERGE_FILE: &str = "crates/socsense-matrix/src/parallel.rs";

/// Runs every applicable rule over one file and applies suppressions.
pub fn check_file(input: &FileInput) -> Vec<Finding> {
    let lexed = lex(input.source);
    let toks = &lexed.tokens;
    let mut findings: Vec<Finding> = Vec::new();
    let push = |line: u32, rule: &'static str, message: String, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            file: input.rel_path.to_string(),
            line,
            rule,
            message,
            suppressed: false,
            justification: None,
        });
    };

    if input.contract == Contract::Deterministic {
        rule_d1(toks, &mut findings, input);
        rule_d2(toks, &mut findings, input);
        rule_d3(toks, &mut findings, input);
        rule_d4(toks, &mut findings, input);
    }
    if input.is_crate_root && !has_forbid_unsafe(toks) {
        push(
            1,
            "D5",
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
            &mut findings,
        );
    }

    // Suppression pass: a justified `allow` on the finding's line or the
    // line above silences it; an empty justification is itself an error.
    for d in &lexed.directives {
        match d {
            Directive::Allow {
                line,
                rules,
                justification,
            } => {
                if justification.is_empty() {
                    push(
                        *line,
                        "S1",
                        format!(
                            "suppression of {} has no justification; write `-- <why>`",
                            rules.join(", ")
                        ),
                        &mut findings,
                    );
                }
                for f in findings.iter_mut() {
                    let meta = f.rule == "S1" || f.rule == "C1";
                    if !meta
                        && !f.suppressed
                        && (f.line == *line || f.line == line + 1)
                        && rules.iter().any(|r| r == f.rule)
                    {
                        f.suppressed = true;
                        f.justification = Some(justification.clone());
                    }
                }
            }
            Directive::Malformed { line, message } => {
                push(*line, "S1", message.clone(), &mut findings);
            }
            Directive::Contract { .. } | Directive::Protocol { .. } => {}
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Extracts the contract declaration from a crate root file, reporting
/// `C1` findings for a missing/unknown declaration or for a named
/// deterministic crate trying to declare itself `tooling`.
pub fn declared_contract(
    crate_name: &str,
    rel_path: &str,
    source: &str,
) -> (Contract, Vec<Finding>) {
    let mut findings = Vec::new();
    let declared = lex(source).directives.iter().find_map(|d| match d {
        Directive::Contract { line, value } => Some((*line, value.clone())),
        _ => None,
    });
    let must_be_deterministic = EXPECT_DETERMINISTIC.contains(&crate_name);
    let contract = match declared {
        Some((line, value)) => match Contract::parse(&value) {
            Some(c) => {
                if must_be_deterministic && c != Contract::Deterministic {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line,
                        rule: "C1",
                        message: format!(
                            "crate `{crate_name}` is on the deterministic serving path and \
                             cannot loosen its contract to `{value}`"
                        ),
                        suppressed: false,
                        justification: None,
                    });
                }
                c
            }
            None => {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line,
                    rule: "C1",
                    message: format!(
                        "unknown contract `{value}` (expected `deterministic` or `tooling`)"
                    ),
                    suppressed: false,
                    justification: None,
                });
                default_contract(must_be_deterministic)
            }
        },
        None => {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: 1,
                rule: "C1",
                message: format!(
                    "crate `{crate_name}` declares no determinism contract; add \
                     `// detlint: contract = <deterministic|tooling>` to its root file"
                ),
                suppressed: false,
                justification: None,
            });
            default_contract(must_be_deterministic)
        }
    };
    (contract, findings)
}

fn default_contract(must_be_deterministic: bool) -> Contract {
    // A crate that fails to declare still gets linted under the
    // contract it should have had, so the C1 finding is not a bypass.
    if must_be_deterministic {
        Contract::Deterministic
    } else {
        Contract::Tooling
    }
}

// ---------------------------------------------------------------------
// D1: hash-order iteration
// ---------------------------------------------------------------------

/// Names of `let`-bound locals whose declaration statement mentions
/// `HashMap`/`HashSet` (type annotation or initializer).
fn hash_bound_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                // Statement window: up to the next `;` (close enough —
                // a nested `;` only shrinks the window).
                let end = toks[j..]
                    .iter()
                    .position(|t| t.is_punct(';'))
                    .map(|p| j + p)
                    .unwrap_or(toks.len());
                if toks[j..end]
                    .iter()
                    .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
                {
                    names.push(name);
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Walks left from the `.` of a method call to the base identifier of
/// the receiver chain: `a.b[c].keys()` → `a`.
fn receiver_base(toks: &[Tok], dot_idx: usize) -> Option<&str> {
    let mut k = dot_idx.checked_sub(1)?;
    loop {
        // Skip one trailing index/call group.
        while toks[k].is_punct(']') || toks[k].is_punct(')') {
            let close = if toks[k].is_punct(']') {
                (']', '[')
            } else {
                (')', '(')
            };
            let mut depth = 0i32;
            loop {
                if toks[k].is_punct(close.0) {
                    depth += 1;
                } else if toks[k].is_punct(close.1) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            k = k.checked_sub(1)?;
        }
        if toks[k].kind != TokKind::Ident {
            return None;
        }
        match k.checked_sub(1) {
            Some(p) if toks[p].is_punct('.') => {
                k = p.checked_sub(1)?;
            }
            _ => return Some(&toks[k].text),
        }
    }
}

fn rule_d1(toks: &[Tok], findings: &mut Vec<Finding>, input: &FileInput) {
    let marked = hash_bound_names(toks);
    let is_marked = |name: &str| marked.binary_search(&name.to_string()).is_ok();

    for i in 1..toks.len() {
        // `<recv>.method(` where method escapes hash order.
        if toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            if let Some(base) = receiver_base(toks, i - 1) {
                if is_marked(base) {
                    findings.push(Finding {
                        file: input.rel_path.to_string(),
                        line: toks[i].line,
                        rule: "D1",
                        message: format!(
                            "`.{}()` on hash-ordered `{base}` escapes iteration order; \
                             use a BTreeMap/BTreeSet or an index-ordered traversal",
                            toks[i].text
                        ),
                        suppressed: false,
                        justification: None,
                    });
                }
            }
        }
        // `for … in [&[mut]] <marked> {` — by-value/by-ref loop over the
        // whole collection.
        if toks[i].is_ident("for") {
            let horizon = (i + 1..toks.len().min(i + 24)).find(|&j| toks[j].is_ident("in"));
            if let Some(mut j) = horizon {
                j += 1;
                while j < toks.len() && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
                    j += 1;
                }
                if j + 1 < toks.len()
                    && toks[j].kind == TokKind::Ident
                    && is_marked(&toks[j].text)
                    && toks[j + 1].is_punct('{')
                {
                    findings.push(Finding {
                        file: input.rel_path.to_string(),
                        line: toks[j].line,
                        rule: "D1",
                        message: format!(
                            "`for … in {}` iterates a hash-ordered collection; \
                             use a BTreeMap/BTreeSet or an index-ordered traversal",
                            toks[j].text
                        ),
                        suppressed: false,
                        justification: None,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// D2: nondeterminism sources
// ---------------------------------------------------------------------

fn rule_d2(toks: &[Tok], findings: &mut Vec<Finding>, input: &FileInput) {
    let mut push = |line: u32, what: &str| {
        findings.push(Finding {
            file: input.rel_path.to_string(),
            line,
            rule: "D2",
            message: format!("{what} is a nondeterminism source in a deterministic crate"),
            suppressed: false,
            justification: None,
        });
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            push(t.line, "`Instant::now()`");
        }
        if t.is_ident("SystemTime") {
            push(t.line, "`SystemTime`");
        }
        if t.is_ident("thread_rng") {
            push(t.line, "`thread_rng()` (use a seeded StdRng)");
        }
        if t.is_ident("env")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("var") || t.is_ident("var_os") || t.is_ident("vars"))
        {
            push(t.line, "`std::env::var` (thread the value through config)");
        }
        if t.is_ident("as")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('*'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_ident("const") || t.is_ident("mut"))
        {
            push(t.line, "pointer cast (addresses are not stable keys)");
        }
    }
}

// ---------------------------------------------------------------------
// D3: float reductions next to parallel primitives
// ---------------------------------------------------------------------

fn rule_d3(toks: &[Tok], findings: &mut Vec<Finding>, input: &FileInput) {
    if input.rel_path.ends_with(BLESSED_MERGE_FILE) {
        return;
    }
    for i in 1..toks.len() {
        let is_float_sum = toks[i].is_ident("sum")
            && toks[i - 1].is_punct('.')
            && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
            && toks
                .get(i + 4)
                .is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"));
        let is_fold = toks[i].is_ident("fold")
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_float_sum && !is_fold {
            continue;
        }
        // Statement window: previous `;`/`{`/`}` to next `;`.
        let start = (0..i)
            .rev()
            .find(|&j| toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}'))
            .map(|j| j + 1)
            .unwrap_or(0);
        let end = (i..toks.len())
            .find(|&j| toks[j].is_punct(';'))
            .unwrap_or(toks.len());
        if toks[start..end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && PAR_PRIMITIVES.contains(&t.text.as_str()))
        {
            findings.push(Finding {
                file: input.rel_path.to_string(),
                line: toks[i].line,
                rule: "D3",
                message: format!(
                    "float reduction (`.{}`) in the same statement as a parallel primitive; \
                     merge shard results through `socsense_matrix::parallel`'s in-order helpers",
                    toks[i].text
                ),
                suppressed: false,
                justification: None,
            });
        }
    }
}

// ---------------------------------------------------------------------
// D4: NaN-poisoned comparators
// ---------------------------------------------------------------------

fn rule_d4(toks: &[Tok], findings: &mut Vec<Finding>, input: &FileInput) {
    for i in 1..toks.len() {
        if !(toks[i].is_ident("partial_cmp") && toks[i - 1].is_punct('.')) {
            continue;
        }
        // Skip the argument list, then look for `.unwrap(` / `.expect(`.
        let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        let mut depth = 0i32;
        let mut j = open;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(j + 2)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            findings.push(Finding {
                file: input.rel_path.to_string(),
                line: toks[i].line,
                rule: "D4",
                message: "`partial_cmp(…).unwrap()` panics on NaN; use `f64::total_cmp` or an \
                          explicit `unwrap_or` with a deterministic tie-break"
                    .into(),
                suppressed: false,
                justification: None,
            });
        }
    }
}

// ---------------------------------------------------------------------
// D5: header audit
// ---------------------------------------------------------------------

fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}
