//! The append-only write-ahead record log.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::crc::crc32;
use crate::error::PersistError;

/// Serializes one record into its on-disk line: `<crc32 hex8> <json>\n`,
/// CRC over the JSON bytes.
fn encode_line<T: Serialize>(record: &T) -> Vec<u8> {
    // Serialization of the workspace's record types cannot fail (no
    // maps with non-string keys, no non-serializable leaves), and the
    // float_roundtrip vendor feature keeps floats lossless.
    // detlint: allow(P1) -- infallible by construction: record types are plain structs (no map keys, no fallible leaves); a failure here is a type-level bug, not a runtime condition
    let json = serde_json::to_string(record).expect("WAL records serialize infallibly");
    let mut line = format!("{:08x} ", crc32(json.as_bytes())).into_bytes();
    line.extend_from_slice(json.as_bytes());
    line.push(b'\n');
    line
}

/// Parses and validates one line (without trailing newline).
fn decode_line<T: Deserialize>(line: &[u8]) -> Result<T, &'static str> {
    if line.len() < 10 || line[8] != b' ' {
        return Err("malformed record framing");
    }
    let hex = std::str::from_utf8(&line[..8]).map_err(|_| "malformed crc field")?;
    let stored = u32::from_str_radix(hex, 16).map_err(|_| "malformed crc field")?;
    let json = &line[9..];
    if crc32(json) != stored {
        return Err("crc mismatch");
    }
    let json = std::str::from_utf8(json).map_err(|_| "malformed record payload")?;
    serde_json::from_str(json).map_err(|_| "malformed record payload")
}

/// The result of [`recover`]: the valid records plus whether a torn
/// final line was truncated away.
#[derive(Debug)]
pub struct Recovery<T> {
    /// Every valid record, in append order.
    pub records: Vec<T>,
    /// Whether a torn final line was found and truncated in place.
    pub truncated_tail: bool,
}

/// Reads a WAL back, validating every record.
///
/// A missing file yields zero records. A final line that is incomplete
/// or fails validation is a *torn append* (the only failure a crash of
/// the sequential writer can produce): it is truncated away in place —
/// so a subsequently opened [`WalWriter`] appends cleanly after the
/// last valid record — and reported via
/// [`truncated_tail`](Recovery::truncated_tail).
///
/// # Errors
///
/// [`PersistError::Corrupt`] when a record that is **not** the final
/// line fails validation (that cannot be a torn append);
/// [`PersistError::Io`] on filesystem failures.
pub fn recover<T: Deserialize>(path: &Path) -> Result<Recovery<T>, PersistError> {
    let mut file = match OpenOptions::new().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Recovery {
                records: Vec::new(),
                truncated_tail: false,
            });
        }
        Err(e) => return Err(PersistError::io(path, "open", e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| PersistError::io(path, "read", e))?;

    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    while offset < bytes.len() {
        line_no += 1;
        let rest = &bytes[offset..];
        let (line, consumed, complete) = match rest.iter().position(|&b| b == b'\n') {
            Some(nl) => (&rest[..nl], nl + 1, true),
            None => (rest, rest.len(), false),
        };
        let is_final = offset + consumed >= bytes.len();
        match decode_line::<T>(line) {
            Ok(record) if complete => {
                records.push(record);
                offset += consumed;
            }
            // A valid-looking but newline-less final chunk is still a
            // torn append (the newline never landed), as is any failing
            // final line: truncate back to the last clean record.
            _ if is_final => {
                file.set_len(offset as u64)
                    .map_err(|e| PersistError::io(path, "truncate", e))?;
                file.sync_data()
                    .map_err(|e| PersistError::io(path, "fsync", e))?;
                return Ok(Recovery {
                    records,
                    truncated_tail: true,
                });
            }
            // detlint: allow(P1) -- the `_ if is_final` arm above consumes every incomplete-line case; a parsed record without a newline mid-file is impossible by the split logic
            Ok(_) => unreachable!("incomplete line can only be final"),
            Err(what) => {
                return Err(PersistError::Corrupt {
                    path: path.display().to_string(),
                    line: line_no,
                    what,
                });
            }
        }
    }
    Ok(Recovery {
        records,
        truncated_tail: false,
    })
}

/// Atomically replaces `path` with a log holding exactly `records`:
/// written to a sibling temporary file, fsynced, renamed over `path`,
/// and the parent directory fsynced — the file is never observable in a
/// partially written state.
///
/// # Errors
///
/// [`PersistError::Io`] on filesystem failures.
pub fn rewrite_atomic<T: Serialize>(path: &Path, records: &[T]) -> Result<(), PersistError> {
    let tmp = tmp_sibling(path);
    {
        let mut file = File::create(&tmp).map_err(|e| PersistError::io(&tmp, "create", e))?;
        for record in records {
            file.write_all(&encode_line(record))
                .map_err(|e| PersistError::io(&tmp, "write", e))?;
        }
        file.sync_all()
            .map_err(|e| PersistError::io(&tmp, "fsync", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| PersistError::io(path, "rename", e))?;
    sync_parent_dir(path)
}

/// `<path>.tmp`, the scratch name [`rewrite_atomic`] stages into.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), PersistError> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let dir = File::open(parent).map_err(|e| PersistError::io(parent, "open dir", e))?;
    dir.sync_all()
        .map_err(|e| PersistError::io(parent, "fsync dir", e))
}

/// An append-only writer over one WAL file.
///
/// Open [`recover`] first: appends land at the end of the file, so a
/// torn tail must have been truncated away before the first append.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync_every: usize,
    appends_since_sync: usize,
    appends_total: u64,
    fsyncs_total: u64,
    bytes_total: u64,
}

impl WalWriter {
    /// Opens `path` for appending, creating it (and missing parent
    /// directories) as needed.
    ///
    /// `fsync_every` batches durability: an `fsync` is issued every that
    /// many appends (`1` = after every append; `0` = never implicitly —
    /// only [`sync`](Self::sync) flushes).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn open(path: &Path, fsync_every: usize) -> Result<Self, PersistError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| PersistError::io(parent, "create dir", e))?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| PersistError::io(path, "open", e))?;
        // Make the append position explicit (append mode does this on
        // every write anyway; seeking keeps `stream_position` users sane).
        file.seek(SeekFrom::End(0))
            .map_err(|e| PersistError::io(path, "seek", e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            fsync_every,
            appends_since_sync: 0,
            appends_total: 0,
            fsyncs_total: 0,
            bytes_total: 0,
        })
    }

    /// Appends one record and applies the batched-fsync policy.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn append<T: Serialize>(&mut self, record: &T) -> Result<(), PersistError> {
        let line = encode_line(record);
        self.file
            .write_all(&line)
            .map_err(|e| PersistError::io(&self.path, "append", e))?;
        self.appends_total += 1;
        self.bytes_total += line.len() as u64;
        self.appends_since_sync += 1;
        if self.fsync_every > 0 && self.appends_since_sync >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an `fsync` now, regardless of the batching policy.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file
            .sync_data()
            .map_err(|e| PersistError::io(&self.path, "fsync", e))?;
        self.fsyncs_total += 1;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Discards every record: truncates the file to zero length and
    /// fsyncs. Used after a snapshot has absorbed the logged history, so
    /// the log only ever holds the tail since the last checkpoint.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn truncate(&mut self) -> Result<(), PersistError> {
        self.file
            .set_len(0)
            .map_err(|e| PersistError::io(&self.path, "truncate", e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| PersistError::io(&self.path, "seek", e))?;
        self.file
            .sync_data()
            .map_err(|e| PersistError::io(&self.path, "fsync", e))?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Records appended through this writer.
    pub fn appends_total(&self) -> u64 {
        self.appends_total
    }

    /// `fsync`s issued by this writer (batched and explicit).
    pub fn fsyncs_total(&self) -> u64 {
        self.fsyncs_total
    }

    /// Bytes appended through this writer.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Rec {
        seq: u64,
        payload: Vec<u32>,
    }

    fn rec(seq: u64) -> Rec {
        Rec {
            seq,
            payload: vec![seq as u32, 7],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("socsense-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_records_in_order() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.jsonl");
        let mut w = WalWriter::open(&path, 1).unwrap();
        for s in 0..5 {
            w.append(&rec(s)).unwrap();
        }
        assert_eq!(w.appends_total(), 5);
        assert_eq!(w.fsyncs_total(), 5, "fsync_every=1 syncs per append");
        drop(w);
        let rx: Recovery<Rec> = recover(&path).unwrap();
        assert!(!rx.truncated_tail);
        assert_eq!(rx.records, (0..5).map(rec).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_recovers_empty() {
        let dir = tmp_dir("missing");
        let rx: Recovery<Rec> = recover(&dir.join("absent.jsonl")).unwrap();
        assert!(rx.records.is_empty());
        assert!(!rx.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_truncated_and_appends_continue() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.jsonl");
        let mut w = WalWriter::open(&path, 0).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        w.sync().unwrap();
        assert_eq!(w.fsyncs_total(), 1, "fsync_every=0 only syncs explicitly");
        drop(w);
        // Tear the final line mid-record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 4).unwrap();
        drop(f);
        let rx: Recovery<Rec> = recover(&path).unwrap();
        assert!(rx.truncated_tail);
        assert_eq!(rx.records, vec![rec(0)]);
        // The log is clean again: appends resume after the last record.
        let mut w = WalWriter::open(&path, 1).unwrap();
        w.append(&rec(9)).unwrap();
        drop(w);
        let rx: Recovery<Rec> = recover(&path).unwrap();
        assert!(!rx.truncated_tail);
        assert_eq!(rx.records, vec![rec(0), rec(9)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn complete_final_line_with_bad_crc_is_treated_as_torn() {
        let dir = tmp_dir("badcrc");
        let path = dir.join("wal.jsonl");
        let mut w = WalWriter::open(&path, 1).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        drop(w);
        // Flip one payload byte of the final line, newline intact.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let rx: Recovery<Rec> = recover(&path).unwrap();
        assert!(rx.truncated_tail);
        assert_eq!(rx.records, vec![rec(0)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_line_is_an_error_not_a_truncation() {
        let dir = tmp_dir("midcorrupt");
        let path = dir.join("wal.jsonl");
        let mut w = WalWriter::open(&path, 1).unwrap();
        for s in 0..3 {
            w.append(&rec(s)).unwrap();
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt a byte inside the second line's JSON.
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 15] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = recover::<Rec>(&path).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt { line: 2, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_batches_by_policy() {
        let dir = tmp_dir("batch");
        let path = dir.join("wal.jsonl");
        let mut w = WalWriter::open(&path, 3).unwrap();
        for s in 0..7 {
            w.append(&rec(s)).unwrap();
        }
        assert_eq!(w.fsyncs_total(), 2, "7 appends at fsync_every=3");
        w.sync().unwrap();
        assert_eq!(w.fsyncs_total(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_empties_the_log_and_appends_restart() {
        let dir = tmp_dir("truncate");
        let path = dir.join("wal.jsonl");
        let mut w = WalWriter::open(&path, 1).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        w.truncate().unwrap();
        w.append(&rec(2)).unwrap();
        drop(w);
        let rx: Recovery<Rec> = recover(&path).unwrap();
        assert!(!rx.truncated_tail);
        assert_eq!(rx.records, vec![rec(2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_atomic_replaces_contents() {
        let dir = tmp_dir("rewrite");
        let path = dir.join("seg.jsonl");
        rewrite_atomic(&path, &[rec(1), rec(2)]).unwrap();
        let rx: Recovery<Rec> = recover(&path).unwrap();
        assert_eq!(rx.records, vec![rec(1), rec(2)]);
        rewrite_atomic(&path, &[rec(9)]).unwrap();
        let rx: Recovery<Rec> = recover(&path).unwrap();
        assert_eq!(rx.records, vec![rec(9)]);
        assert!(!path.with_extension("jsonl.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
