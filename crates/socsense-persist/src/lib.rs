//! Durable serve state: CRC-guarded write-ahead logging and atomic
//! epoch snapshots.
//!
//! This crate is the storage layer behind `socsense-serve`'s durability
//! contract (DESIGN.md §12): a worker killed at an arbitrary point and
//! restarted from *snapshot + WAL tail* answers every query
//! `f64::to_bits`-identically to the uninterrupted worker.
//!
//! Two primitives:
//!
//! * [`WalWriter`] / [`recover`] — an append-only record log. Each
//!   record is one line, `<crc32 hex8> <json>\n`, with the CRC taken
//!   over the JSON bytes. A crash can tear only the *final* line
//!   (appends are sequential), so recovery validates every line and
//!   truncates a torn tail in place; a corrupt line that is *not* final
//!   is real corruption and is reported as an error rather than silently
//!   dropped. Durability is batched: [`WalWriter::append`] issues an
//!   `fsync` every `fsync_every` appends (`1` = every append — safest,
//!   slowest; `0` = only on explicit [`WalWriter::sync`]).
//! * [`SnapshotStore`] — whole-state checkpoint files, written
//!   tmp-then-rename with `fsync` on both file and directory, so a
//!   snapshot is either completely present or absent. [`SnapshotStore::latest`]
//!   walks candidates newest-first and returns the first valid one,
//!   making a snapshot that was torn mid-write (impossible via this
//!   writer, but possible via external truncation) recoverable by
//!   falling back to its predecessor.
//!
//! Everything is deterministic: record bytes are a pure function of the
//! serialized payload (no timestamps, no randomness), and recovery
//! returns records in append order.

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod error;
mod snapshot;
mod wal;

pub use crc::crc32;
pub use error::PersistError;
pub use snapshot::SnapshotStore;
pub use wal::{recover, rewrite_atomic, Recovery, WalWriter};
