//! Storage-layer errors.

use std::fmt;
use std::path::Path;

/// An error from the WAL or snapshot layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: String,
        /// The failing operation (`open`, `append`, `fsync`, ...).
        op: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// A record that is not the final line of its log failed validation:
    /// this cannot be a torn append, so it is reported instead of
    /// silently dropped or truncated.
    Corrupt {
        /// The log file involved.
        path: String,
        /// 1-based line number of the bad record.
        line: usize,
        /// What failed (`crc mismatch`, `malformed record`, ...).
        what: &'static str,
    },
}

impl PersistError {
    pub(crate) fn io(path: &Path, op: &'static str, source: std::io::Error) -> Self {
        Self::Io {
            path: path.display().to_string(),
            op,
            source,
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, op, source } => {
                write!(f, "persist: {op} failed on {path}: {source}")
            }
            Self::Corrupt { path, line, what } => {
                write!(f, "persist: {path} is corrupt at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Corrupt { .. } => None,
        }
    }
}
