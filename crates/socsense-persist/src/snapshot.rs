//! Atomic whole-state checkpoint files.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::PersistError;
use crate::wal::rewrite_atomic;

/// A directory of checkpoint files, one per snapshot sequence number.
///
/// Each snapshot is a single-record log (`snapshot-<seq>.json`, same
/// CRC-guarded line format as the WAL) written atomically via
/// tmp-then-rename. [`latest`](Self::latest) walks candidates
/// newest-first and returns the first that validates, so one damaged
/// file degrades to its predecessor instead of failing recovery.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    writes_total: u64,
    bytes_total: u64,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn open(dir: &Path) -> Result<Self, PersistError> {
        std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, "create dir", e))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            writes_total: 0,
            bytes_total: 0,
        })
    }

    /// The path of snapshot `seq` (zero-padded so lexical order is
    /// numeric order).
    fn path_of(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{seq:020}.json"))
    }

    /// Writes snapshot `seq` atomically, replacing any previous file of
    /// the same sequence number.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn write<T: Serialize>(&mut self, seq: u64, payload: &T) -> Result<(), PersistError> {
        let path = self.path_of(seq);
        rewrite_atomic(&path, std::slice::from_ref(payload))?;
        self.writes_total += 1;
        self.bytes_total += std::fs::metadata(&path)
            .map_err(|e| PersistError::io(&path, "stat", e))?
            .len();
        Ok(())
    }

    /// Every snapshot sequence number on disk, ascending.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn sequences(&self) -> Result<Vec<u64>, PersistError> {
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| PersistError::io(&self.dir, "read dir", e))?;
        let mut seqs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| PersistError::io(&self.dir, "read dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("snapshot-")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// The newest valid snapshot, if any: `(seq, payload)`.
    ///
    /// Files that fail validation (torn by external interference,
    /// unparseable) are skipped in favour of the next-newest candidate.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures while listing.
    pub fn latest<T: Deserialize>(&self) -> Result<Option<(u64, T)>, PersistError> {
        for &seq in self.sequences()?.iter().rev() {
            let path = self.path_of(seq);
            match crate::wal::recover::<T>(&path) {
                Ok(rx) => {
                    if let Some(payload) = rx.records.into_iter().next() {
                        return Ok(Some((seq, payload)));
                    }
                }
                Err(PersistError::Corrupt { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` snapshots.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures.
    pub fn prune(&self, keep: usize) -> Result<(), PersistError> {
        let seqs = self.sequences()?;
        let drop_n = seqs.len().saturating_sub(keep);
        for &seq in &seqs[..drop_n] {
            let path = self.path_of(seq);
            std::fs::remove_file(&path).map_err(|e| PersistError::io(&path, "remove", e))?;
        }
        Ok(())
    }

    /// Snapshots written through this store.
    pub fn writes_total(&self) -> u64 {
        self.writes_total
    }

    /// Bytes of snapshot files written through this store.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Snap {
        seq: u64,
        bits: Vec<u64>,
    }

    fn snap(seq: u64) -> Snap {
        Snap {
            seq,
            bits: vec![seq, 0xDEAD_BEEF],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("socsense-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn latest_returns_newest_valid() {
        let dir = tmp_dir("latest");
        let mut store = SnapshotStore::open(&dir).unwrap();
        assert!(store.latest::<Snap>().unwrap().is_none());
        store.write(3, &snap(3)).unwrap();
        store.write(10, &snap(10)).unwrap();
        store.write(7, &snap(7)).unwrap();
        let (seq, payload) = store.latest::<Snap>().unwrap().unwrap();
        assert_eq!(seq, 10);
        assert_eq!(payload, snap(10));
        assert_eq!(store.writes_total(), 3);
        assert!(store.bytes_total() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_newest_degrades_to_predecessor() {
        let dir = tmp_dir("damaged");
        let mut store = SnapshotStore::open(&dir).unwrap();
        store.write(1, &snap(1)).unwrap();
        store.write(2, &snap(2)).unwrap();
        // Corrupt snapshot 2 in place (external interference).
        let path = dir.join(format!("snapshot-{:020}.json", 2));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (seq, payload) = store.latest::<Snap>().unwrap().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(payload, snap(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = tmp_dir("prune");
        let mut store = SnapshotStore::open(&dir).unwrap();
        for seq in 1..=5 {
            store.write(seq, &snap(seq)).unwrap();
        }
        store.prune(2).unwrap();
        assert_eq!(store.sequences().unwrap(), vec![4, 5]);
        // Pruning below the count is a no-op error-free path.
        store.prune(10).unwrap();
        assert_eq!(store.sequences().unwrap(), vec![4, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
