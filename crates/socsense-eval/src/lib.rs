//! Evaluation harness: metrics, repeated-experiment runner, and one
//! regenerator per table / figure of the paper's evaluation section.
//!
//! The `repro` binary exposes every experiment as a subcommand
//! (`repro fig3`, `repro table1`, ...); each prints the same rows/series
//! the paper plots, plus an optional JSON dump for archival in
//! `EXPERIMENTS.md`.
//!
//! | experiment | module | paper content |
//! |---|---|---|
//! | Table I | [`experiments::table1`] | exact-bound walk-through, Err = 0.26980433 |
//! | Figs. 3–5 | [`experiments::bound_figures`] | exact vs Gibbs bound vs `n`, `τ`, `p_depT` odds |
//! | Fig. 6 | [`experiments::fig6`] | bound computation time |
//! | Figs. 7–10 | [`experiments::estimator_figures`] | EM-Ext vs EM vs EM-Social vs Optimal |
//! | Table III | [`experiments::table3`] | simulated dataset summaries |
//! | Fig. 11 | [`experiments::fig11`] | 7 algorithms × 5 Twitter scenarios |

// detlint: contract = tooling
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod figure;
mod metrics;
mod runner;

pub use figure::{FigureResult, Series};
pub use metrics::{CalibrationBin, CalibrationCurve, Confusion, MeanStd};
pub use runner::{run_repeated, run_repeated_with};
