//! Parallel repeated-experiment execution.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `reps` independent repetitions of `experiment` across worker
/// threads and returns the results **in repetition order** (index `r` ran
/// with seed `base_seed + r`), so aggregate statistics are reproducible
/// regardless of thread scheduling.
///
/// The worker count adapts to the machine (`available_parallelism`,
/// capped by `reps`); on a single-core box this degrades gracefully to a
/// sequential loop.
///
/// # Panics
///
/// Propagates panics from `experiment`.
///
/// # Example
///
/// ```
/// use socsense_eval::run_repeated;
/// let squares = run_repeated(4, 10, |seed| seed * seed);
/// assert_eq!(squares, vec![100, 121, 144, 169]);
/// ```
pub fn run_repeated<T, F>(reps: usize, base_seed: u64, experiment: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    if reps == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(reps);
    if workers <= 1 {
        return (0..reps)
            .map(|r| experiment(base_seed + r as u64))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..reps).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let r = next.fetch_add(1, Ordering::Relaxed);
                if r >= reps {
                    break;
                }
                let out = experiment(base_seed + r as u64);
                slots.lock()[r] = Some(out);
            });
        }
    })
    .expect("experiment worker panicked");
    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every repetition filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_seed_order() {
        let out = run_repeated(17, 100, |seed| seed);
        assert_eq!(out, (100..117).collect::<Vec<_>>());
    }

    #[test]
    fn zero_reps_is_empty() {
        let out: Vec<u64> = run_repeated(0, 0, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn heavy_closures_share_no_state() {
        // Each repetition derives purely from its seed.
        let a = run_repeated(8, 7, |seed| seed.wrapping_mul(0x9e3779b9));
        let b = run_repeated(8, 7, |seed| seed.wrapping_mul(0x9e3779b9));
        assert_eq!(a, b);
    }
}
