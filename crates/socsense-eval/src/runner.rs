//! Parallel repeated-experiment execution.
//!
//! Built on the workspace's deterministic parallel layer
//! ([`socsense_matrix::parallel`]): repetitions are chunked by index
//! and collected in repetition order, so aggregate statistics are
//! reproducible regardless of worker count or thread scheduling.

use socsense_matrix::parallel::{par_map_collect, Parallelism};

/// Runs `reps` independent repetitions of `experiment` across worker
/// threads and returns the results **in repetition order** (index `r` ran
/// with seed `base_seed + r`), so aggregate statistics are reproducible
/// regardless of thread scheduling.
///
/// Uses [`Parallelism::Auto`]: the worker count adapts to the machine
/// and degrades gracefully to a sequential loop on a single-core box.
/// Use [`run_repeated_with`] to pin the parallelism level explicitly.
///
/// # Panics
///
/// Propagates panics from `experiment`.
///
/// # Example
///
/// ```
/// use socsense_eval::run_repeated;
/// let squares = run_repeated(4, 10, |seed| seed * seed);
/// assert_eq!(squares, vec![100, 121, 144, 169]);
/// ```
pub fn run_repeated<T, F>(reps: usize, base_seed: u64, experiment: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_repeated_with(Parallelism::Auto, reps, base_seed, experiment)
}

/// [`run_repeated`] with an explicit [`Parallelism`] level. Results are
/// identical across levels; only wall-clock time changes.
pub fn run_repeated_with<T, F>(
    par: Parallelism,
    reps: usize,
    base_seed: u64,
    experiment: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    par_map_collect(par, reps, |r| experiment(base_seed + r as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_seed_order() {
        let out = run_repeated(17, 100, |seed| seed);
        assert_eq!(out, (100..117).collect::<Vec<_>>());
    }

    #[test]
    fn zero_reps_is_empty() {
        let out: Vec<u64> = run_repeated(0, 0, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn heavy_closures_share_no_state() {
        // Each repetition derives purely from its seed.
        let a = run_repeated(8, 7, |seed| seed.wrapping_mul(0x9e3779b9));
        let b = run_repeated(8, 7, |seed| seed.wrapping_mul(0x9e3779b9));
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_levels_agree_with_auto() {
        let auto = run_repeated(9, 3, |seed| seed * 2 + 1);
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(4),
        ] {
            assert_eq!(run_repeated_with(par, 9, 3, |seed| seed * 2 + 1), auto);
        }
    }
}
