//! A figure as data: labelled series over a shared x-axis, with text
//! rendering in the shape the paper's plots report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One plotted curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"EM-Ext"` or `"false positive bound"`).
    pub label: String,
    /// y value per x-axis point (`NaN` marks a skipped point).
    pub y: Vec<f64>,
}

/// A full figure: axis, points, curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Identifier matching the paper (`"fig3"`, `"table3"`, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// x-axis label.
    pub xlabel: String,
    /// Shared x coordinates.
    pub x: Vec<f64>,
    /// Optional categorical tick labels (one per x value); used by
    /// Fig. 11 / Table III where the x axis is the dataset name.
    pub xticks: Vec<String>,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Creates an empty figure shell.
    pub fn new(id: &str, title: &str, xlabel: &str, x: Vec<f64>) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            xlabel: xlabel.to_owned(),
            x,
            xticks: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets categorical tick labels for the x axis.
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the x-axis length.
    pub fn set_xticks(&mut self, ticks: Vec<String>) {
        assert_eq!(ticks.len(), self.x.len(), "one tick label per x value");
        self.xticks = ticks;
    }

    /// Appends a curve.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` does not match the x-axis length.
    pub fn push_series(&mut self, label: &str, y: Vec<f64>) {
        assert_eq!(
            y.len(),
            self.x.len(),
            "series {label} has {} points for {} x values",
            y.len(),
            self.x.len()
        );
        self.series.push(Series {
            label: label.to_owned(),
            y,
        });
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        write!(f, "{:>12}", self.xlabel)?;
        for s in &self.series {
            write!(f, "  {:>22}", s.label)?;
        }
        writeln!(f)?;
        for (i, x) in self.x.iter().enumerate() {
            if let Some(tick) = self.xticks.get(i) {
                write!(f, "{tick:>12}")?;
            } else {
                write!(f, "{x:>12.4}")?;
            }
            for s in &self.series {
                let v = s.y[i];
                if v.is_nan() {
                    write!(f, "  {:>22}", "-")?;
                } else {
                    write!(f, "  {v:>22.4}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_includes_all_points_and_labels() {
        let mut fig = FigureResult::new("figX", "demo", "n", vec![1.0, 2.0]);
        fig.push_series("alpha", vec![0.5, 0.25]);
        fig.push_series("beta", vec![f64::NAN, 1.0]);
        let text = fig.to_string();
        assert!(text.contains("figX"));
        assert!(text.contains("alpha") && text.contains("beta"));
        assert!(text.contains("0.5000"));
        assert!(text.lines().count() == 4);
        assert_eq!(fig.series("alpha").unwrap().y[1], 0.25);
        assert!(fig.series("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "points for")]
    fn mismatched_series_length_panics() {
        let mut fig = FigureResult::new("f", "t", "x", vec![1.0]);
        fig.push_series("bad", vec![1.0, 2.0]);
    }

    #[test]
    fn serde_round_trip() {
        let mut fig = FigureResult::new("f", "t", "x", vec![1.0]);
        fig.push_series("s", vec![0.1]);
        let json = serde_json::to_string(&fig).unwrap();
        let back: FigureResult = serde_json::from_str(&json).unwrap();
        assert_eq!(fig, back);
    }
}
