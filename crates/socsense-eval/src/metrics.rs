//! Classification metrics and streaming aggregation.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix over assertions.
///
/// The paper's per-figure metrics map to:
/// * *estimation accuracy* — [`accuracy`](Self::accuracy);
/// * *false positive rate* — false assertions labelled true, over all
///   false assertions ([`false_positive_rate`](Self::false_positive_rate));
/// * *false negative rate* — true assertions labelled false, over all
///   true assertions ([`false_negative_rate`](Self::false_negative_rate)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Confusion {
    /// True assertions labelled true.
    pub tp: usize,
    /// False assertions labelled true.
    pub fp: usize,
    /// False assertions labelled false.
    pub tn: usize,
    /// True assertions labelled false.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_labels(predicted: &[bool], truth: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            truth.len(),
            "prediction/truth length mismatch"
        );
        let mut c = Confusion::default();
        for (&p, &t) in predicted.iter().zip(truth) {
            match (p, t) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total assertions tallied.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction classified correctly; `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// `fp / (fp + tn)`; `0.0` when there are no false assertions.
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// `fn / (fn + tp)`; `0.0` when there are no true assertions.
    pub fn false_negative_rate(&self) -> f64 {
        let denom = self.fn_ + self.tp;
        if denom == 0 {
            0.0
        } else {
            self.fn_ as f64 / denom as f64
        }
    }
}

/// Streaming mean / standard deviation (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeanStd {
    count: u64,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n-1 denominator); `0.0` below two
    /// observations.
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

impl Extend<f64> for MeanStd {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// One bin of a reliability (calibration) diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBin {
    /// Mean predicted probability of the assertions in the bin.
    pub mean_predicted: f64,
    /// Fraction of them that are actually true.
    pub fraction_true: f64,
    /// Number of assertions in the bin.
    pub count: usize,
}

/// A binned reliability diagram for probabilistic truth estimates.
///
/// A *calibrated* fact-finder's posteriors mean what they say: of the
/// assertions it scores around 0.8, about 80 % are true. The diagram
/// bins predictions uniformly on `[0, 1]` and compares each bin's mean
/// prediction with its empirical truth rate;
/// [`expected_calibration_error`](Self::expected_calibration_error)
/// summarises the gap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCurve {
    /// Non-empty bins in ascending prediction order.
    pub bins: Vec<CalibrationBin>,
    /// Total assertions graded.
    pub total: usize,
}

impl CalibrationCurve {
    /// Bins `posteriors` against `truth` into `bins` uniform buckets.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or `bins == 0`.
    pub fn from_posteriors(posteriors: &[f64], truth: &[bool], bins: usize) -> Self {
        assert_eq!(posteriors.len(), truth.len(), "posterior/truth mismatch");
        assert!(bins > 0, "need at least one bin");
        let mut sums = vec![(0.0f64, 0usize, 0usize); bins]; // (Σp, #true, count)
        for (&p, &t) in posteriors.iter().zip(truth) {
            let b = ((p.clamp(0.0, 1.0) * bins as f64) as usize).min(bins - 1);
            sums[b].0 += p;
            sums[b].1 += usize::from(t);
            sums[b].2 += 1;
        }
        let out = sums
            .into_iter()
            .filter(|&(_, _, c)| c > 0)
            .map(|(sp, st, c)| CalibrationBin {
                mean_predicted: sp / c as f64,
                fraction_true: st as f64 / c as f64,
                count: c,
            })
            .collect();
        Self {
            bins: out,
            total: posteriors.len(),
        }
    }

    /// Expected calibration error: the count-weighted mean of
    /// `|mean_predicted - fraction_true|` over the bins. `0` is perfectly
    /// calibrated.
    pub fn expected_calibration_error(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bins
            .iter()
            .map(|b| b.count as f64 * (b.mean_predicted - b.fraction_true).abs())
            .sum::<f64>()
            / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_all_quadrants() {
        let pred = [true, true, false, false, true];
        let truth = [true, false, false, true, true];
        let c = Confusion::from_labels(&pred, &truth);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.false_positive_rate() - 0.5).abs() < 1e-12);
        assert!((c.false_negative_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_empty_is_safe() {
        let c = Confusion::from_labels(&[], &[]);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.false_positive_rate(), 0.0);
        assert_eq!(c.false_negative_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn confusion_rejects_mismatched_lengths() {
        Confusion::from_labels(&[true], &[]);
    }

    #[test]
    fn mean_std_matches_direct_formula() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = MeanStd::new();
        acc.extend(xs.iter().copied());
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        let direct_var = xs.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / 7.0;
        assert!((acc.std() - direct_var.sqrt()).abs() < 1e-12);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn mean_std_single_observation() {
        let mut acc = MeanStd::new();
        acc.push(3.5);
        assert_eq!(acc.mean(), 3.5);
        assert_eq!(acc.std(), 0.0);
    }

    #[test]
    fn perfectly_calibrated_predictions_have_zero_ece() {
        // Two groups: predicted 0.25 with 1/4 true, predicted 0.75 with 3/4 true.
        let posteriors = [0.25, 0.25, 0.25, 0.25, 0.75, 0.75, 0.75, 0.75];
        let truth = [true, false, false, false, true, true, true, false];
        let curve = CalibrationCurve::from_posteriors(&posteriors, &truth, 4);
        assert!(curve.expected_calibration_error() < 1e-12);
        assert_eq!(curve.total, 8);
        assert_eq!(curve.bins.len(), 2);
    }

    #[test]
    fn overconfident_predictions_show_up_in_ece() {
        // Everything predicted 0.95 but only half true.
        let posteriors = [0.95; 10];
        let truth = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        let curve = CalibrationCurve::from_posteriors(&posteriors, &truth, 10);
        assert!((curve.expected_calibration_error() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn boundary_predictions_land_in_end_bins() {
        let curve = CalibrationCurve::from_posteriors(&[0.0, 1.0], &[false, true], 5);
        assert_eq!(curve.bins.len(), 2);
        assert_eq!(curve.bins[0].count, 1);
        assert_eq!(curve.bins[1].count, 1);
        assert!(curve.expected_calibration_error() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn calibration_rejects_mismatched_lengths() {
        CalibrationCurve::from_posteriors(&[0.5], &[], 4);
    }
}
