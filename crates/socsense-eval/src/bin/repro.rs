//! `repro` — regenerate any table or figure from the paper.
//!
//! ```text
//! repro <experiment> [--budget fast|paper] [--reps N] [--scale F]
//!       [--seed N] [--json PATH]
//!
//! experiments: table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table3 fig11
//!              ablations mismatch streaming discover all
//! ```
//!
//! `--budget fast` (default) is sized for one laptop core and preserves
//! every qualitative shape; `--budget paper` uses the paper's repetition
//! counts (20 / 300) and full-scale Twitter scenarios. `--reps` and
//! `--scale` override individual knobs.

use std::process::ExitCode;
use std::time::Instant;

use socsense_eval::experiments::{
    ablations, bound_figures, discover, estimator_figures, fig11, fig6, mismatch, streaming,
    table1, table3, Budget,
};
use socsense_eval::FigureResult;

struct Args {
    experiment: String,
    budget: Budget,
    reps_override: Option<usize>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment: Option<String> = None;
    let mut budget = Budget::fast();
    let mut reps_override = None;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--budget" => {
                budget = match value("--budget")?.as_str() {
                    "fast" => Budget::fast(),
                    "paper" => Budget::paper(),
                    other => return Err(format!("unknown budget {other}")),
                }
            }
            "--reps" => {
                reps_override = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|e| format!("bad --reps: {e}"))?,
                )
            }
            "--scale" => {
                budget.twitter_scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--seed" => {
                budget.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--json" => json = Some(value("--json")?),
            "--help" | "-h" => return Err(USAGE.into()),
            other if !other.starts_with('-') && experiment.is_none() => {
                experiment = Some(other.to_owned())
            }
            other => return Err(format!("unexpected argument {other}; try --help")),
        }
    }
    if let Some(r) = reps_override {
        budget.bound_reps = r;
        budget.estimator_reps = r;
    }
    Ok(Args {
        experiment: experiment.ok_or_else(|| USAGE.to_string())?,
        budget,
        reps_override,
        json,
    })
}

const USAGE: &str = "usage: repro <table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|table3|fig11|ablations|mismatch|streaming|discover|all> \
     [--budget fast|paper] [--reps N] [--scale F] [--seed N] [--json PATH]";

/// Collected JSON-able outputs for --json.
#[derive(Default)]
struct JsonSink(Vec<serde_json::Value>);

impl JsonSink {
    fn push_figure(&mut self, fig: &FigureResult) {
        self.0
            .push(serde_json::to_value(fig).expect("figure serialises"));
    }
}

fn run_one(
    name: &str,
    budget: &Budget,
    reps: Option<usize>,
    sink: &mut JsonSink,
) -> Result<(), String> {
    let t0 = Instant::now();
    match name {
        "table1" => {
            let t = table1::run();
            print!("{t}");
            self_check_table1(&t)?;
            sink.0
                .push(serde_json::to_value(&t).expect("table1 serialises"));
        }
        "fig3" => print_fig(&bound_figures::fig3(budget), sink),
        "fig4" => print_fig(&bound_figures::fig4(budget), sink),
        "fig5" => print_fig(&bound_figures::fig5(budget), sink),
        "fig6" => print_fig(&fig6::fig6(budget), sink),
        "fig7" => print_estimator(&estimator_figures::fig7(budget), sink),
        "fig8" => print_estimator(&estimator_figures::fig8(budget), sink),
        "fig9" => print_estimator(&estimator_figures::fig9(budget), sink),
        "fig10" => print_estimator(&estimator_figures::fig10(budget), sink),
        "table3" => {
            let t = table3::run(budget);
            print!("{t}");
            sink.0
                .push(serde_json::to_value(&t).expect("table3 serialises"));
        }
        "fig11" => print_fig(&fig11::fig11(budget, reps.unwrap_or(3)), sink),
        "ablations" => {
            for fig in ablations::run_all(budget) {
                print_fig(&fig, sink);
            }
        }
        "mismatch" => print_fig(&mismatch::mismatch(budget), sink),
        "streaming" => print_fig(&streaming::streaming(budget), sink),
        "discover" => {
            let t = discover::run(budget);
            print!("{t}");
            sink.0
                .push(serde_json::to_value(&t).expect("discover serialises"));
        }
        other => return Err(format!("unknown experiment {other}\n{USAGE}")),
    }
    eprintln!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
    Ok(())
}

fn print_fig(fig: &FigureResult, sink: &mut JsonSink) {
    print!("{fig}");
    sink.push_figure(fig);
}

fn print_estimator(fig: &estimator_figures::EstimatorFigure, sink: &mut JsonSink) {
    print!("{}", fig.accuracy);
    print!("{}", fig.rates);
    sink.push_figure(&fig.accuracy);
    sink.push_figure(&fig.rates);
}

fn self_check_table1(t: &table1::Table1) -> Result<(), String> {
    if (t.bound.error - t.paper_err).abs() > 1e-8 {
        return Err(format!(
            "table1 self-check failed: {:.8} vs paper {:.8}",
            t.bound.error, t.paper_err
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut sink = JsonSink::default();
    let all = [
        "table1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table3",
        "fig11",
        "ablations",
        "mismatch",
        "streaming",
        "discover",
    ];
    if args.experiment == "all" {
        for name in all {
            run_one(name, &args.budget, args.reps_override, &mut sink)?;
            println!();
        }
    } else {
        run_one(
            &args.experiment,
            &args.budget,
            args.reps_override,
            &mut sink,
        )?;
    }
    if let Some(path) = args.json {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&sink.0).map_err(|e| e.to_string())?,
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
