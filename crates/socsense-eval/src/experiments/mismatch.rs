//! Gap decomposition: how much of the distance between a practical
//! estimator and the fundamental bound is *θ-estimation* error?
//!
//! Not a paper figure, but the natural follow-up to its Figs. 7–10: the
//! bound assumes the detector knows `θ`; EM does not. For each generated
//! dataset we evaluate, exactly and under the true `θ`:
//!
//! 1. the **bound** — the matched detector (`θ̂ = θ*`);
//! 2. the **EM-Ext plug-in detector** — decisions with the fitted `θ̂`,
//!    error measured under `θ*` (via
//!    [`socsense_core::bound::mismatched_decision_error`]);
//! 3. the **EM plug-in detector** — the same with the
//!    independence-assuming fit, whose decision rule also ignores `D`;
//! 4. EM-Ext's **empirical error** on the very dataset it was fitted on
//!    (one-sample noise around curve 2).
//!
//! Ordering 1 ≤ 2 ≤ 3 quantifies, in expectation, what perfect knowledge
//! of `θ` would buy and what dependency-awareness buys.

use socsense_baselines::{EmExtFinder, FactFinder};
use socsense_core::{
    bound::mismatched_decision_error, exact_bound, ClaimData, EmConfig, EmExt, InitStrategy,
    SourceParams, Theta,
};
use socsense_matrix::SparseBinaryMatrix;
use socsense_synth::{empirical_theta, GeneratorConfig, SyntheticDataset};

use crate::experiments::{strided_assertions, Budget};
use crate::figure::FigureResult;
use crate::metrics::{Confusion, MeanStd};
use crate::runner::run_repeated;

/// Per-source `(P(claim|C=1), P(claim|C=0))` for assertion `j` under a
/// given θ, honouring the dependency column.
fn assertion_probs(data: &ClaimData, theta: &Theta, j: u32) -> Vec<(f64, f64)> {
    let mut probs: Vec<(f64, f64)> = theta.sources().iter().map(|s| (s.a, s.b)).collect();
    for &i in data.d().col(j) {
        let s = theta.source(i as usize);
        probs[i as usize] = (s.f, s.g);
    }
    probs
}

/// `(bound, em_ext_plugin, em_plugin, em_ext_empirical)` for one dataset;
/// the three exact evaluations run on a strided assertion subsample.
fn one_experiment(cfg: &GeneratorConfig, budget: &Budget, seed: u64) -> [f64; 4] {
    let ds = SyntheticDataset::generate(cfg, seed).expect("validated config");
    let star = empirical_theta(&ds);

    let em_cfg = EmConfig {
        init: InitStrategy::DepBiased,
        ..EmConfig::default()
    };
    let ext_fit = EmExt::new(em_cfg).fit(&ds.data).expect("fit succeeds");
    // The EM (independent) fit: D discarded both in fitting and deciding.
    let blind = ClaimData::new(
        ds.data.sc().clone(),
        SparseBinaryMatrix::empty(ds.data.sc().nrows(), ds.data.sc().ncols()),
    )
    .expect("shapes match");
    let em_fit = EmExt::new(em_cfg).fit(&blind).expect("fit succeeds");

    let cols = strided_assertions(ds.assertion_count(), budget.bound_assertions);
    let (mut bound, mut ext_plugin, mut em_plugin) = (0.0, 0.0, 0.0);
    for &j in &cols {
        let truth_probs = assertion_probs(&ds.data, &star, j);
        bound += exact_bound(&truth_probs, star.z()).expect("n <= 30").error;
        let ext_probs = assertion_probs(&ds.data, &ext_fit.theta, j);
        ext_plugin +=
            mismatched_decision_error(&truth_probs, star.z(), &ext_probs, ext_fit.theta.z())
                .expect("n <= 30")
                .error;
        // EM's decision rule sees no dependency: (a, b) everywhere.
        let em_probs: Vec<(f64, f64)> = em_fit
            .theta
            .sources()
            .iter()
            .map(|s: &SourceParams| (s.a, s.b))
            .collect();
        em_plugin += mismatched_decision_error(&truth_probs, star.z(), &em_probs, em_fit.theta.z())
            .expect("n <= 30")
            .error;
    }
    let labels = EmExtFinder::new(em_cfg).classify(&ds.data).expect("fits");
    let empirical = 1.0 - Confusion::from_labels(&labels, &ds.truth).accuracy();
    let mf = cols.len() as f64;
    [bound / mf, ext_plugin / mf, em_plugin / mf, empirical]
}

/// Sweeps the source count and reports the four expected-error curves.
pub fn mismatch(budget: &Budget) -> FigureResult {
    let xs: Vec<f64> = [10u32, 15, 20, 25].iter().map(|&n| n as f64).collect();
    let mut fig = FigureResult::new(
        "mismatch",
        "expected error: bound vs plug-in detectors (true θ measured from ground truth)",
        "n",
        xs.clone(),
    );
    let mut cols: Vec<[MeanStd; 4]> = Vec::with_capacity(xs.len());
    for (pi, &x) in xs.iter().enumerate() {
        let cfg = GeneratorConfig {
            n: x as u32,
            ..GeneratorConfig::paper_defaults()
        };
        let samples = run_repeated(
            budget.estimator_reps,
            budget.seed_for("mismatch", pi),
            |seed| one_experiment(&cfg, budget, seed),
        );
        let mut acc: [MeanStd; 4] = Default::default();
        for s in samples {
            for (k, v) in s.into_iter().enumerate() {
                acc[k].push(v);
            }
        }
        cols.push(acc);
    }
    for (k, label) in [
        "bound (matched)",
        "EM-Ext plug-in",
        "EM plug-in",
        "EM-Ext empirical",
    ]
    .iter()
    .enumerate()
    {
        fig.push_series(label, cols.iter().map(|c| c[k].mean()).collect());
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_decomposition_is_ordered() {
        let mut b = Budget::fast();
        b.estimator_reps = 8;
        b.bound_assertions = 10;
        let fig = mismatch(&b);
        let bound = &fig.series("bound (matched)").unwrap().y;
        let ext = &fig.series("EM-Ext plug-in").unwrap().y;
        let em = &fig.series("EM plug-in").unwrap().y;
        for i in 0..fig.x.len() {
            assert!(
                bound[i] <= ext[i] + 1e-9,
                "bound {} above EM-Ext plug-in {} at n={}",
                bound[i],
                ext[i],
                fig.x[i]
            );
            // Dependency-aware decisions beat dependency-blind ones on
            // average (slack for estimation noise at 8 reps; fewer
            // repetitions leave the smallest problems too noisy).
            assert!(
                ext[i] <= em[i] + 0.05,
                "EM-Ext plug-in {} above EM plug-in {} at n={}",
                ext[i],
                em[i],
                fig.x[i]
            );
        }
    }

    #[test]
    fn empirical_error_tracks_the_plugin_expectation() {
        let mut b = Budget::fast();
        b.estimator_reps = 6;
        b.bound_assertions = 10;
        let fig = mismatch(&b);
        let ext = &fig.series("EM-Ext plug-in").unwrap().y;
        let emp = &fig.series("EM-Ext empirical").unwrap().y;
        for i in 0..fig.x.len() {
            assert!(
                (ext[i] - emp[i]).abs() < 0.12,
                "plug-in {} vs empirical {} at n={}",
                ext[i],
                emp[i],
                fig.x[i]
            );
        }
    }
}
