//! Table I — the exact-bound walk-through example.
//!
//! The paper lists, for a three-source system, `P(SC_j | C_j = 1)` and
//! `P(SC_j | C_j = 0)` for all eight claim patterns and derives
//! `Err = 0.26980433` with `z = 0.5`. This module re-evaluates Eq. 3 from
//! those published joint tables.

use serde::{Deserialize, Serialize};
use std::fmt;

use socsense_core::{exact_bound_from_table, BoundResult};

/// The paper's Table I, pattern order 000..111 (source 1 is the MSB, as
/// printed in the paper; order does not affect the bound).
pub const TABLE_I_P1: [f64; 8] = [
    0.18546216, 0.17606773, 0.00033244, 0.01971855, 0.24427898, 0.19063986, 0.02321803, 0.16028224,
];
/// `P(SC_j | C_j = 0)` column of Table I.
pub const TABLE_I_P0: [f64; 8] = [
    0.05851677, 0.05300123, 0.12803859, 0.16032756, 0.14231588, 0.08222352, 0.18716734, 0.18840910,
];
/// The bound value the paper reports for Table I.
pub const PAPER_ERR: f64 = 0.26980433;

/// Result of re-running the walk-through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Per-pattern rows: (pattern, `P(SC|C=1)`, `P(SC|C=0)`, error mass
    /// contributed).
    pub rows: Vec<(String, f64, f64, f64)>,
    /// The recomputed bound with FP/FN split.
    pub bound: BoundResult,
    /// The paper's published value for comparison.
    pub paper_err: f64,
}

/// Recomputes Table I's bound from the published joint tables.
pub fn run() -> Table1 {
    let bound =
        exact_bound_from_table(&TABLE_I_P1, &TABLE_I_P0, 0.5).expect("static tables are valid");
    let rows = (0..8)
        .map(|s| {
            let pattern = format!("{s:03b}");
            let w1 = 0.5 * TABLE_I_P1[s];
            let w0 = 0.5 * TABLE_I_P0[s];
            (pattern, TABLE_I_P1[s], TABLE_I_P0[s], w1.min(w0))
        })
        .collect();
    Table1 {
        rows,
        bound,
        paper_err: PAPER_ERR,
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table I — error-bound walk-through (z = 0.5) ==")?;
        writeln!(
            f,
            "{:>5}  {:>14}  {:>14}  {:>14}",
            "SC_j", "P(SC|C=1)", "P(SC|C=0)", "err mass"
        )?;
        for (pattern, p1, p0, mass) in &self.rows {
            writeln!(f, "{pattern:>5}  {p1:>14.8}  {p0:>14.8}  {mass:>14.8}")?;
        }
        writeln!(
            f,
            "recomputed Err = {:.8} (FP {:.8} + FN {:.8}); paper reports {:.8}",
            self.bound.error, self.bound.false_positive, self.bound.false_negative, self.paper_err
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_published_value() {
        let t = run();
        assert!(
            (t.bound.error - PAPER_ERR).abs() < 1e-8,
            "recomputed {:.8}",
            t.bound.error
        );
        // Row masses sum to the bound.
        let total: f64 = t.rows.iter().map(|r| r.3).sum();
        assert!((total - t.bound.error).abs() < 1e-12);
    }

    #[test]
    fn rendering_contains_all_patterns() {
        let text = run().to_string();
        for p in ["000", "011", "111"] {
            assert!(text.contains(p));
        }
        assert!(text.contains("0.26980433"));
    }
}
