//! Dependency-discovery sweep: edge-recovery quality and end-to-end
//! EM-Ext accuracy with a *discovered* `D̂` versus the true `D` versus
//! the independence assumption, across the planted copy worlds, the
//! Sec. V-A synthetic presets, and the five simulated Twitter scenarios.
//!
//! Edge precision/recall is scored against the *recoverable* subset of
//! the true graph — edges whose endpoints co-claimed at least
//! `min_shared` assertions in the generated log. A follow edge never
//! exercised by any cascade leaves no trace in the claim log, so
//! counting it against recall would measure the simulator's activity
//! level, not the discovery algorithm (the tables carry both counts).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use socsense_baselines::{EmExtFinder, FactFinder};
use socsense_core::ClaimData;
use socsense_discover::{discover_dependencies, edge_quality, DiscoverConfig};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_synth::{GeneratorConfig, PlantedConfig, PlantedDataset, SyntheticDataset};
use socsense_twitter::{ScenarioConfig, TwitterDataset};

use crate::experiments::Budget;
use crate::metrics::Confusion;

/// One world's discovery outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoverRow {
    /// World label.
    pub dataset: String,
    /// Sources.
    pub n: u32,
    /// Assertions.
    pub m: u32,
    /// Claim-log length.
    pub claims: usize,
    /// Edges in the full true graph.
    pub true_edges: usize,
    /// Recoverable reference edges (co-claimed `>= min_shared`).
    pub recoverable_edges: usize,
    /// Edges discovery returned.
    pub discovered_edges: usize,
    /// Precision against the recoverable reference.
    pub precision: f64,
    /// Recall against the recoverable reference.
    pub recall: f64,
    /// F1 against the recoverable reference.
    pub f1: f64,
    /// EM-Ext classification accuracy with the discovered `D̂`.
    pub acc_discovered: f64,
    /// EM-Ext classification accuracy with the true `D`.
    pub acc_true: f64,
    /// EM-Ext classification accuracy assuming independence (`D = 0`).
    pub acc_independent: f64,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoverTable {
    /// One row per world.
    pub rows: Vec<DiscoverRow>,
}

/// The truth edges a log-only method could recover: endpoints co-claimed
/// at least `min_shared` distinct assertions.
fn recoverable_edges(
    n: u32,
    claims: &[TimedClaim],
    graph: &FollowerGraph,
    min_shared: usize,
) -> Vec<(u32, u32)> {
    let mut claimed: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n as usize];
    for c in claims {
        claimed[c.source as usize].insert(c.assertion);
    }
    graph
        .edges()
        .filter(|&(follower, followee)| {
            claimed[follower as usize]
                .intersection(&claimed[followee as usize])
                .count()
                >= min_shared
        })
        .collect()
}

/// Scores one world: discovery quality plus the three-arm EM comparison.
#[allow(clippy::too_many_arguments)]
fn score_world(
    dataset: String,
    n: u32,
    m: u32,
    claims: &[TimedClaim],
    true_graph: &FollowerGraph,
    truth: &[bool],
    cfg: &DiscoverConfig,
    finder: &EmExtFinder,
) -> DiscoverRow {
    let discovery = discover_dependencies(n, m, claims, cfg).expect("discovery runs");
    let reference = recoverable_edges(n, claims, true_graph, cfg.min_shared);
    let quality = edge_quality(discovery.edge_pairs(), reference.iter().copied());

    let accuracy = |data: &ClaimData| -> f64 {
        let labels = finder.classify(data).expect("estimator runs");
        Confusion::from_labels(&labels, truth).accuracy()
    };
    let with_true = ClaimData::from_claims(n, m, claims, true_graph);
    let with_discovered = ClaimData::from_claims(n, m, claims, &discovery.graph);

    DiscoverRow {
        dataset,
        n,
        m,
        claims: claims.len(),
        true_edges: true_graph.edge_count(),
        recoverable_edges: reference.len(),
        discovered_edges: quality.discovered_edges,
        precision: quality.precision,
        recall: quality.recall,
        f1: quality.f1(),
        acc_discovered: accuracy(&with_discovered),
        acc_true: accuracy(&with_true),
        acc_independent: accuracy(&with_true.assuming_independence()),
    }
}

/// Runs the sweep: two planted copy worlds, the two Sec. V-A presets,
/// and the five Twitter scenarios at `budget.twitter_scale`.
pub fn run(budget: &Budget) -> DiscoverTable {
    let cfg = DiscoverConfig::default();
    let finder = EmExtFinder::default();
    let mut rows = Vec::new();

    for (i, (label, world)) in [
        ("planted", PlantedConfig::default_world()),
        ("planted-noiseless", PlantedConfig::noiseless()),
    ]
    .into_iter()
    .enumerate()
    {
        let ds = PlantedDataset::generate(&world, budget.seed_for("discover-planted", i))
            .expect("planted config validates");
        rows.push(score_world(
            label.to_owned(),
            ds.n,
            ds.m,
            &ds.claims,
            &ds.graph,
            &ds.truth,
            &cfg,
            &finder,
        ));
    }

    for (i, (label, gen_cfg)) in [
        ("synth-paper", GeneratorConfig::paper_defaults()),
        ("synth-estimator", GeneratorConfig::estimator_defaults()),
    ]
    .into_iter()
    .enumerate()
    {
        let ds = SyntheticDataset::generate(&gen_cfg, budget.seed_for("discover-synth", i))
            .expect("preset validates");
        let n = ds.data.source_count() as u32;
        let m = ds.data.assertion_count() as u32;
        rows.push(score_world(
            label.to_owned(),
            n,
            m,
            &ds.claims,
            &ds.graph,
            &ds.truth,
            &cfg,
            &finder,
        ));
    }

    for (i, preset) in ScenarioConfig::all_presets().into_iter().enumerate() {
        let scaled = preset.scaled(budget.twitter_scale);
        let ds = TwitterDataset::simulate(&scaled, budget.seed_for("discover-twitter", i))
            .expect("preset validates");
        let truth: Vec<bool> = ds.truth.iter().map(|t| t.is_true()).collect();
        rows.push(score_world(
            scaled.name.clone(),
            ds.source_count(),
            ds.assertion_count(),
            &ds.timed_claims(),
            &ds.graph,
            &truth,
            &cfg,
            &finder,
        ));
    }

    DiscoverTable { rows }
}

impl fmt::Display for DiscoverTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Dependency discovery — edge recovery and end-to-end EM-Ext accuracy =="
        )?;
        writeln!(
            f,
            "(P/R/F1 vs the recoverable reference: true edges co-claiming >= min_shared assertions)"
        )?;
        writeln!(
            f,
            "{:<18} {:>6} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>7} {:>7} {:>7}",
            "dataset",
            "n",
            "m",
            "claims",
            "true",
            "recov",
            "found",
            "prec",
            "recall",
            "f1",
            "acc(D̂)",
            "acc(D)",
            "acc(0)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<18} {:>6} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6.3} {:>6.3} {:>6.3} | {:>7.3} {:>7.3} {:>7.3}",
                r.dataset,
                r.n,
                r.m,
                r.claims,
                r.true_edges,
                r.recoverable_edges,
                r.discovered_edges,
                r.precision,
                r.recall,
                r.f1,
                r.acc_discovered,
                r.acc_true,
                r.acc_independent
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_worlds_and_planted_meets_the_gate() {
        let budget = Budget {
            twitter_scale: 0.02,
            ..Budget::fast()
        };
        let t = run(&budget);
        assert_eq!(t.rows.len(), 9);
        let planted = &t.rows[0];
        assert!(
            planted.f1 >= 0.8,
            "planted-world F1 {:.3} under the CI floor",
            planted.f1
        );
        // Discovered-D̂ must track true-D on the planted world.
        assert!((planted.acc_discovered - planted.acc_true).abs() <= 0.05);
        for r in &t.rows {
            assert!(r.precision >= 0.0 && r.precision <= 1.0);
            assert!(r.recall >= 0.0 && r.recall <= 1.0);
        }
    }
}
