//! Figures 3–5 — exact vs Gibbs-approximated error bound.
//!
//! All three figures share the same machinery: sweep one knob of the
//! Sec. V-A generator, and at every point run `bound_reps` independent
//! experiments; each experiment generates a dataset, measures the true
//! `θ` via [`socsense_synth::empirical_theta`], and evaluates the mean
//! per-assertion bound twice — exactly (Eq. 3) and by Gibbs sampling
//! (Algorithm 1). Reported curves: total / false-positive /
//! false-negative bound for both methods.

use socsense_core::{bound_for_assertions, BoundMethod, BoundResult};
use socsense_matrix::logprob::odds_to_prob;
use socsense_synth::{empirical_theta, GeneratorConfig, IntInterval, Interval, SyntheticDataset};

use crate::experiments::{strided_assertions, Budget};
use crate::figure::FigureResult;
use crate::metrics::MeanStd;
use crate::runner::run_repeated;

/// Both bounds for one generated dataset.
#[derive(Debug, Clone, Copy)]
struct PointSample {
    exact: BoundResult,
    approx: BoundResult,
}

fn bound_pair(cfg: &GeneratorConfig, budget: &Budget, seed: u64) -> PointSample {
    let ds = SyntheticDataset::generate(cfg, seed).expect("validated config");
    let theta = empirical_theta(&ds);
    let cols = strided_assertions(ds.assertion_count(), budget.bound_assertions);
    let exact = bound_for_assertions(&ds.data, &theta, &BoundMethod::Exact, &cols)
        .expect("exact bound applies: n <= 25 in Figs. 3-5");
    let mut gibbs = budget.gibbs;
    gibbs.seed = seed ^ 0x9e37_79b9;
    let approx = bound_for_assertions(&ds.data, &theta, &BoundMethod::Gibbs(gibbs), &cols)
        .expect("gibbs bound always applies");
    PointSample { exact, approx }
}

fn sweep(
    id: &str,
    title: &str,
    xlabel: &str,
    xs: Vec<f64>,
    budget: &Budget,
    make_config: impl Fn(f64) -> GeneratorConfig,
) -> FigureResult {
    let mut fig = FigureResult::new(id, title, xlabel, xs.clone());
    let mut cols: Vec<[MeanStd; 6]> = Vec::with_capacity(xs.len());
    for (pi, &x) in xs.iter().enumerate() {
        let cfg = make_config(x);
        let samples = run_repeated(budget.bound_reps, budget.seed_for(id, pi), |seed| {
            bound_pair(&cfg, budget, seed)
        });
        let mut acc: [MeanStd; 6] = Default::default();
        for s in samples {
            acc[0].push(s.exact.error);
            acc[1].push(s.approx.error);
            acc[2].push(s.exact.false_positive);
            acc[3].push(s.approx.false_positive);
            acc[4].push(s.exact.false_negative);
            acc[5].push(s.approx.false_negative);
        }
        cols.push(acc);
    }
    let labels = [
        "exact bound",
        "approx bound",
        "exact FP bound",
        "approx FP bound",
        "exact FN bound",
        "approx FN bound",
    ];
    for (k, label) in labels.iter().enumerate() {
        fig.push_series(label, cols.iter().map(|c| c[k].mean()).collect());
    }
    fig
}

/// Fig. 3 — bound precision vs the number of sources `n ∈ {5,10,...,25}`.
pub fn fig3(budget: &Budget) -> FigureResult {
    sweep(
        "fig3",
        "exact vs approximate error bound, varying sources n",
        "n",
        (1..=5).map(|k| (5 * k) as f64).collect(),
        budget,
        |n| GeneratorConfig {
            n: n as u32,
            ..GeneratorConfig::paper_defaults()
        },
    )
}

/// Fig. 4 — bound precision vs the number of dependency trees
/// `τ ∈ 1..=11` (`n = 20`).
pub fn fig4(budget: &Budget) -> FigureResult {
    sweep(
        "fig4",
        "exact vs approximate error bound, varying dependency trees tau",
        "tau",
        (1..=11).map(|t| t as f64).collect(),
        budget,
        |tau| GeneratorConfig {
            tau: IntInterval::fixed(tau as u32),
            ..GeneratorConfig::paper_defaults()
        },
    )
}

/// Fig. 5 — bound precision vs the dependent-claim odds
/// `p_depT/(1-p_depT) ∈ 1.1..=2.0`, with independent odds pinned at 2.
pub fn fig5(budget: &Budget) -> FigureResult {
    sweep(
        "fig5",
        "exact vs approximate error bound, varying dependent-claim odds",
        "depT odds",
        (0..10).map(|k| 1.1 + 0.1 * k as f64).collect(),
        budget,
        |odds| GeneratorConfig {
            p_indep_t: Interval::fixed(odds_to_prob(2.0)),
            p_dep_t: Interval::fixed(odds_to_prob(odds)),
            ..GeneratorConfig::paper_defaults()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_budget() -> Budget {
        let mut b = Budget::fast();
        b.bound_reps = 3;
        b.bound_assertions = 6;
        b.gibbs.min_samples = 200;
        b.gibbs.max_samples = 400;
        b
    }

    #[test]
    fn fig3_shapes_match_paper() {
        let fig = fig3(&tiny_budget());
        assert_eq!(fig.x, vec![5.0, 10.0, 15.0, 20.0, 25.0]);
        assert_eq!(fig.series.len(), 6);
        let exact = &fig.series("exact bound").unwrap().y;
        let approx = &fig.series("approx bound").unwrap().y;
        for (e, a) in exact.iter().zip(approx) {
            assert!(
                (e - a).abs() < 0.05,
                "approx {a:.4} strays from exact {e:.4}"
            );
            assert!((0.0..=0.5).contains(e));
        }
        // FP + FN = total for the exact curves.
        let fp = &fig.series("exact FP bound").unwrap().y;
        let fnb = &fig.series("exact FN bound").unwrap().y;
        for i in 0..fig.x.len() {
            assert!((fp[i] + fnb[i] - exact[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fig4_covers_full_tau_range() {
        let mut b = tiny_budget();
        b.bound_reps = 2;
        let fig = fig4(&b);
        assert_eq!(fig.x.len(), 11);
        for s in &fig.series {
            assert!(s.y.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn fig5_bound_shrinks_with_informative_dependent_claims() {
        let mut b = tiny_budget();
        b.bound_reps = 6;
        let fig = fig5(&b);
        let exact = &fig.series("exact bound").unwrap().y;
        // Higher dependent-claim odds = more information = smaller bound;
        // compare the sweep endpoints with slack for sampling noise.
        assert!(
            exact[0] + 0.01 >= exact[exact.len() - 1],
            "bound should not grow: {:.4} -> {:.4}",
            exact[0],
            exact[exact.len() - 1]
        );
    }
}
