//! Fig. 11 — top-100 accuracy of seven fact-finders on the five
//! (simulated) Twitter datasets.
//!
//! Protocol, mirroring the paper: run every algorithm through the Apollo
//! pipeline, take its top-100 assertions by estimated credibility, and
//! score `#True / (#True + #False + #Opinion)` — with the simulator's
//! ground truth standing in for the paper's blinded human graders (see
//! `DESIGN.md` §5).

use socsense_apollo::{Apollo, ApolloConfig};
use socsense_baselines::all_finders;
use socsense_twitter::{ScenarioConfig, TwitterDataset};

use crate::experiments::Budget;
use crate::figure::FigureResult;
use crate::metrics::MeanStd;
use crate::runner::run_repeated;

/// How many top-ranked assertions each algorithm is graded on at full
/// scale (the paper's 100).
pub const TOP_K: usize = 100;

/// Grading depth for a given scenario scale. At full scale this is the
/// paper's top-100 — about the top 3% of each dataset's assertions.
/// When the harness shrinks the scenarios, the depth shrinks with them
/// (floor 10) so the metric keeps measuring the *elite* of the ranking
/// rather than most of the world.
pub fn effective_top_k(scale: f64) -> usize {
    ((TOP_K as f64 * scale).round() as usize).max(10)
}

/// Runs the five-scenario, seven-algorithm comparison. Each scenario is
/// re-simulated `reps` times (paper-equivalent: different crawl windows)
/// and accuracies are averaged.
pub fn fig11(budget: &Budget, reps: usize) -> FigureResult {
    let presets = ScenarioConfig::all_presets();
    let algo_names: Vec<&'static str> = all_finders().iter().map(|f| f.name()).collect();
    let top_k = effective_top_k(budget.twitter_scale);

    let mut fig = FigureResult::new(
        "fig11",
        &format!(
            "top-{top_k} accuracy per algorithm and dataset (scale {:.2})",
            budget.twitter_scale
        ),
        "dataset",
        (1..=presets.len()).map(|i| i as f64).collect(),
    );
    fig.set_xticks(presets.iter().map(|p| p.name.clone()).collect());

    // accs[algo][scenario]
    let mut accs: Vec<Vec<MeanStd>> = vec![vec![MeanStd::new(); presets.len()]; algo_names.len()];
    for (si, preset) in presets.iter().enumerate() {
        let cfg = preset.scaled(budget.twitter_scale);
        let results = run_repeated(
            reps.max(1),
            budget.seed_for("fig11", si),
            |seed| -> Vec<f64> {
                let ds = TwitterDataset::simulate(&cfg, seed).expect("preset validates");
                let apollo = Apollo::new(ApolloConfig {
                    top_k,
                    ..ApolloConfig::default()
                });
                all_finders()
                    .iter()
                    .map(|finder| {
                        apollo
                            .run(&ds, finder.as_ref())
                            .expect("pipeline runs")
                            .top_k_accuracy(top_k)
                    })
                    .collect()
            },
        );
        for rep in results {
            for (ai, acc) in rep.into_iter().enumerate() {
                accs[ai][si].push(acc);
            }
        }
    }
    for (ai, name) in algo_names.iter().enumerate() {
        fig.push_series(name, accs[ai].iter().map(|m| m.mean()).collect());
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_seven_curves_over_five_datasets() {
        let mut b = Budget::fast();
        b.twitter_scale = 0.01;
        let fig = fig11(&b, 1);
        assert_eq!(fig.x.len(), 5);
        assert_eq!(fig.series.len(), 7);
        assert_eq!(fig.xticks.len(), 5);
        for s in &fig.series {
            for &v in &s.y {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", s.label);
            }
        }
    }

    #[test]
    fn em_ext_beats_voting_on_average() {
        let mut b = Budget::fast();
        b.twitter_scale = 0.03;
        let fig = fig11(&b, 2);
        let mean = |label: &str| -> f64 {
            let y = &fig.series(label).unwrap().y;
            y.iter().sum::<f64>() / y.len() as f64
        };
        assert!(
            mean("EM-Ext") > mean("Voting") - 0.02,
            "EM-Ext {:.3} vs Voting {:.3}",
            mean("EM-Ext"),
            mean("Voting")
        );
    }
}
