//! Accuracy-side ablations for the design choices DESIGN.md documents.
//!
//! Timing ablations live in the `socsense-bench` crate; these measure
//! what each choice *buys*:
//!
//! * **M-step shrinkage** — synthetic accuracy across pseudo-counts;
//! * **Initialisation** — the neutral-vs-dep-biased basin question on
//!   both substrates (the evidence behind DESIGN.md §4's discussion);
//! * **Gibbs estimator variant** — the literal Eq. 6 ratio vs the
//!   consistent self-normalised estimator, as error against the exact
//!   bound;
//! * **EM-Social drop mode** — excluding dependent cells vs deleting
//!   dependent claims as silence.

use socsense_baselines::{DropMode, EmExtFinder, EmSocial, FactFinder};
use socsense_core::{
    bound_for_assertions, BoundMethod, EmConfig, GibbsConfig, GibbsEstimator, InitStrategy,
};
use socsense_synth::{empirical_theta, GeneratorConfig, SyntheticDataset};
use socsense_twitter::{ScenarioConfig, TwitterDataset};

use crate::experiments::{strided_assertions, Budget};
use crate::figure::FigureResult;
use crate::metrics::{Confusion, MeanStd};
use crate::runner::run_repeated;

/// Synthetic classification accuracy of EM-Ext across shrinkage
/// pseudo-counts (0 = the paper's exact M-step).
pub fn smoothing_ablation(budget: &Budget) -> FigureResult {
    let pseudo_counts = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0];
    let cfg = GeneratorConfig::estimator_defaults();
    let mut fig = FigureResult::new(
        "ablation-smoothing",
        "EM-Ext accuracy vs M-step shrinkage pseudo-count (synthetic defaults)",
        "pseudo-count",
        pseudo_counts.to_vec(),
    );
    let mut ys = Vec::new();
    for (pi, &s) in pseudo_counts.iter().enumerate() {
        let accs = run_repeated(
            budget.estimator_reps,
            budget.seed_for("abl-smooth", pi),
            |seed| {
                let ds = SyntheticDataset::generate(&cfg, seed).expect("validates");
                let finder = EmExtFinder::new(EmConfig {
                    smoothing: s,
                    init: InitStrategy::DepBiased,
                    ..EmConfig::default()
                });
                let labels = finder.classify(&ds.data).expect("fits");
                Confusion::from_labels(&labels, &ds.truth).accuracy()
            },
        );
        let mut m = MeanStd::new();
        m.extend(accs);
        ys.push(m.mean());
    }
    fig.push_series("EM-Ext accuracy", ys);
    fig
}

/// Initialisation-basin comparison on both substrates: mean EM-Ext
/// quality per `InitStrategy` (accuracy on synthetic, top-10 precision on
/// a Twitter scenario).
pub fn init_ablation(budget: &Budget) -> FigureResult {
    let strategies = [
        ("Auto", InitStrategy::Auto),
        ("ClaimRateBiased", InitStrategy::ClaimRateBiased),
        ("DepBiased", InitStrategy::DepBiased),
    ];
    let mut fig = FigureResult::new(
        "ablation-init",
        "EM-Ext quality per initialisation strategy",
        "strategy",
        (1..=strategies.len()).map(|i| i as f64).collect(),
    );
    fig.set_xticks(strategies.iter().map(|(n, _)| n.to_string()).collect());

    let synth_cfg = GeneratorConfig::estimator_defaults();
    let mut synth_y = Vec::new();
    let mut twitter_y = Vec::new();
    for (pi, &(_, init)) in strategies.iter().enumerate() {
        let em_cfg = EmConfig {
            init,
            ..EmConfig::default()
        };
        let accs = run_repeated(
            budget.estimator_reps,
            budget.seed_for("abl-init-synth", pi),
            |seed| {
                let ds = SyntheticDataset::generate(&synth_cfg, seed).expect("validates");
                let labels = EmExtFinder::new(em_cfg).classify(&ds.data).expect("fits");
                Confusion::from_labels(&labels, &ds.truth).accuracy()
            },
        );
        let mut m = MeanStd::new();
        m.extend(accs);
        synth_y.push(m.mean());

        let scenario = ScenarioConfig::ukraine().scaled(budget.twitter_scale);
        let tops = run_repeated(4, budget.seed_for("abl-init-tw", pi), |seed| {
            let ds = TwitterDataset::simulate(&scenario, seed).expect("validates");
            let data = ds.claim_data();
            let finder = EmExtFinder::new(em_cfg);
            let top = finder.top_k(&data, 10).expect("ranks");
            let hits = top
                .iter()
                .filter(|&&j| ds.truth_value(j) == socsense_twitter::TruthValue::True)
                .count();
            hits as f64 / top.len().max(1) as f64
        });
        let mut m = MeanStd::new();
        m.extend(tops);
        twitter_y.push(m.mean());
    }
    fig.push_series("synthetic accuracy", synth_y);
    fig.push_series("twitter top-10 precision", twitter_y);
    fig
}

/// Bias of the Gibbs estimator variants against the exact bound, as mean
/// absolute error over synthetic datasets.
pub fn gibbs_estimator_ablation(budget: &Budget) -> FigureResult {
    let cfg = GeneratorConfig::paper_defaults(); // n = 20: exact is cheap
    let variants = [
        ("SelfNormalized", GibbsEstimator::SelfNormalized),
        ("PaperRatio", GibbsEstimator::PaperRatio),
    ];
    let mut fig = FigureResult::new(
        "ablation-gibbs",
        "mean |approx - exact| bound error per Gibbs estimator variant",
        "variant",
        (1..=variants.len()).map(|i| i as f64).collect(),
    );
    fig.set_xticks(variants.iter().map(|(n, _)| n.to_string()).collect());
    let mut ys = Vec::new();
    for (pi, &(_, estimator)) in variants.iter().enumerate() {
        let budget = *budget;
        let cfg = cfg.clone();
        let errs = run_repeated(
            budget.bound_reps,
            budget.seed_for("abl-gibbs", pi),
            move |seed| {
                let ds = SyntheticDataset::generate(&cfg, seed).expect("validates");
                let theta = empirical_theta(&ds);
                let cols = strided_assertions(ds.assertion_count(), budget.bound_assertions);
                let exact = bound_for_assertions(&ds.data, &theta, &BoundMethod::Exact, &cols)
                    .expect("n = 20 in range");
                let gibbs_cfg = GibbsConfig {
                    estimator,
                    seed: seed ^ 0xabcd,
                    ..budget.gibbs
                };
                let approx =
                    bound_for_assertions(&ds.data, &theta, &BoundMethod::Gibbs(gibbs_cfg), &cols)
                        .expect("gibbs runs");
                (approx.error - exact.error).abs()
            },
        );
        let mut m = MeanStd::new();
        m.extend(errs);
        ys.push(m.mean());
    }
    fig.push_series("mean abs deviation", ys);
    fig
}

/// EM-Social's two readings of "discard dependent claims": exclude the
/// cells from the likelihood vs delete the claims (count them as
/// silence).
pub fn drop_mode_ablation(budget: &Budget) -> FigureResult {
    let cfg = GeneratorConfig::estimator_defaults();
    let modes = [
        ("ExcludeCells", DropMode::ExcludeCells),
        ("AsSilence", DropMode::AsSilence),
    ];
    let mut fig = FigureResult::new(
        "ablation-dropmode",
        "EM-Social accuracy per dependent-claim drop mode (synthetic defaults)",
        "mode",
        (1..=modes.len()).map(|i| i as f64).collect(),
    );
    fig.set_xticks(modes.iter().map(|(n, _)| n.to_string()).collect());
    let mut ys = Vec::new();
    for (pi, &(_, mode)) in modes.iter().enumerate() {
        let accs = run_repeated(
            budget.estimator_reps,
            budget.seed_for("abl-drop", pi),
            |seed| {
                let ds = SyntheticDataset::generate(&cfg, seed).expect("validates");
                let finder = EmSocial::new(EmConfig::default(), mode);
                let labels = finder.classify(&ds.data).expect("fits");
                Confusion::from_labels(&labels, &ds.truth).accuracy()
            },
        );
        let mut m = MeanStd::new();
        m.extend(accs);
        ys.push(m.mean());
    }
    fig.push_series("EM-Social accuracy", ys);
    fig
}

/// Runs all four accuracy ablations.
pub fn run_all(budget: &Budget) -> Vec<FigureResult> {
    vec![
        smoothing_ablation(budget),
        init_ablation(budget),
        gibbs_estimator_ablation(budget),
        drop_mode_ablation(budget),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Budget {
        let mut b = Budget::fast();
        b.estimator_reps = 4;
        b.bound_reps = 3;
        b.bound_assertions = 6;
        b.twitter_scale = 0.02;
        b.gibbs.min_samples = 150;
        b.gibbs.max_samples = 300;
        b
    }

    #[test]
    fn all_ablations_produce_well_formed_figures() {
        for fig in run_all(&tiny()) {
            assert!(!fig.series.is_empty(), "{}", fig.id);
            for s in &fig.series {
                assert_eq!(s.y.len(), fig.x.len());
                assert!(
                    s.y.iter().all(|v| v.is_finite() && *v >= 0.0),
                    "{}/{}: {:?}",
                    fig.id,
                    s.label,
                    s.y
                );
            }
        }
    }

    #[test]
    fn gibbs_deviation_is_small_for_both_variants() {
        let fig = gibbs_estimator_ablation(&tiny());
        let y = &fig.series("mean abs deviation").unwrap().y;
        // Both estimators stay within a few points of exact on average;
        // the consistent one should not be worse than the literal ratio.
        for &v in y {
            assert!(v < 0.08, "deviation {v}");
        }
    }
}
