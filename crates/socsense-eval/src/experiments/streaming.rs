//! Streaming-estimator characterisation: what warm-starting buys.
//!
//! Replays generated claim logs in batches through
//! [`socsense_core::StreamingEstimator`] and, per batch index, reports
//! the mean classification accuracy so far, the EM iterations the warm
//! refit needed, and the iterations a cold refit on the same prefix would
//! have needed. The accuracy curve shows estimation firming up as the
//! stream lengthens; the iteration curves quantify the recursive
//! estimator's saving.

use socsense_core::{classify, ClaimData, EmConfig, EmExt, StreamingEstimator};
use socsense_synth::{GeneratorConfig, SyntheticDataset};

use crate::experiments::Budget;
use crate::figure::FigureResult;
use crate::metrics::{Confusion, MeanStd};
use crate::runner::run_repeated;

/// Batches each replayed stream is split into.
pub const BATCHES: usize = 6;

/// Runs the replay over `estimator_reps` generated streams.
pub fn streaming(budget: &Budget) -> FigureResult {
    let cfg = GeneratorConfig::estimator_defaults();
    let xs: Vec<f64> = (1..=BATCHES).map(|b| b as f64).collect();
    let mut fig = FigureResult::new(
        "streaming",
        "recursive estimation over a claim stream (warm vs cold refits)",
        "batch",
        xs,
    );

    // Per repetition: per batch (accuracy, warm iters, cold iters).
    let samples = run_repeated(
        budget.estimator_reps,
        budget.seed_for("streaming", 0),
        |seed| -> Vec<[f64; 3]> {
            let ds = SyntheticDataset::generate(&cfg, seed).expect("validated config");
            let mut est =
                StreamingEstimator::new(cfg.n, cfg.m, ds.graph.clone(), EmConfig::default())
                    .expect("valid shape");
            let chunk = ds.claims.len().div_ceil(BATCHES).max(1);
            let mut out = Vec::with_capacity(BATCHES);
            let mut prefix = Vec::new();
            for batch in ds.claims.chunks(chunk) {
                est.ingest(batch).expect("ids in range");
                let (fit, stats) = est.estimate_with_stats().expect("refit succeeds");
                let labels = classify(&fit.posterior);
                let acc = Confusion::from_labels(&labels, &ds.truth).accuracy();
                // Cold baseline on the same prefix.
                prefix.extend_from_slice(batch);
                let data = ClaimData::from_claims(cfg.n, cfg.m, &prefix, &ds.graph);
                let cold = EmExt::new(EmConfig::default())
                    .fit(&data)
                    .expect("fit succeeds");
                out.push([acc, stats.iterations as f64, cold.iterations as f64]);
            }
            while out.len() < BATCHES {
                let last = *out.last().expect("at least one batch");
                out.push(last);
            }
            out
        },
    );

    let mut acc: Vec<[MeanStd; 3]> = vec![Default::default(); BATCHES];
    for rep in samples {
        for (b, vals) in rep.into_iter().enumerate() {
            for (k, v) in vals.into_iter().enumerate() {
                acc[b][k].push(v);
            }
        }
    }
    fig.push_series("accuracy", acc.iter().map(|a| a[0].mean()).collect());
    fig.push_series("warm iterations", acc.iter().map(|a| a[1].mean()).collect());
    fig.push_series("cold iterations", acc.iter().map(|a| a[2].mean()).collect());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_refits_save_iterations_and_accuracy_firms_up() {
        let mut b = Budget::fast();
        b.estimator_reps = 6;
        let fig = streaming(&b);
        assert_eq!(fig.x.len(), BATCHES);
        let warm = &fig.series("warm iterations").unwrap().y;
        let cold = &fig.series("cold iterations").unwrap().y;
        // From the second batch on, warm refits are (weakly) cheaper on
        // average.
        let warm_tail: f64 = warm[1..].iter().sum();
        let cold_tail: f64 = cold[1..].iter().sum();
        assert!(
            warm_tail <= cold_tail + 1e-9,
            "warm {warm:?} vs cold {cold:?}"
        );
        // Accuracy does not collapse as the stream accumulates.
        let accs = &fig.series("accuracy").unwrap().y;
        assert!(
            accs.last().unwrap() >= &(accs[0] - 0.05),
            "accuracy trace {accs:?}"
        );
    }
}
