//! Figures 7–10 — EM-Ext vs EM vs EM-Social vs the optimal bound.
//!
//! Every sweep point runs `estimator_reps` experiments. Each experiment
//! generates a Sec. V-A dataset, fits the three EM variants, thresholds
//! their posteriors at 0.5, and tallies accuracy plus FP/FN rates against
//! the generator's ground truth. The *Optimal* curve is `1 − Err` where
//! `Err` is the Bayes-risk bound under the empirically measured `θ`
//! (exact for small `n`, Gibbs beyond); its FP/FN rates are the bound's
//! conditional components `FP/(1−z)` and `FN/z`, matching the
//! per-false-assertion / per-true-assertion normalisation of the
//! algorithm curves.

use socsense_baselines::{EmExtFinder, EmIndependent, EmSocial, FactFinder};
use socsense_core::{bound_for_assertions, BoundMethod, EmConfig, InitStrategy};
use socsense_matrix::logprob::odds_to_prob;
use socsense_synth::{empirical_theta, GeneratorConfig, IntInterval, Interval, SyntheticDataset};

use crate::experiments::{strided_assertions, Budget};
use crate::figure::FigureResult;
use crate::metrics::{Confusion, MeanStd};
use crate::runner::run_repeated;

/// The two panels of one estimator figure: (a) accuracy and (b) FP/FN
/// rates, exactly as the paper splits Figs. 7–10.
#[derive(Debug, Clone)]
pub struct EstimatorFigure {
    /// Panel (a): accuracy per algorithm plus the optimal curve.
    pub accuracy: FigureResult,
    /// Panel (b): false-positive and false-negative rates.
    pub rates: FigureResult,
}

/// Per-experiment outcome: (accuracy, fp rate, fn rate) per algorithm,
/// ordered EM-Ext, EM, EM-Social, Optimal.
type Sample = [[f64; 3]; 4];

fn one_experiment(cfg: &GeneratorConfig, budget: &Budget, seed: u64) -> Sample {
    let ds = SyntheticDataset::generate(cfg, seed).expect("validated config");
    // The Sec. V-A generator keeps dependent claims truth-leaning at every
    // sweep point of Figs. 7–10 (p_depT odds in [1.1, 2.0] and never below
    // the label-anchoring direction), so the EM variants start from the
    // DepBiased initialisation that encodes the same weak prior — the
    // regime the paper's discussion presumes. See DESIGN.md §4 "EM
    // details"; the Twitter experiments (Fig. 11) use the general-purpose
    // Auto default instead.
    let em_cfg = EmConfig {
        init: InitStrategy::DepBiased,
        ..EmConfig::default()
    };
    let ext = EmExtFinder::new(em_cfg);
    let indep = EmIndependent::new(em_cfg);
    let social = EmSocial::new(em_cfg, Default::default());
    let finders: [&dyn FactFinder; 3] = [&ext, &indep, &social];
    let mut out: Sample = Default::default();
    for (k, finder) in finders.iter().enumerate() {
        let labels = finder.classify(&ds.data).expect("estimator runs");
        let c = Confusion::from_labels(&labels, &ds.truth);
        out[k] = [
            c.accuracy(),
            c.false_positive_rate(),
            c.false_negative_rate(),
        ];
    }
    // Optimal curve from the bound under the measured θ.
    let theta = empirical_theta(&ds);
    let cols = strided_assertions(ds.assertion_count(), budget.bound_assertions);
    let mut gibbs = budget.gibbs;
    gibbs.seed = seed ^ 0x5ca1_ab1e;
    let method = BoundMethod::Auto {
        exact_max_sources: 20,
        gibbs,
    };
    let bound = bound_for_assertions(&ds.data, &theta, &method, &cols).expect("bound applies");
    let z = theta.z().clamp(1e-9, 1.0 - 1e-9);
    out[3] = [
        1.0 - bound.error,
        bound.false_positive / (1.0 - z),
        bound.false_negative / z,
    ];
    out
}

const ALGOS: [&str; 4] = ["EM-Ext", "EM", "EM-Social", "Optimal"];

fn sweep(
    id: &str,
    title: &str,
    xlabel: &str,
    xs: Vec<f64>,
    budget: &Budget,
    make_config: impl Fn(f64) -> GeneratorConfig,
) -> EstimatorFigure {
    // means[point][algo][metric]
    let mut means: Vec<[[MeanStd; 3]; 4]> = Vec::with_capacity(xs.len());
    for (pi, &x) in xs.iter().enumerate() {
        let cfg = make_config(x);
        let samples = run_repeated(budget.estimator_reps, budget.seed_for(id, pi), |seed| {
            one_experiment(&cfg, budget, seed)
        });
        let mut acc: [[MeanStd; 3]; 4] = Default::default();
        for s in samples {
            for k in 0..4 {
                for metric in 0..3 {
                    acc[k][metric].push(s[k][metric]);
                }
            }
        }
        means.push(acc);
    }

    let mut accuracy = FigureResult::new(id, &format!("{title} — accuracy"), xlabel, xs.clone());
    for (k, name) in ALGOS.iter().enumerate() {
        accuracy.push_series(name, means.iter().map(|p| p[k][0].mean()).collect());
    }
    let mut rates = FigureResult::new(
        &format!("{id}b"),
        &format!("{title} — FP/FN rates"),
        xlabel,
        xs,
    );
    for (k, name) in ALGOS.iter().enumerate() {
        rates.push_series(
            &format!("{name} FP"),
            means.iter().map(|p| p[k][1].mean()).collect(),
        );
    }
    for (k, name) in ALGOS.iter().enumerate() {
        rates.push_series(
            &format!("{name} FN"),
            means.iter().map(|p| p[k][2].mean()).collect(),
        );
    }
    EstimatorFigure { accuracy, rates }
}

/// Fig. 7 — vary the number of sources `n ∈ {20, 25, ..., 50}`.
pub fn fig7(budget: &Budget) -> EstimatorFigure {
    sweep(
        "fig7",
        "estimators vs number of sources",
        "n",
        (0..=6).map(|k| (20 + 5 * k) as f64).collect(),
        budget,
        |n| GeneratorConfig {
            n: n as u32,
            ..GeneratorConfig::estimator_defaults()
        },
    )
}

/// Fig. 8 — vary the number of assertions `m ∈ {10, ..., 100}` with
/// `n = 100`.
pub fn fig8(budget: &Budget) -> EstimatorFigure {
    sweep(
        "fig8",
        "estimators vs number of assertions (n = 100)",
        "m",
        (1..=10).map(|k| (10 * k) as f64).collect(),
        budget,
        |m| GeneratorConfig {
            n: 100,
            m: m as u32,
            opportunities: m as u32,
            ..GeneratorConfig::estimator_defaults()
        },
    )
}

/// Fig. 9 — vary the dependency-tree count `τ ∈ 1..=11`.
pub fn fig9(budget: &Budget) -> EstimatorFigure {
    sweep(
        "fig9",
        "estimators vs dependency trees",
        "tau",
        (1..=11).map(|t| t as f64).collect(),
        budget,
        |tau| GeneratorConfig {
            tau: IntInterval::fixed(tau as u32),
            ..GeneratorConfig::estimator_defaults()
        },
    )
}

/// Fig. 10 — vary the dependent-claim odds `p_depT/(1−p_depT)` from 1.1
/// to 2.0 with independent odds pinned at 2.
pub fn fig10(budget: &Budget) -> EstimatorFigure {
    sweep(
        "fig10",
        "estimators vs dependent-claim informativeness",
        "depT odds",
        (0..10).map(|k| 1.1 + 0.1 * k as f64).collect(),
        budget,
        |odds| GeneratorConfig {
            p_indep_t: Interval::fixed(odds_to_prob(2.0)),
            p_dep_t: Interval::fixed(odds_to_prob(odds)),
            ..GeneratorConfig::estimator_defaults()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Budget {
        let mut b = Budget::fast();
        b.estimator_reps = 6;
        b.bound_assertions = 6;
        b.gibbs.min_samples = 150;
        b.gibbs.max_samples = 300;
        b
    }

    #[test]
    fn fig7_has_four_accuracy_curves_bounded_by_optimal() {
        let mut b = tiny();
        b.estimator_reps = 8;
        let fig = fig7(&b);
        assert_eq!(fig.accuracy.series.len(), 4);
        assert_eq!(fig.rates.series.len(), 8);
        let opt = &fig.accuracy.series("Optimal").unwrap().y;
        let ext = &fig.accuracy.series("EM-Ext").unwrap().y;
        for i in 0..fig.accuracy.x.len() {
            assert!((0.0..=1.0).contains(&ext[i]));
            // Optimal dominates on average; allow sampling slack.
            assert!(
                ext[i] <= opt[i] + 0.06,
                "EM-Ext {:.3} above optimal {:.3} at x={}",
                ext[i],
                opt[i],
                fig.accuracy.x[i]
            );
        }
    }

    #[test]
    fn fig9_em_ext_dominates_em_on_average() {
        let mut b = tiny();
        b.estimator_reps = 10;
        let fig = fig9(&b);
        let ext: f64 = fig.accuracy.series("EM-Ext").unwrap().y.iter().sum();
        let em: f64 = fig.accuracy.series("EM").unwrap().y.iter().sum();
        assert!(
            ext >= em - 0.05,
            "mean EM-Ext accuracy {ext:.3} below EM {em:.3}"
        );
    }

    #[test]
    fn fig8_and_fig10_produce_full_sweeps() {
        let mut b = tiny();
        b.estimator_reps = 2;
        let f8 = fig8(&b);
        assert_eq!(f8.accuracy.x.len(), 10);
        let f10 = fig10(&b);
        assert_eq!(f10.accuracy.x.len(), 10);
        for fig in [&f8.accuracy, &f10.accuracy] {
            for s in &fig.series {
                assert!(s.y.iter().all(|v| v.is_finite()));
            }
        }
    }
}
