//! Fig. 6 — bound computation time, exact vs Gibbs.
//!
//! The exact enumeration is exponential in `n` (pruning delays but does
//! not remove the blow-up); the Gibbs approximation stays flat. We time
//! the mean per-assertion bound on one generated dataset per `n` and
//! report milliseconds.

use std::time::Instant;

use socsense_core::{bound_for_assertions, BoundMethod};
use socsense_synth::{empirical_theta, GeneratorConfig, SyntheticDataset};

use crate::experiments::{strided_assertions, Budget};
use crate::figure::FigureResult;

/// Largest `n` the exact timing column attempts (past ~25 a single point
/// dominates the whole harness runtime).
pub const EXACT_TIME_LIMIT: u32 = 25;

/// Runs the timing sweep over `n ∈ {5, 10, 15, 20, 25}`.
pub fn fig6(budget: &Budget) -> FigureResult {
    let xs: Vec<f64> = (1..=5).map(|k| (5 * k) as f64).collect();
    let mut fig = FigureResult::new(
        "fig6",
        "bound computation time (ms), exact vs Gibbs",
        "n",
        xs.clone(),
    );
    let mut exact_ms = Vec::with_capacity(xs.len());
    let mut gibbs_ms = Vec::with_capacity(xs.len());
    for (pi, &x) in xs.iter().enumerate() {
        let n = x as u32;
        let cfg = GeneratorConfig {
            n,
            ..GeneratorConfig::paper_defaults()
        };
        let ds = SyntheticDataset::generate(&cfg, budget.seed_for("fig6", pi))
            .expect("validated config");
        let theta = empirical_theta(&ds);
        let cols = strided_assertions(ds.assertion_count(), budget.bound_assertions);

        if n <= EXACT_TIME_LIMIT {
            let t0 = Instant::now();
            bound_for_assertions(&ds.data, &theta, &BoundMethod::Exact, &cols)
                .expect("exact bound in range");
            exact_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        } else {
            exact_ms.push(f64::NAN);
        }

        let mut gibbs = budget.gibbs;
        gibbs.seed = budget.seed_for("fig6-gibbs", pi);
        let t0 = Instant::now();
        bound_for_assertions(&ds.data, &theta, &BoundMethod::Gibbs(gibbs), &cols)
            .expect("gibbs bound");
        gibbs_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    fig.push_series("exact (ms)", exact_ms);
    fig.push_series("gibbs (ms)", gibbs_ms);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_sweep_completes_with_positive_times() {
        let mut b = Budget::fast();
        b.bound_assertions = 4;
        b.gibbs.min_samples = 100;
        b.gibbs.max_samples = 200;
        let fig = fig6(&b);
        assert_eq!(fig.x.len(), 5);
        let exact = &fig.series("exact (ms)").unwrap().y;
        let gibbs = &fig.series("gibbs (ms)").unwrap().y;
        assert!(exact.iter().all(|t| t.is_nan() || *t >= 0.0));
        assert!(gibbs.iter().all(|t| *t >= 0.0));
    }
}
