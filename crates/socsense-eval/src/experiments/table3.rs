//! Table III — summary statistics of the five (simulated) Twitter
//! datasets, printed next to the paper's published counts.

use serde::{Deserialize, Serialize};
use std::fmt;

use socsense_twitter::{DatasetSummary, ScenarioConfig, TwitterDataset};

use crate::experiments::Budget;

/// The paper's published Table III counts for one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperRow {
    /// #Assertions.
    pub assertions: usize,
    /// #Sources.
    pub sources: usize,
    /// #Total Claims.
    pub total_claims: usize,
    /// #Original Claims.
    pub original_claims: usize,
}

/// The five published rows, in preset order.
pub const PAPER_ROWS: [PaperRow; 5] = [
    PaperRow {
        assertions: 3703,
        sources: 5403,
        total_claims: 7192,
        original_claims: 4242,
    },
    PaperRow {
        assertions: 2795,
        sources: 4816,
        total_claims: 6188,
        original_claims: 3079,
    },
    PaperRow {
        assertions: 2873,
        sources: 7764,
        total_claims: 9426,
        original_claims: 5831,
    },
    PaperRow {
        assertions: 3537,
        sources: 5174,
        total_claims: 7148,
        original_claims: 4332,
    },
    PaperRow {
        assertions: 23513,
        sources: 38844,
        total_claims: 41249,
        original_claims: 38794,
    },
];

/// One generated-vs-paper comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Simulated summary.
    pub simulated: DatasetSummary,
    /// Published counts.
    pub paper: PaperRow,
    /// Scale factor the simulation ran at.
    pub scale: f64,
}

/// The full table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per scenario.
    pub rows: Vec<Table3Row>,
}

/// Simulates all five presets at `budget.twitter_scale` and pairs each
/// summary with the paper's row.
pub fn run(budget: &Budget) -> Table3 {
    let rows = ScenarioConfig::all_presets()
        .into_iter()
        .zip(PAPER_ROWS)
        .enumerate()
        .map(|(i, (preset, paper))| {
            let cfg = preset.scaled(budget.twitter_scale);
            let ds = TwitterDataset::simulate(&cfg, budget.seed_for("table3", i))
                .expect("preset validates");
            Table3Row {
                simulated: ds.summary(),
                paper,
                scale: budget.twitter_scale,
            }
        })
        .collect();
    Table3 { rows }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Table III — dataset summaries (simulated at scale {:.2} | paper full scale) ==",
            self.rows.first().map(|r| r.scale).unwrap_or(1.0)
        )?;
        writeln!(
            f,
            "{:<14} {:>11} {:>11} {:>12} {:>14} {:>10} | {:>9} {:>9} {:>9} {:>9}",
            "dataset",
            "assertions",
            "sources",
            "claims",
            "orig claims",
            "orig %",
            "p.assert",
            "p.sources",
            "p.claims",
            "p.orig%"
        )?;
        for r in &self.rows {
            let s = &r.simulated;
            let paper_ratio = r.paper.original_claims as f64 / r.paper.total_claims as f64 * 100.0;
            writeln!(
                f,
                "{:<14} {:>11} {:>11} {:>12} {:>14} {:>9.1}% | {:>9} {:>9} {:>9} {:>8.1}%",
                s.name,
                s.assertions,
                s.sources,
                s.total_claims,
                s.original_claims,
                s.original_ratio() * 100.0,
                r.paper.assertions,
                r.paper.sources,
                r.paper.total_claims,
                paper_ratio
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_five_rows_with_plausible_ratios() {
        // Cascades thin out below ~5% scale (fewer seeds, smaller hubs),
        // so check the calibration at the scale it was tuned for.
        let mut b = Budget::fast();
        b.twitter_scale = 0.05;
        let t = run(&b);
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            let paper_ratio = r.paper.original_claims as f64 / r.paper.total_claims as f64;
            let sim_ratio = r.simulated.original_ratio();
            assert!(
                (sim_ratio - paper_ratio).abs() < 0.25,
                "{}: simulated {:.2} vs paper {:.2}",
                r.simulated.name,
                sim_ratio,
                paper_ratio
            );
        }
    }

    #[test]
    fn rendering_names_every_scenario() {
        let mut b = Budget::fast();
        b.twitter_scale = 0.01;
        let text = run(&b).to_string();
        for name in [
            "Ukraine",
            "Kirkuk",
            "Superbug",
            "LA Marathon",
            "Paris Attack",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
