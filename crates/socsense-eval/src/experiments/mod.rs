//! One regenerator per table / figure of the paper's evaluation section.
//!
//! Every experiment takes a [`Budget`] controlling repetitions and
//! sampler effort. [`Budget::fast`] (the default) is sized for a laptop
//! core and preserves every qualitative shape; [`Budget::paper`] matches
//! the paper's repetition counts (20 for the bound figures, 300 for the
//! estimator figures) and is what `EXPERIMENTS.md` numbers should cite
//! when regenerating on bigger hardware.

pub mod ablations;
pub mod bound_figures;
pub mod discover;
pub mod estimator_figures;
pub mod fig11;
pub mod fig6;
pub mod mismatch;
pub mod streaming;
pub mod table1;
pub mod table3;

use serde::{Deserialize, Serialize};
use socsense_core::GibbsConfig;

/// Effort knobs shared by every experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Independent repetitions per sweep point (bound figures).
    pub bound_reps: usize,
    /// Independent repetitions per sweep point (estimator figures).
    pub estimator_reps: usize,
    /// Gibbs sampler settings for approximate bounds.
    pub gibbs: GibbsConfig,
    /// At most this many assertion columns enter each per-dataset bound
    /// average (evenly strided); `usize::MAX` disables subsampling.
    pub bound_assertions: usize,
    /// Scenario scale factor for the Twitter experiments (1.0 = the full
    /// Table III sizes).
    pub twitter_scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Budget {
    /// Laptop-sized budget preserving all qualitative shapes.
    pub fn fast() -> Self {
        Self {
            bound_reps: 10,
            estimator_reps: 20,
            gibbs: GibbsConfig {
                burn_in: 60,
                thin: 1,
                min_samples: 300,
                max_samples: 1500,
                check_every: 150,
                tol: 2e-3,
                seed: 0,
                ..GibbsConfig::default()
            },
            bound_assertions: 16,
            twitter_scale: 0.05,
            seed: 7,
        }
    }

    /// The paper's repetition counts (20 bound / 300 estimator runs,
    /// full-scale Twitter scenarios). Expect hours on one core.
    pub fn paper() -> Self {
        Self {
            bound_reps: 20,
            estimator_reps: 300,
            gibbs: GibbsConfig::default(),
            bound_assertions: usize::MAX,
            twitter_scale: 1.0,
            seed: 7,
        }
    }

    /// Derives a per-experiment seed so sweeps do not share RNG streams.
    pub(crate) fn seed_for(&self, experiment: &str, point: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in experiment.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h ^ ((point as u64) << 32)
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::fast()
    }
}

/// Evenly strided subsample of `0..m`, at most `k` items, always
/// non-empty for `m >= 1`.
pub(crate) fn strided_assertions(m: usize, k: usize) -> Vec<u32> {
    if m == 0 {
        return Vec::new();
    }
    let take = k.clamp(1, m);
    (0..take).map(|i| ((i * m) / take) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_differ_in_effort() {
        let fast = Budget::fast();
        let paper = Budget::paper();
        assert!(fast.estimator_reps < paper.estimator_reps);
        assert!(fast.twitter_scale < paper.twitter_scale);
    }

    #[test]
    fn seeds_differ_per_experiment_and_point() {
        let b = Budget::fast();
        assert_ne!(b.seed_for("fig3", 0), b.seed_for("fig4", 0));
        assert_ne!(b.seed_for("fig3", 0), b.seed_for("fig3", 1));
        assert_eq!(b.seed_for("fig3", 2), b.seed_for("fig3", 2));
    }

    #[test]
    fn strided_subsample_covers_range() {
        assert_eq!(strided_assertions(10, 100), (0..10).collect::<Vec<u32>>());
        let s = strided_assertions(100, 4);
        assert_eq!(s, vec![0, 25, 50, 75]);
        assert_eq!(strided_assertions(5, 0), vec![0]);
        assert!(strided_assertions(0, 4).is_empty());
    }
}
