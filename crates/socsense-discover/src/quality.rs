//! Edge-recovery quality against a known ground-truth graph.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Precision/recall of a recovered directed edge set against the truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeQuality {
    /// Ground-truth edge count.
    pub true_edges: usize,
    /// Recovered edge count.
    pub discovered_edges: usize,
    /// Recovered edges present in the truth (exact direction match).
    pub true_positives: usize,
    /// `true_positives / discovered_edges` (vacuously 1.0 when nothing
    /// was recovered: abstention makes no false claims).
    pub precision: f64,
    /// `true_positives / true_edges` (1.0 when the truth is empty).
    pub recall: f64,
}

impl EdgeQuality {
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision;
        let r = self.recall;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Compares a recovered `(follower, followee)` edge set against the
/// ground truth. Duplicate edges collapse before counting.
pub fn edge_quality(
    discovered: impl IntoIterator<Item = (u32, u32)>,
    truth: impl IntoIterator<Item = (u32, u32)>,
) -> EdgeQuality {
    let discovered: BTreeSet<(u32, u32)> = discovered.into_iter().collect();
    let truth: BTreeSet<(u32, u32)> = truth.into_iter().collect();
    let true_positives = discovered.intersection(&truth).count();
    let precision = if discovered.is_empty() {
        1.0
    } else {
        true_positives as f64 / discovered.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        true_positives as f64 / truth.len() as f64
    };
    EdgeQuality {
        true_edges: truth.len(),
        discovered_edges: discovered.len(),
        true_positives,
        precision,
        recall,
    }
}
