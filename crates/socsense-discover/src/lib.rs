// detlint: contract = deterministic
//! Dependency discovery: infer the source-dependency graph `D̂` from a
//! timestamped claim log alone.
//!
//! The paper's EM-Ext assumes the dependency matrix `D` is *given*
//! (follower graph + retweet timestamps). In a real deployment it is
//! not. This crate recovers a sparse directed dependency graph from the
//! claim log via three composable signal extractors, each a z-score
//! against an explicit null model:
//!
//! 1. **Copy-lag signatures** — a who-spoke-first sign test plus a
//!    windowed lag count tested against a permutation null that re-pairs
//!    the two sources' claim times (destroying per-assertion alignment
//!    while preserving both marginal time distributions);
//! 2. **Co-occurrence lift** — shared-claim count against a
//!    uniform-random-subset independence null over the active columns;
//! 3. **Error correlation** — the same lift restricted to *rare*
//!    assertions (support at or below a quantile cutoff), because
//!    agreement on claims almost nobody makes is far stronger dependence
//!    evidence than agreement on popular, probably-true ones.
//!
//! Scores combine linearly and a fixed-order acceptance pass with a
//! marginal-coverage rule emits a [`Discovery`] whose
//! [`FollowerGraph`](socsense_graph::FollowerGraph) plugs straight into
//! `ClaimData::from_claims`. Scoring is parallel over candidate pairs
//! using the workspace's fixed-chunk helpers; every per-pair computation
//! is a pure function of the immutable profile + config, so results are
//! bit-identical at every thread count. See `DESIGN.md` §13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod discover;
mod profile;
mod quality;
mod signals;

pub use config::{DiscoverConfig, DiscoverError, LagWindow};
pub use discover::{
    discover_dependencies, discover_dependencies_par, discover_dependencies_traced, DiscoverStats,
    DiscoveredEdge, Discovery,
};
pub use quality::{edge_quality, EdgeQuality};
