//! Deterministic claim-log profile: per-source earliest-claim rows,
//! per-assertion supports, and candidate-pair enumeration.

use std::collections::BTreeMap;

use socsense_graph::TimedClaim;

use crate::config::{DiscoverConfig, DiscoverError};

/// Index built once over the claim log; everything downstream reads it
/// immutably, which is what makes the parallel scoring pass trivially
/// deterministic.
#[derive(Debug)]
pub(crate) struct ClaimProfile {
    /// Per source, `(assertion, earliest claim time)` sorted by assertion.
    pub rows: Vec<Vec<(u32, u64)>>,
    /// Per assertion, the number of distinct claiming sources.
    pub support: Vec<u32>,
    /// Number of assertions with at least one claim.
    pub active_assertions: usize,
    /// Columns with support `<= rare_cutoff` count as *rare* for the
    /// error-correlation signal (derived from `rare_quantile`).
    pub rare_cutoff: u32,
    /// Number of rare active columns.
    pub rare_assertions: usize,
    /// Per source, the number of rare assertions it claimed.
    pub rare_counts: Vec<u32>,
    /// Per source, `(first, last)` claim time (0, 0 for silent sources).
    pub spans: Vec<(u64, u64)>,
}

impl ClaimProfile {
    /// Builds the profile. Repeated claims by the same source on the same
    /// assertion collapse to the earliest time, matching
    /// `socsense_graph::build_matrices`.
    pub fn build(
        n: u32,
        m: u32,
        claims: &[TimedClaim],
        cfg: &DiscoverConfig,
    ) -> Result<Self, DiscoverError> {
        let mut first_claim: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for c in claims {
            if c.source >= n || c.assertion >= m {
                return Err(DiscoverError::ClaimOutOfBounds {
                    source: c.source,
                    assertion: c.assertion,
                    n,
                    m,
                });
            }
            first_claim
                .entry((c.source, c.assertion))
                .and_modify(|t| *t = (*t).min(c.time))
                .or_insert(c.time);
        }

        let mut rows: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n as usize];
        let mut support = vec![0u32; m as usize];
        for (&(source, assertion), &time) in &first_claim {
            rows[source as usize].push((assertion, time));
            support[assertion as usize] += 1;
        }

        let mut active_supports: Vec<u32> = support.iter().copied().filter(|&s| s > 0).collect();
        active_supports.sort_unstable();
        let active_assertions = active_supports.len();
        let rare_cutoff = if active_supports.is_empty() {
            0
        } else {
            let idx = ((active_supports.len() - 1) as f64 * cfg.rare_quantile).floor() as usize;
            active_supports[idx]
        };
        let rare_assertions = active_supports
            .iter()
            .filter(|&&s| s <= rare_cutoff)
            .count();

        let mut rare_counts = vec![0u32; n as usize];
        for (source, row) in rows.iter().enumerate() {
            rare_counts[source] = row
                .iter()
                .filter(|&&(a, _)| support[a as usize] <= rare_cutoff)
                .count() as u32;
        }

        let spans = rows
            .iter()
            .map(|row| {
                let lo = row.iter().map(|&(_, t)| t).min().unwrap_or(0);
                let hi = row.iter().map(|&(_, t)| t).max().unwrap_or(0);
                (lo, hi)
            })
            .collect();

        Ok(Self {
            rows,
            support,
            active_assertions,
            rare_cutoff,
            rare_assertions,
            rare_counts,
            spans,
        })
    }

    /// How much the two sources' activity spans interleave: overlap
    /// length over the shorter span, in `[0, 1]`. Pairwise ordering
    /// carries no dependence information when two sources were simply
    /// active at different times — every shared claim is then ordered
    /// the same way regardless of who copied whom — so the sign test is
    /// deflated by this factor.
    pub fn interleave(&self, a: u32, b: u32) -> f64 {
        let (lo_a, hi_a) = self.spans[a as usize];
        let (lo_b, hi_b) = self.spans[b as usize];
        let overlap = hi_a.min(hi_b).saturating_sub(lo_a.max(lo_b));
        let shorter = (hi_a - lo_a).min(hi_b - lo_b);
        if shorter == 0 {
            // A single-instant span either sits inside the other span
            // (full interleave) or outside it (none).
            return if lo_a.max(lo_b) <= hi_a.min(hi_b) {
                1.0
            } else {
                0.0
            };
        }
        (overlap as f64 / shorter as f64).min(1.0)
    }

    /// Enumerates candidate pairs `(a, b)` with `a < b`: pairs that share
    /// at least `min_shared` assertions whose support is at most
    /// `max_pair_support`. Returned sorted by `(a, b)` — the fixed order
    /// every later pass (parallel chunking included) works in.
    pub fn candidate_pairs(&self, cfg: &DiscoverConfig) -> Vec<(u32, u32)> {
        let mut columns: Vec<Vec<u32>> = vec![Vec::new(); self.support.len()];
        for (source, row) in self.rows.iter().enumerate() {
            for &(assertion, _) in row {
                let s = self.support[assertion as usize];
                if s >= 2 && s <= cfg.max_pair_support {
                    columns[assertion as usize].push(source as u32);
                }
            }
        }
        let mut shared: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        for sources in &columns {
            for (i, &a) in sources.iter().enumerate() {
                for &b in &sources[i + 1..] {
                    *shared.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        shared
            .into_iter()
            .filter(|&(_, count)| count >= cfg.min_shared)
            .map(|(pair, _)| pair)
            .collect()
    }

    /// `(assertion, follower time, followee time)` for every assertion
    /// claimed by both, in assertion order.
    pub fn shared_claims(&self, a: u32, b: u32) -> Vec<(u32, u64, u64)> {
        let ra = &self.rows[a as usize];
        let rb = &self.rows[b as usize];
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < ra.len() && j < rb.len() {
            let (aa, ta) = ra[i];
            let (ab, tb) = rb[j];
            match aa.cmp(&ab) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push((aa, ta, tb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}
