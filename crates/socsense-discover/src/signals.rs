//! The three signal extractors, each producing a z-score against an
//! explicit null model. Pure functions of the profile + config, so the
//! parallel scoring pass is bit-identical at every thread count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::config::DiscoverConfig;
use crate::profile::ClaimProfile;

/// Variance floor used whenever a null model's standard deviation is
/// tiny or zero (degenerate pairs); keeps every z finite.
const SIGMA_FLOOR: f64 = 0.5;

/// All signal z-scores for one unordered candidate pair `(a, b)`, `a < b`.
///
/// Directional signals are stored for the `a follows b` direction; the
/// sign test is antisymmetric (`z_dir_ba = -z_dir_ab`) and the lag signal
/// carries both directions explicitly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairSignals {
    pub a: u32,
    pub b: u32,
    /// Shared assertions (exact row intersection).
    pub shared: usize,
    /// Sign-test z for "b spoke first" over strictly ordered shared claims.
    pub z_dir_ab: f64,
    /// Fraction of strictly ordered shared claims where `b` spoke first
    /// (0.5 when none are strictly ordered).
    pub frac_b_first: f64,
    /// Windowed copy-lag permutation z for `a` copying `b`.
    pub z_lag_ab: f64,
    /// Windowed copy-lag permutation z for `b` copying `a`.
    pub z_lag_ba: f64,
    /// Co-occurrence lift z (symmetric).
    pub z_cooc: f64,
    /// Rare-claim error-correlation z (symmetric).
    pub z_err: f64,
}

impl PairSignals {
    /// Directional signals `(sign-test z, followee-first fraction,
    /// lag z)` seen from `follower -> followee`; `forward` means
    /// `follower == a`.
    pub fn directed(&self, forward: bool) -> (f64, f64, f64) {
        if forward {
            (self.z_dir_ab, self.frac_b_first, self.z_lag_ab)
        } else {
            (-self.z_dir_ab, 1.0 - self.frac_b_first, self.z_lag_ba)
        }
    }
}

/// splitmix64 finalizer — used to derive independent per-pair RNG seeds
/// from the config seed without any cross-pair state.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Number of lag hits in the `follower copies followee` direction:
/// follower time strictly after followee time, within `window`.
fn lag_hits(pairs: &[(u64, u64)], window: u64) -> usize {
    pairs
        .iter()
        .filter(|&&(tf, te)| tf > te && tf - te <= window)
        .count()
}

/// Scores one candidate pair. `window` is the resolved lag window.
pub(crate) fn score_pair(
    profile: &ClaimProfile,
    cfg: &DiscoverConfig,
    a: u32,
    b: u32,
    window: u64,
) -> PairSignals {
    let shared = profile.shared_claims(a, b);
    let s = shared.len();

    // --- Signal 1a: who-spoke-first sign test -------------------------
    // Under the null (no copying, exchangeable ordering) each strictly
    // ordered shared claim is b-first with probability 1/2; the normal
    // approximation to the binomial gives z = (h_b - h_a) / sqrt(h).
    let b_first = shared.iter().filter(|&&(_, ta, tb)| tb < ta).count();
    let a_first = shared.iter().filter(|&&(_, ta, tb)| ta < tb).count();
    let ordered = b_first + a_first;
    let (z_dir_ab, frac_b_first) = if ordered == 0 {
        (0.0, 0.5)
    } else {
        (
            (b_first as f64 - a_first as f64) / (ordered as f64).sqrt(),
            b_first as f64 / ordered as f64,
        )
    };
    // The sign test's exchangeability null only holds when both sources
    // were active at overlapping times. Two sources active in disjoint
    // phases (e.g. a generator that emits all of one source's claims
    // before the other's) order every shared claim the same way without
    // any copying, so the z is deflated by the span-interleave factor.
    let z_dir_ab = z_dir_ab * profile.interleave(a, b);

    // --- Signal 1b: windowed copy-lag vs permutation null -------------
    // Observed: how many shared claims land within `window` ticks after
    // the other source's claim. Null: re-pair the two time vectors with
    // K seeded permutations, which preserves both marginal time
    // distributions but destroys per-assertion alignment.
    let times: Vec<(u64, u64)> = shared.iter().map(|&(_, ta, tb)| (ta, tb)).collect();
    let h_ab = lag_hits(&times, window);
    let swapped: Vec<(u64, u64)> = times.iter().map(|&(ta, tb)| (tb, ta)).collect();
    let h_ba = lag_hits(&swapped, window);

    let k = cfg.permutations;
    let pair_key = ((a as u64) << 32) | b as u64;
    let mut rng = StdRng::seed_from_u64(mix64(cfg.seed ^ mix64(pair_key)));
    let mut tb_perm: Vec<u64> = times.iter().map(|&(_, tb)| tb).collect();
    let ta: Vec<u64> = times.iter().map(|&(ta, _)| ta).collect();
    let (mut sum_ab, mut sumsq_ab) = (0.0f64, 0.0f64);
    let (mut sum_ba, mut sumsq_ba) = (0.0f64, 0.0f64);
    for _ in 0..k {
        tb_perm.shuffle(&mut rng);
        let mut perm_ab = 0usize;
        let mut perm_ba = 0usize;
        for (&t_a, &t_b) in ta.iter().zip(tb_perm.iter()) {
            if t_a > t_b && t_a - t_b <= window {
                perm_ab += 1;
            }
            if t_b > t_a && t_b - t_a <= window {
                perm_ba += 1;
            }
        }
        sum_ab += perm_ab as f64;
        sumsq_ab += (perm_ab * perm_ab) as f64;
        sum_ba += perm_ba as f64;
        sumsq_ba += (perm_ba * perm_ba) as f64;
    }
    let kf = k as f64;
    let perm_z = |observed: usize, sum: f64, sumsq: f64| -> f64 {
        let mean = sum / kf;
        let var = (sumsq / kf - mean * mean).max(0.0);
        (observed as f64 - mean) / var.sqrt().max(SIGMA_FLOOR)
    };
    let z_lag_ab = perm_z(h_ab, sum_ab, sumsq_ab);
    let z_lag_ba = perm_z(h_ba, sum_ba, sumsq_ba);

    // --- Signal 2: co-occurrence lift ---------------------------------
    // Null: each source claims a uniformly random subset of the active
    // columns of its observed size, independently. The shared count is
    // then hypergeometric-ish with mean na*nb/M; we use the matching
    // binomial variance.
    let m_act = profile.active_assertions as f64;
    let na = profile.rows[a as usize].len() as f64;
    let nb = profile.rows[b as usize].len() as f64;
    let z_cooc = if m_act > 0.0 {
        let expected = na * nb / m_act;
        let var = expected * (1.0 - na / m_act).max(0.0) * (1.0 - nb / m_act).max(0.0);
        (s as f64 - expected) / var.sqrt().max(SIGMA_FLOOR)
    } else {
        0.0
    };

    // --- Signal 3: error correlation on rare claims -------------------
    // Same lift statistic restricted to rare columns (support at or below
    // the rare_quantile cutoff). Agreement on a claim almost nobody makes
    // is far stronger dependence evidence than agreement on a popular,
    // probably-true one.
    let m_rare = profile.rare_assertions as f64;
    let na_r = profile.rare_counts[a as usize] as f64;
    let nb_r = profile.rare_counts[b as usize] as f64;
    let s_rare = shared
        .iter()
        .filter(|&&(col, _, _)| profile.support[col as usize] <= profile.rare_cutoff)
        .count();
    let z_err = if m_rare > 0.0 && na_r > 0.0 && nb_r > 0.0 {
        let expected = na_r * nb_r / m_rare;
        let var = expected * (1.0 - na_r / m_rare).max(0.0) * (1.0 - nb_r / m_rare).max(0.0);
        (s_rare as f64 - expected) / var.sqrt().max(SIGMA_FLOOR)
    } else {
        0.0
    };

    PairSignals {
        a,
        b,
        shared: s,
        z_dir_ab,
        frac_b_first,
        z_lag_ab,
        z_lag_ba,
        z_cooc,
        z_err,
    }
}

/// Resolves [`LagWindow::Auto`](crate::config::LagWindow::Auto): the
/// median absolute gap over the shared claims of all candidate pairs.
pub(crate) fn auto_window(profile: &ClaimProfile, pairs: &[(u32, u32)]) -> u64 {
    let mut gaps: Vec<u64> = Vec::new();
    for &(a, b) in pairs {
        for (_, ta, tb) in profile.shared_claims(a, b) {
            gaps.push(ta.abs_diff(tb));
        }
    }
    if gaps.is_empty() {
        return 1;
    }
    gaps.sort_unstable();
    gaps[gaps.len() / 2].max(1)
}
