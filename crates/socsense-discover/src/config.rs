//! Configuration and errors for dependency discovery.

use serde::{Deserialize, Serialize};

/// Copy-lag window: a claim by the follower counts as a *lag hit* when it
/// lands strictly after the followee's claim on the same assertion and no
/// more than `W` ticks later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LagWindow {
    /// Derive `W` from the data: the median absolute time gap over all
    /// shared claims of all candidate pairs (computed in a deterministic
    /// pre-pass). Falls back to `1` when no candidate pair shares a claim.
    Auto,
    /// A fixed window in claim-log ticks.
    Fixed(u64),
}

/// Tunables for [`discover_dependencies`](crate::discover_dependencies).
///
/// The defaults are calibrated on the planted copy worlds
/// (`socsense_synth::planted`) to recover the true edge set with
/// F1 ≥ 0.8, and are the values enforced by the `discover-edge-f1`
/// perf gate in CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoverConfig {
    /// Minimum number of shared assertions (both counted over columns
    /// with support ≤ [`max_pair_support`](Self::max_pair_support))
    /// before a pair is scored at all.
    pub min_shared: usize,
    /// Columns claimed by more than this many sources are skipped during
    /// candidate generation: agreement on a very popular assertion is
    /// weak dependence evidence, and enumerating its source pairs is
    /// quadratic in support.
    pub max_pair_support: u32,
    /// Copy-lag window (see [`LagWindow`]).
    pub lag_window: LagWindow,
    /// Number of deterministic re-pairings used to build the permutation
    /// null for the windowed copy-lag signal.
    pub permutations: usize,
    /// Directional gate: a directed edge is considered only when the
    /// who-spoke-first sign-test z-score for that direction meets this
    /// floor. The z is first deflated by the pair's activity-span
    /// interleave factor — pairwise ordering is vacuous when two sources
    /// were simply active at different times. The default admits a
    /// perfectly ordered `min_shared = 3` pair (z = √3 ≈ 1.73).
    pub min_direction_z: f64,
    /// Second directional gate: the fraction of strictly ordered shared
    /// claims where the candidate followee spoke first must meet this
    /// floor. True copy edges sit near 1.0; siblings that merely echo a
    /// common ancestor hover near 0.5, so this gate is what keeps chance
    /// sign-test leaks (which scale with the number of candidate pairs)
    /// out of the edge set.
    pub min_direction_frac: f64,
    /// Combined-score floor for a directed edge to survive thresholding.
    pub score_threshold: f64,
    /// Weight of the (capped) direction sign-test z in the combined score.
    pub weight_direction: f64,
    /// Weight of the windowed copy-lag permutation z in the combined score.
    pub weight_lag: f64,
    /// Weight of the co-occurrence lift z in the combined score.
    pub weight_cooc: f64,
    /// Weight of the rare-claim error-correlation z in the combined score.
    pub weight_err: f64,
    /// Direction z-scores are capped at this value before weighting so a
    /// long shared history cannot buy an edge on ordering alone.
    pub direction_z_cap: f64,
    /// Quantile (over active-column supports) below which a column counts
    /// as *rare* for the error-correlation signal.
    pub rare_quantile: f64,
    /// During the fixed-order acceptance pass, an edge must still explain
    /// at least this fraction of its shared claims *not already explained*
    /// by previously accepted parents of the same follower. Suppresses
    /// sibling and transitive edges that merely echo an accepted parent.
    pub min_marginal_frac: f64,
    /// Maximum accepted parents (followees) per follower.
    pub max_parents: usize,
    /// Seed for the permutation null's re-pairings. Part of the output's
    /// identity: same seed + same log ⇒ bit-identical scores.
    pub seed: u64,
}

impl Default for DiscoverConfig {
    fn default() -> Self {
        Self {
            min_shared: 3,
            max_pair_support: 64,
            lag_window: LagWindow::Auto,
            permutations: 32,
            min_direction_z: 1.7,
            min_direction_frac: 0.85,
            score_threshold: 3.5,
            weight_direction: 1.0,
            weight_lag: 1.0,
            weight_cooc: 0.75,
            weight_err: 0.75,
            direction_z_cap: 4.0,
            rare_quantile: 0.5,
            min_marginal_frac: 0.5,
            max_parents: 16,
            seed: 0,
        }
    }
}

impl DiscoverConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DiscoverError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), DiscoverError> {
        if self.min_shared == 0 {
            return Err(DiscoverError::BadConfig {
                what: "min_shared must be at least 1",
            });
        }
        if self.max_pair_support < 2 {
            return Err(DiscoverError::BadConfig {
                what: "max_pair_support must be at least 2",
            });
        }
        if self.permutations == 0 {
            return Err(DiscoverError::BadConfig {
                what: "permutations must be at least 1",
            });
        }
        if let LagWindow::Fixed(0) = self.lag_window {
            return Err(DiscoverError::BadConfig {
                what: "lag_window must be at least 1 tick",
            });
        }
        if !(0.0..=1.0).contains(&self.min_direction_frac) {
            return Err(DiscoverError::BadConfig {
                what: "min_direction_frac must lie in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.rare_quantile) {
            return Err(DiscoverError::BadConfig {
                what: "rare_quantile must lie in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.min_marginal_frac) {
            return Err(DiscoverError::BadConfig {
                what: "min_marginal_frac must lie in [0, 1]",
            });
        }
        for (value, what) in [
            (self.min_direction_z, "min_direction_z must be finite"),
            (self.score_threshold, "score_threshold must be finite"),
            (self.weight_direction, "weight_direction must be finite"),
            (self.weight_lag, "weight_lag must be finite"),
            (self.weight_cooc, "weight_cooc must be finite"),
            (self.weight_err, "weight_err must be finite"),
            (self.direction_z_cap, "direction_z_cap must be finite"),
        ] {
            if !value.is_finite() {
                return Err(DiscoverError::BadConfig { what });
            }
        }
        if self.max_parents == 0 {
            return Err(DiscoverError::BadConfig {
                what: "max_parents must be at least 1",
            });
        }
        Ok(())
    }
}

/// Errors from dependency discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiscoverError {
    /// A configuration field is out of range.
    BadConfig {
        /// Which constraint was violated.
        what: &'static str,
    },
    /// A claim references a source or assertion outside `n × m`.
    ClaimOutOfBounds {
        /// Claiming source id.
        source: u32,
        /// Asserted statement id.
        assertion: u32,
        /// Declared source count.
        n: u32,
        /// Declared assertion count.
        m: u32,
    },
}

impl std::fmt::Display for DiscoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoverError::BadConfig { what } => write!(f, "bad discover config: {what}"),
            DiscoverError::ClaimOutOfBounds {
                source,
                assertion,
                n,
                m,
            } => write!(
                f,
                "claim ({source}, {assertion}) out of bounds for {n} sources x {m} assertions"
            ),
        }
    }
}

impl std::error::Error for DiscoverError {}
