//! The discovery pipeline: profile → candidate pairs → parallel signal
//! scoring → serial fixed-order thresholding.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_matrix::parallel::{par_map_collect, Parallelism};
use socsense_obs::Obs;

use crate::config::{DiscoverConfig, DiscoverError, LagWindow};
use crate::profile::ClaimProfile;
use crate::signals::{auto_window, score_pair, PairSignals};

/// One recovered directed dependency edge: `follower` is inferred to
/// copy from `followee` (same orientation as
/// [`FollowerGraph::add_follow`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoveredEdge {
    /// The copying (dependent) source.
    pub follower: u32,
    /// The copied (ancestor) source.
    pub followee: u32,
    /// Combined weighted score that survived thresholding.
    pub score: f64,
    /// Who-spoke-first sign-test z for this direction.
    pub direction_z: f64,
    /// Windowed copy-lag permutation z for this direction.
    pub lag_z: f64,
    /// Co-occurrence lift z (symmetric).
    pub cooc_z: f64,
    /// Rare-claim error-correlation z (symmetric).
    pub err_z: f64,
    /// Shared assertions between the two sources.
    pub shared: usize,
}

/// Run metadata, mostly for benchmarks and eval tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoverStats {
    /// Sources with at least one claim.
    pub active_sources: usize,
    /// Assertions with at least one claim.
    pub active_assertions: usize,
    /// Unordered pairs that met the candidate filter and were scored.
    pub candidate_pairs: usize,
    /// Directed candidates that passed the direction and score gates
    /// (before the marginal-coverage acceptance pass).
    pub gated_edges: usize,
    /// The resolved copy-lag window in ticks.
    pub lag_window: u64,
    /// Columns at or below this support count as rare.
    pub rare_support_cutoff: u32,
}

/// Output of [`discover_dependencies`]: the recovered edge list (sorted
/// by `(follower, followee)`), the equivalent [`FollowerGraph`] ready
/// for `ClaimData::from_claims`, and run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discovery {
    /// Accepted edges with their per-signal evidence.
    pub edges: Vec<DiscoveredEdge>,
    /// The same edges as a follower graph over all `n` sources.
    pub graph: FollowerGraph,
    /// Run metadata.
    pub stats: DiscoverStats,
}

impl Discovery {
    /// The recovered edge set as `(follower, followee)` pairs.
    pub fn edge_pairs(&self) -> Vec<(u32, u32)> {
        self.edges
            .iter()
            .map(|e| (e.follower, e.followee))
            .collect()
    }
}

/// Infers a dependency graph from the claim log alone (serial).
///
/// See [`discover_dependencies_par`]; this is `Parallelism::Serial`.
///
/// # Errors
///
/// Returns [`DiscoverError::BadConfig`] or
/// [`DiscoverError::ClaimOutOfBounds`].
pub fn discover_dependencies(
    n: u32,
    m: u32,
    claims: &[TimedClaim],
    cfg: &DiscoverConfig,
) -> Result<Discovery, DiscoverError> {
    discover_dependencies_par(n, m, claims, cfg, Parallelism::Serial)
}

/// Infers a dependency graph from the claim log alone, scoring candidate
/// pairs in parallel.
///
/// The scoring pass uses the workspace's fixed-chunk helpers and every
/// per-pair computation is a pure function of the profile + config, so
/// the result is bit-identical at every thread count. The acceptance
/// pass is serial and runs in a fixed order (score descending,
/// `total_cmp`, ties by edge id).
///
/// # Errors
///
/// Returns [`DiscoverError::BadConfig`] or
/// [`DiscoverError::ClaimOutOfBounds`].
pub fn discover_dependencies_par(
    n: u32,
    m: u32,
    claims: &[TimedClaim],
    cfg: &DiscoverConfig,
    par: Parallelism,
) -> Result<Discovery, DiscoverError> {
    discover_dependencies_traced(n, m, claims, cfg, par, &Obs::none())
}

/// [`discover_dependencies_par`] with observability: emits
/// `discover.candidate_pairs` / `discover.gated_edges` /
/// `discover.edges` counters and a `discover.run_seconds` span.
///
/// # Errors
///
/// Returns [`DiscoverError::BadConfig`] or
/// [`DiscoverError::ClaimOutOfBounds`].
pub fn discover_dependencies_traced(
    n: u32,
    m: u32,
    claims: &[TimedClaim],
    cfg: &DiscoverConfig,
    par: Parallelism,
    obs: &Obs,
) -> Result<Discovery, DiscoverError> {
    cfg.validate()?;
    let timer = obs.timer("discover.run_seconds");

    let profile = ClaimProfile::build(n, m, claims, cfg)?;
    let pairs = profile.candidate_pairs(cfg);
    obs.counter("discover.candidate_pairs", pairs.len() as u64);

    let window = match cfg.lag_window {
        LagWindow::Fixed(w) => w,
        LagWindow::Auto => auto_window(&profile, &pairs),
    };

    let signals: Vec<PairSignals> = par_map_collect(par, pairs.len(), |i| {
        let (a, b) = pairs[i];
        score_pair(&profile, cfg, a, b, window)
    });

    // Directed gating: at most one direction per pair can clear the
    // sign-test floor (the statistic is antisymmetric), so siblings with
    // no consistent ordering die here.
    let mut gated: Vec<DiscoveredEdge> = Vec::new();
    for sig in &signals {
        for forward in [true, false] {
            let (z_dir, frac, z_lag) = sig.directed(forward);
            if z_dir < cfg.min_direction_z || frac < cfg.min_direction_frac {
                continue;
            }
            let score = cfg.weight_direction * z_dir.min(cfg.direction_z_cap)
                + cfg.weight_lag * z_lag.max(0.0)
                + cfg.weight_cooc * sig.z_cooc.max(0.0)
                + cfg.weight_err * sig.z_err.max(0.0);
            if score < cfg.score_threshold {
                continue;
            }
            let (follower, followee) = if forward {
                (sig.a, sig.b)
            } else {
                (sig.b, sig.a)
            };
            gated.push(DiscoveredEdge {
                follower,
                followee,
                score,
                direction_z: z_dir,
                lag_z: z_lag,
                cooc_z: sig.z_cooc,
                err_z: sig.z_err,
                shared: sig.shared,
            });
        }
    }
    let gated_edges = gated.len();
    obs.counter("discover.gated_edges", gated_edges as u64);

    // Fixed-order acceptance with marginal coverage: strongest edges
    // first; an edge must explain enough shared claims that its
    // follower's already-accepted parents do not. This suppresses
    // sibling and transitive echoes of an accepted parent.
    gated.sort_by(|x, y| {
        y.score
            .total_cmp(&x.score)
            .then_with(|| x.follower.cmp(&y.follower))
            .then_with(|| x.followee.cmp(&y.followee))
    });
    let mut explained: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n as usize];
    let mut parent_count = vec![0usize; n as usize];
    let mut edges: Vec<DiscoveredEdge> = Vec::new();
    for edge in gated {
        let f = edge.follower as usize;
        if parent_count[f] >= cfg.max_parents {
            continue;
        }
        let (lo, hi) = (
            edge.follower.min(edge.followee),
            edge.follower.max(edge.followee),
        );
        let shared_ids: Vec<u32> = profile
            .shared_claims(lo, hi)
            .iter()
            .map(|&(id, _, _)| id)
            .collect();
        let unexplained = shared_ids
            .iter()
            .filter(|id| !explained[f].contains(id))
            .count();
        if unexplained < cfg.min_shared
            || (unexplained as f64) < cfg.min_marginal_frac * shared_ids.len() as f64
        {
            continue;
        }
        explained[f].extend(shared_ids);
        parent_count[f] += 1;
        edges.push(edge);
    }
    edges.sort_by(|x, y| {
        x.follower
            .cmp(&y.follower)
            .then_with(|| x.followee.cmp(&y.followee))
    });
    obs.counter("discover.edges", edges.len() as u64);

    let graph = FollowerGraph::from_edges(n, edges.iter().map(|e| (e.follower, e.followee)))
        .expect("discovered edges are in range and never self-loops");

    let stats = DiscoverStats {
        active_sources: profile.rows.iter().filter(|r| !r.is_empty()).count(),
        active_assertions: profile.active_assertions,
        candidate_pairs: pairs.len(),
        gated_edges,
        lag_window: window,
        rare_support_cutoff: profile.rare_cutoff,
    };
    timer.stop();

    Ok(Discovery {
        edges,
        graph,
        stats,
    })
}
