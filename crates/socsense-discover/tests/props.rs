//! Property tests for the discovery determinism contract:
//! thread-count invariance (bit-identical scores), claim-order
//! invariance, and exact recovery on noiseless planted worlds.

use proptest::prelude::*;

use socsense_discover::{
    discover_dependencies, discover_dependencies_par, edge_quality, DiscoverConfig,
};
use socsense_graph::TimedClaim;
use socsense_matrix::Parallelism;
use socsense_synth::{PlantedConfig, PlantedDataset};

/// An arbitrary claim log over a small world: enough sources and
/// repeated assertions that candidate pairs actually form.
fn claim_log() -> impl Strategy<Value = Vec<TimedClaim>> {
    proptest::collection::vec((0u32..12, 0u32..20, 0u64..64), 0..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(s, a, t)| TimedClaim::new(s, a, t))
            .collect()
    })
}

/// Per-edge bit pattern of every score component — the strongest
/// equality the contract promises.
fn edge_bits(d: &socsense_discover::Discovery) -> Vec<(u32, u32, [u64; 5])> {
    d.edges
        .iter()
        .map(|e| {
            (
                e.follower,
                e.followee,
                [
                    e.score.to_bits(),
                    e.direction_z.to_bits(),
                    e.lag_z.to_bits(),
                    e.cooc_z.to_bits(),
                    e.err_z.to_bits(),
                ],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial and every thread count produce bit-identical edges,
    /// scores, and stats.
    #[test]
    fn thread_count_never_changes_a_bit(claims in claim_log()) {
        let cfg = DiscoverConfig::default();
        let serial = discover_dependencies(12, 20, &claims, &cfg).unwrap();
        for threads in [1usize, 2, 4] {
            let par = discover_dependencies_par(
                12, 20, &claims, &cfg, Parallelism::Threads(threads),
            ).unwrap();
            prop_assert_eq!(edge_bits(&serial), edge_bits(&par), "threads = {}", threads);
            prop_assert_eq!(&serial.stats, &par.stats);
        }
    }

    /// Discovery reads the claim log as a set: reordering the batch
    /// (same multiset of claims) cannot change the output.
    #[test]
    fn claim_order_within_a_batch_is_irrelevant(
        claims in claim_log(),
        order_seed in 0u64..10_000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let cfg = DiscoverConfig::default();
        let base = discover_dependencies(12, 20, &claims, &cfg).unwrap();
        let mut shuffled = claims.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(order_seed));
        let reordered = discover_dependencies(12, 20, &shuffled, &cfg).unwrap();
        prop_assert_eq!(edge_bits(&base), edge_bits(&reordered));
    }

    /// On zero-noise planted copy chains with disjoint root pools the
    /// planted edge set comes back exactly, whatever the world seed.
    #[test]
    fn noiseless_planted_worlds_recover_exactly(seed in 0u64..10_000) {
        let ds = PlantedDataset::generate(&PlantedConfig::noiseless(), seed).unwrap();
        let d = discover_dependencies(ds.n, ds.m, &ds.claims, &DiscoverConfig::default()).unwrap();
        let q = edge_quality(d.edge_pairs(), ds.true_edges());
        prop_assert!(
            q.precision == 1.0 && q.recall == 1.0,
            "seed {}: precision {} recall {}", seed, q.precision, q.recall
        );
    }
}
