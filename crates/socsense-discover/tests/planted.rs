//! Recovery quality on planted copy worlds — the substance behind the
//! `discover-edge-f1` CI gate.

use socsense_discover::{discover_dependencies, edge_quality, DiscoverConfig};
use socsense_synth::{PlantedConfig, PlantedDataset};

#[test]
fn default_world_recovers_edges_with_high_f1() {
    let world = PlantedConfig::default_world();
    let ds = PlantedDataset::generate(&world, 9).unwrap();
    let cfg = DiscoverConfig::default();
    let discovery = discover_dependencies(ds.n, ds.m, &ds.claims, &cfg).unwrap();
    let q = edge_quality(discovery.edge_pairs(), ds.true_edges());
    eprintln!(
        "planted default_world: {} true, {} found, {} tp, p={:.3} r={:.3} f1={:.3}, stats={:?}",
        q.true_edges,
        q.discovered_edges,
        q.true_positives,
        q.precision,
        q.recall,
        q.f1(),
        discovery.stats
    );
    assert!(q.f1() >= 0.8, "F1 {:.3} below the CI floor", q.f1());
}

#[test]
fn noiseless_world_recovers_edges_exactly() {
    let world = PlantedConfig::noiseless();
    let ds = PlantedDataset::generate(&world, 5).unwrap();
    let cfg = DiscoverConfig::default();
    let discovery = discover_dependencies(ds.n, ds.m, &ds.claims, &cfg).unwrap();
    let q = edge_quality(discovery.edge_pairs(), ds.true_edges());
    eprintln!(
        "planted noiseless: {} true, {} found, {} tp, f1={:.3}",
        q.true_edges,
        q.discovered_edges,
        q.true_positives,
        q.f1()
    );
    assert_eq!(q.precision, 1.0);
    assert_eq!(q.recall, 1.0);
}
