//! Structured metrics and tracing for the socsense workspace.
//!
//! The estimator hot paths (EM-Ext restarts, Gibbs bound chains, ingest
//! sharding, the serve worker) accept an [`Obs`] handle — a cheap,
//! cloneable reference to an optional [`MetricsSink`]. With no sink
//! attached every emission is a single `Option` check and no
//! allocation, so instrumented code costs nothing in the default
//! configuration. With a sink attached, the same code reports:
//!
//! - **counters** — monotone event totals (`em.runs_total`),
//! - **gauges** — last-value observations (`ingest.cluster.clusters`),
//! - **histograms** — distributions over fixed log-spaced buckets
//!   (`serve.request.posterior.seconds`), fed via [`Obs::observe`] or
//!   the span-style [`SpanTimer`] returned by [`Obs::timer`].
//!
//! Three sinks are provided: the implicit no-op (an [`Obs`] with no
//! sink), the in-memory [`Recorder`] whose [`MetricsSnapshot`] is
//! serialisable and queryable, and the streaming [`JsonLinesSink`]
//! that writes one JSON object per event. [`Tee`] fans out to two
//! sinks (e.g. a service-owned recorder plus a caller's).
//!
//! # Determinism
//!
//! Metrics are observation-only: sinks receive values but nothing in
//! an instrumented computation reads them back, so enabling a recorder
//! cannot change a posterior bit. Counter increments and histogram
//! observations are commutative, which keeps recorded totals
//! deterministic even when emitted from deterministic parallel regions
//! (gauges are last-write-wins and must only be set from serial code).

// detlint: contract = tooling
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use serde_json::json;

// ---------------------------------------------------------------------
// Sink trait + Obs handle
// ---------------------------------------------------------------------

/// Receiver for metric events. Implementations must tolerate being
/// called concurrently from worker threads.
pub trait MetricsSink: Send + Sync + fmt::Debug {
    /// Adds `delta` to the named monotone counter.
    fn counter(&self, name: &str, delta: u64);
    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);
    /// Records `value` into the named histogram.
    fn observe(&self, name: &str, value: f64);
}

/// A sink that drops every event. [`Obs::none`] is the usual way to
/// get no-op behaviour (it skips the virtual call entirely); this type
/// exists for APIs that need a concrete `Arc<dyn MetricsSink>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}
}

/// Handle threaded through instrumented code. `Default`/[`Obs::none`]
/// is the disabled state: emissions are a single `Option` check.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn MetricsSink>>,
}

impl Obs {
    /// The disabled handle: every emission is a no-op.
    pub fn none() -> Self {
        Self { sink: None }
    }

    /// A handle forwarding to `sink`.
    pub fn new(sink: Arc<dyn MetricsSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// A handle backed by a fresh in-memory [`Recorder`], returned
    /// alongside it for snapshotting.
    pub fn recorder() -> (Self, Arc<Recorder>) {
        let rec = Arc::new(Recorder::new());
        (Self::new(rec.clone()), rec)
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any — lets composers (e.g. a [`Tee`])
    /// reuse an existing handle's destination.
    pub fn sink(&self) -> Option<Arc<dyn MetricsSink>> {
        self.sink.clone()
    }

    /// Adds `delta` to the named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter(name, delta);
        }
    }

    /// Sets the named gauge. Only call from serial code — gauges are
    /// last-write-wins and parallel emission would be nondeterministic.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(sink) = &self.sink {
            sink.gauge(name, value);
        }
    }

    /// Records `value` into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(sink) = &self.sink {
            sink.observe(name, value);
        }
    }

    /// Starts a span timer that records elapsed seconds into the named
    /// histogram when dropped (or [`SpanTimer::stop`]ped). Allocates
    /// the name only when a sink is attached.
    pub fn timer(&self, name: &str) -> SpanTimer {
        SpanTimer {
            start: Instant::now(),
            target: self.sink.clone().map(|sink| (sink, name.to_string())),
        }
    }
}

/// Span-style timer from [`Obs::timer`]. Records elapsed wall time (in
/// seconds) into its histogram exactly once: on drop, or explicitly
/// via [`SpanTimer::stop`] when the caller wants the reading back.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
    target: Option<(Arc<dyn MetricsSink>, String)>,
}

impl SpanTimer {
    /// Records and returns the elapsed seconds.
    pub fn stop(mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if let Some((sink, name)) = self.target.take() {
            sink.observe(&name, secs);
        }
        secs
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((sink, name)) = self.target.take() {
            sink.observe(&name, self.start.elapsed().as_secs_f64());
        }
    }
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// Log-spaced bucket upper bounds: `1e-6 · 2^k` for `k = 0..=39`,
/// covering ~1 µs latencies up to ~6 days (and iteration counts up to
/// ~5.5e5); values above the last bound land in an overflow bucket.
const BUCKET_COUNT: usize = 40;

fn bucket_bound(k: usize) -> f64 {
    1e-6 * (1u64 << k) as f64
}

fn bucket_index(value: f64) -> usize {
    // Linear scan: 40 comparisons worst case, and observation paths
    // are not hot enough (per-request, per-EM-run) for this to matter.
    for k in 0..BUCKET_COUNT {
        if value <= bucket_bound(k) {
            return k;
        }
    }
    BUCKET_COUNT // overflow
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKET_COUNT + 1],
}

impl Histogram {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKET_COUNT + 1],
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| {
                    let bound = if k < BUCKET_COUNT {
                        bucket_bound(k)
                    } else {
                        f64::INFINITY
                    };
                    (bound, c)
                })
                .collect(),
        }
    }
}

/// Exported histogram state: totals plus the non-empty buckets as
/// `(upper_bound, count)` pairs (the final bound may be `inf`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Non-empty `(upper_bound, count)` buckets, in bound order.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSummary {
    /// Mean observed value (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Upper-bound quantile estimate (Prometheus-style): the bound of
    /// the first bucket whose cumulative count reaches `p · count`,
    /// clamped to the exact observed `[min, max]` range. `NaN` when
    /// empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bound, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------
// In-memory recorder
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct RecorderState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// In-memory sink aggregating counters, gauges, and histograms under a
/// single mutex; [`Recorder::snapshot`] exports the current state.
#[derive(Debug, Default)]
pub struct Recorder {
    state: Mutex<RecorderState>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        // A panic while holding the lock poisons it; metrics should
        // keep flowing for the surviving threads.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Copies out the current state. Keys are sorted, so exports are
    /// deterministic given deterministic emission.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.lock();
        MetricsSnapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot as JSON lines (see
    /// [`MetricsSnapshot::to_jsonl`]).
    pub fn export_jsonl(&self) -> String {
        self.snapshot().to_jsonl()
    }
}

impl MetricsSink for Recorder {
    fn counter(&self, name: &str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(value);
    }
}

/// Point-in-time export of a [`Recorder`]: sorted maps from metric
/// name to value, serialisable for transport (the serve `Metrics`
/// request returns one) and for file export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Last gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter total (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One JSON object per metric, sorted by kind then name:
    ///
    /// ```json
    /// {"kind":"counter","name":"em.runs_total","value":12}
    /// {"kind":"histogram","name":"em.run.seconds","count":12,...}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&line(json!({
                "kind": "counter",
                "name": name,
                "value": value
            })));
        }
        for (name, value) in &self.gauges {
            out.push_str(&line(json!({
                "kind": "gauge",
                "name": name,
                "value": value
            })));
        }
        for (name, h) in &self.histograms {
            out.push_str(&line(json!({
                "kind": "histogram",
                "name": name,
                "count": h.count,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
                "mean": h.mean(),
                "p50": h.quantile(0.50),
                "p99": h.quantile(0.99),
                "buckets": h.buckets
            })));
        }
        out
    }
}

fn line(value: serde_json::Value) -> String {
    let mut s = serde_json::to_string(&value).expect("metric line serialises");
    s.push('\n');
    s
}

// ---------------------------------------------------------------------
// Streaming + fan-out sinks
// ---------------------------------------------------------------------

/// Streaming sink: writes one JSON object per event to the wrapped
/// writer. Write errors are swallowed — metrics must never fail the
/// computation they observe.
pub struct JsonLinesSink<W> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `out`.
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().unwrap_or_else(|p| p.into_inner());
        let _ = w.flush();
        w
    }

    fn emit(&self, value: serde_json::Value) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line(value).as_bytes());
        }
    }
}

impl<W> fmt::Debug for JsonLinesSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> MetricsSink for JsonLinesSink<W> {
    fn counter(&self, name: &str, delta: u64) {
        self.emit(json!({"event": "counter", "name": name, "delta": delta}));
    }

    fn gauge(&self, name: &str, value: f64) {
        self.emit(json!({"event": "gauge", "name": name, "value": value}));
    }

    fn observe(&self, name: &str, value: f64) {
        self.emit(json!({"event": "observe", "name": name, "value": value}));
    }
}

/// Fans every event out to two sinks (e.g. a service-owned
/// [`Recorder`] plus a caller-supplied exporter).
#[derive(Debug, Clone)]
pub struct Tee {
    a: Arc<dyn MetricsSink>,
    b: Arc<dyn MetricsSink>,
}

impl Tee {
    /// Forwards to `a` then `b`.
    pub fn new(a: Arc<dyn MetricsSink>, b: Arc<dyn MetricsSink>) -> Self {
        Self { a, b }
    }
}

impl MetricsSink for Tee {
    fn counter(&self, name: &str, delta: u64) {
        self.a.counter(name, delta);
        self.b.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.a.gauge(name, value);
        self.b.gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.a.observe(name, value);
        self.b.observe(name, value);
    }
}

// ---------------------------------------------------------------------
// Bench helper
// ---------------------------------------------------------------------

/// Runs `f` once unrecorded (warm-up), then `reps` timed repetitions —
/// each observed into the named histogram on `obs` — and returns the
/// exact median of the timed runs in seconds. `reps` is clamped to at
/// least 1.
pub fn median_timed<T>(obs: &Obs, name: &str, reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let reps = reps.max(1);
    let _ = f();
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let _ = f();
        let secs = start.elapsed().as_secs_f64();
        obs.observe(name, secs);
        times.push(secs);
    }
    times.sort_by(f64::total_cmp);
    times[reps / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_noop_and_cheap() {
        let obs = Obs::none();
        assert!(!obs.enabled());
        obs.counter("c", 1);
        obs.gauge("g", 1.0);
        obs.observe("h", 1.0);
        let t = obs.timer("t");
        // No sink: the timer carries no allocation.
        assert!(t.target.is_none());
        let secs = t.stop();
        assert!(secs >= 0.0);
    }

    #[test]
    fn recorder_aggregates_all_kinds() {
        let (obs, rec) = Obs::recorder();
        assert!(obs.enabled());
        obs.counter("em.runs_total", 2);
        obs.counter("em.runs_total", 3);
        obs.gauge("clusters", 7.0);
        obs.gauge("clusters", 9.0);
        obs.observe("iters", 4.0);
        obs.observe("iters", 10.0);

        let snap = rec.snapshot();
        assert_eq!(snap.counter("em.runs_total"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("clusters"), Some(9.0));
        let h = snap.histogram("iters").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 14.0);
        assert_eq!(h.min, 4.0);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.mean(), 7.0);
        assert_eq!(rec.counter_value("em.runs_total"), 5);
        assert!(!snap.is_empty());
    }

    #[test]
    fn timer_records_on_drop_and_on_stop() {
        let (obs, rec) = Obs::recorder();
        {
            let _t = obs.timer("span.seconds");
        }
        let secs = obs.timer("span.seconds").stop();
        assert!(secs >= 0.0);
        let snap = rec.snapshot();
        let h = snap.histogram("span.seconds").unwrap();
        assert_eq!(h.count, 2, "drop and stop each record exactly once");
        assert!(h.min >= 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3); // 1ms .. 100ms
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        // Upper-bound estimates: at least the true quantile, at most
        // one bucket (2x) above, clamped to the observed max.
        assert!((0.050..=0.128).contains(&p50), "p50={p50}");
        assert!((0.099..=0.1).contains(&p99), "p99={p99}");
        let p0 = s.quantile(0.0);
        assert!((s.min..=0.002).contains(&p0), "p0={p0}");
        assert_eq!(s.quantile(1.0), s.max);
        assert!(HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![],
        }
        .quantile(0.5)
        .is_nan());
    }

    #[test]
    fn bucket_bounds_cover_overflow() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e-6), 0);
        assert_eq!(bucket_index(2e-6), 1);
        assert_eq!(bucket_index(f64::MAX), BUCKET_COUNT);
        let mut h = Histogram::new();
        h.observe(1e12);
        let s = h.summary();
        assert_eq!(s.buckets, vec![(f64::INFINITY, 1)]);
        assert_eq!(s.quantile(0.5), 1e12, "clamped to observed max");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let (obs, rec) = Obs::recorder();
        obs.counter("a.total", 3);
        obs.gauge("b.level", 2.5);
        obs.observe("c.seconds", 0.25);
        let snap = rec.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_export_has_one_line_per_metric() {
        let (obs, rec) = Obs::recorder();
        obs.counter("a.total", 1);
        obs.gauge("b.level", 2.0);
        obs.observe("c.seconds", 0.5);
        let out = rec.export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            assert!(v.as_object().unwrap().contains_key("kind"), "{l}");
        }
        assert!(lines[0].contains("\"counter\""), "{}", lines[0]);
        assert!(lines[1].contains("\"gauge\""), "{}", lines[1]);
        assert!(lines[2].contains("\"histogram\""), "{}", lines[2]);
    }

    #[test]
    fn json_lines_sink_streams_events() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.counter("x", 2);
        sink.observe("y", 0.125);
        sink.gauge("z", 1.5);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"counter\"") && lines[0].contains("\"x\""));
        assert!(lines[1].contains("\"observe\"") && lines[1].contains("0.125"));
        assert!(lines[2].contains("\"gauge\""));
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let rec_a = Arc::new(Recorder::new());
        let rec_b = Arc::new(Recorder::new());
        let obs = Obs::new(Arc::new(Tee::new(rec_a.clone(), rec_b.clone())));
        obs.counter("n", 4);
        obs.gauge("g", 1.0);
        obs.observe("h", 2.0);
        assert_eq!(rec_a.counter_value("n"), 4);
        assert_eq!(rec_b.counter_value("n"), 4);
        assert_eq!(rec_a.snapshot(), rec_b.snapshot());
    }

    #[test]
    fn recorder_is_thread_safe() {
        let (obs, rec) = Obs::recorder();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        obs.counter("hits", 1);
                        obs.observe("vals", 1.0);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("hits"), 4000);
        assert_eq!(snap.histogram("vals").unwrap().count, 4000);
    }

    #[test]
    fn median_timed_records_each_rep() {
        let (obs, rec) = Obs::recorder();
        let mut calls = 0u32;
        let median = median_timed(&obs, "bench.work.seconds", 5, || calls += 1);
        assert_eq!(calls, 6, "1 warm-up + 5 timed reps");
        assert!(median >= 0.0);
        let h = rec.snapshot();
        let h = h.histogram("bench.work.seconds").unwrap();
        assert_eq!(h.count, 5);
        assert!(h.min <= median && median <= h.max);
    }
}
