//! The EM-family algorithms: EM-Ext (this paper), EM (IPSN 2012), and
//! EM-Social (IPSN 2014).

use socsense_core::{ClaimData, EmConfig, EmExt, Obs, SenseError, SourceParams, Theta};
use socsense_matrix::logprob::{normalize_log_pair, safe_ln, safe_ln_1m};
use socsense_matrix::parallel::par_map_collect;
use socsense_matrix::SparseBinaryMatrix;

use crate::FactFinder;

/// Adapter exposing the paper's EM-Ext estimator
/// ([`socsense_core::EmExt`]) through the [`FactFinder`] interface.
#[derive(Debug, Clone, Default)]
pub struct EmExtFinder {
    /// Underlying EM configuration.
    pub config: EmConfig,
    /// Metrics handle forwarded into every fit (disabled by default).
    pub obs: Obs,
}

impl EmExtFinder {
    /// Creates an adapter with the given EM configuration.
    pub fn new(config: EmConfig) -> Self {
        Self {
            config,
            obs: Obs::none(),
        }
    }

    /// Attaches a metrics handle; fits then report `em.*` convergence
    /// metrics. Observation-only: scores are bit-identical either way.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }
}

impl EmExtFinder {
    fn em(&self) -> EmExt {
        EmExt::new(self.config).with_obs(self.obs.clone())
    }
}

impl FactFinder for EmExtFinder {
    fn name(&self) -> &'static str {
        "EM-Ext"
    }

    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        Ok(self.em().fit(data)?.posterior)
    }

    fn ranking_scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        Ok(self.em().fit(data)?.log_odds)
    }
}

/// EM (IPSN 2012): jointly estimates source reliability and truth values
/// **assuming every claim is independent** — the dependency matrix is
/// discarded before fitting.
///
/// This is the estimator whose false-positive rate the paper shows
/// growing with the source count (Fig. 7-b): repeated rumors look like
/// independent corroboration.
#[derive(Debug, Clone, Default)]
pub struct EmIndependent {
    /// Underlying EM configuration.
    pub config: EmConfig,
    /// Metrics handle forwarded into every fit (disabled by default).
    pub obs: Obs,
}

impl EmIndependent {
    /// Creates the estimator with the given EM configuration.
    pub fn new(config: EmConfig) -> Self {
        Self {
            config,
            obs: Obs::none(),
        }
    }

    /// Attaches a metrics handle (see [`EmExtFinder::with_obs`]).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }
}

impl EmIndependent {
    fn blind(&self, data: &ClaimData) -> Result<ClaimData, SenseError> {
        ClaimData::new(
            data.sc().clone(),
            SparseBinaryMatrix::empty(data.sc().nrows(), data.sc().ncols()),
        )
    }
}

impl FactFinder for EmIndependent {
    fn name(&self) -> &'static str {
        "EM"
    }

    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        // With D empty the f/g parameters are inert and EM-Ext reduces
        // exactly to the IPSN'12 two-parameter estimator.
        let em = EmExt::new(self.config).with_obs(self.obs.clone());
        Ok(em.fit(&self.blind(data)?)?.posterior)
    }

    fn ranking_scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        let em = EmExt::new(self.config).with_obs(self.obs.clone());
        Ok(em.fit(&self.blind(data)?)?.log_odds)
    }
}

/// How [`EmSocial`] removes dependent claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropMode {
    /// Dependent **cells** are excluded from the likelihood entirely
    /// (treated as unobserved). This matches IPSN'14's reasoning that a
    /// repeated claim "offers no information": neither its presence nor
    /// its absence is counted. Default.
    #[default]
    ExcludeCells,
    /// Dependent **claims** are deleted and the cells then treated as
    /// ordinary silence. A harsher cleaning that actively counts each
    /// removed retweet as evidence *against* the assertion; kept as an
    /// ablation.
    AsSilence,
}

/// EM-Social (IPSN 2014): EM over independent claims only; dependent
/// claims are discarded as a data-cleaning step.
#[derive(Debug, Clone, Default)]
pub struct EmSocial {
    /// Underlying EM configuration.
    pub config: EmConfig,
    /// How dependent claims are removed.
    pub drop_mode: DropMode,
    /// Metrics handle forwarded into every fit (disabled by default).
    pub obs: Obs,
}

impl EmSocial {
    /// Creates the estimator with the given configuration and drop mode.
    pub fn new(config: EmConfig, drop_mode: DropMode) -> Self {
        Self {
            config,
            drop_mode,
            obs: Obs::none(),
        }
    }

    /// Attaches a metrics handle (see [`EmExtFinder::with_obs`]). The
    /// `AsSilence` mode forwards it into the inner EM-Ext fit; the
    /// hand-rolled `ExcludeCells` loop reports its own `em.*` run
    /// metrics.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// EM restricted to independent cells: dependent cells contribute
    /// nothing to either the E-step likelihood or the M-step counts.
    /// Returns `(posterior, log_odds)` per assertion.
    fn fit_excluding_cells(&self, data: &ClaimData) -> Result<(Vec<f64>, Vec<f64>), SenseError> {
        let cfg = self.config;
        if cfg.max_iters == 0 || cfg.tol <= 0.0 || cfg.tol.is_nan() {
            return Err(SenseError::BadConfig {
                what: "max_iters and tol must be positive",
            });
        }
        let n = data.source_count();
        let m = data.assertion_count();
        let par = cfg.parallelism;

        // θ restricted to (a, b); the f/g slots stay at 0.5 and are inert.
        let mut theta = Theta::neutral(n);
        for i in 0..n {
            let r = data.sc().row_nnz(i as u32) as f64 / m as f64;
            let hi = (1.5 * r).clamp(cfg.eps, 0.95);
            let lo = (0.5 * r).clamp(cfg.eps, 0.95);
            set_ab(&mut theta, i, hi, lo);
        }
        let mut posterior = vec![0.5_f64; m];
        let mut log_odds = vec![0.0_f64; m];
        let _run_timer = self.obs.timer("em.run.seconds");
        let mut iterations = 0usize;
        let mut converged = false;

        for _ in 0..cfg.max_iters {
            iterations += 1;
            // E-step over independent cells only; one column per index,
            // chunked deterministically (see socsense_matrix::parallel).
            let ln_a: Vec<f64> = theta.sources().iter().map(|s| safe_ln(s.a)).collect();
            let ln_1a: Vec<f64> = theta.sources().iter().map(|s| safe_ln_1m(s.a)).collect();
            let ln_b: Vec<f64> = theta.sources().iter().map(|s| safe_ln(s.b)).collect();
            let ln_1b: Vec<f64> = theta.sources().iter().map(|s| safe_ln_1m(s.b)).collect();
            let base1: f64 = ln_1a.iter().sum();
            let base0: f64 = ln_1b.iter().sum();
            let ln_z = safe_ln(theta.z());
            let ln_1z = safe_ln_1m(theta.z());

            let pairs: Vec<(f64, f64)> = par_map_collect(par, m, |ju| {
                let j = ju as u32;
                let mut ln1 = base1;
                let mut ln0 = base0;
                // Dependent cells vanish from the product.
                for &i in data.d().col(j) {
                    ln1 -= ln_1a[i as usize];
                    ln0 -= ln_1b[i as usize];
                }
                // Independent claims flip silence -> claim.
                let dep = data.d().col(j);
                let mut dep_iter = dep.iter().peekable();
                for &i in data.sc().col(j) {
                    while dep_iter.peek().is_some_and(|&&d| d < i) {
                        dep_iter.next();
                    }
                    if dep_iter.peek() == Some(&&i) {
                        continue; // dependent claim: dropped
                    }
                    let iu = i as usize;
                    ln1 += ln_a[iu] - ln_1a[iu];
                    ln0 += ln_b[iu] - ln_1b[iu];
                }
                (
                    normalize_log_pair(ln1 + ln_z, ln0 + ln_1z).0,
                    (ln1 + ln_z) - (ln0 + ln_1z),
                )
            });
            for (j, (p, lo)) in pairs.into_iter().enumerate() {
                posterior[j] = p;
                log_odds[j] = lo;
            }

            // M-step over independent cells, one source per index.
            let sum_z: f64 = posterior.iter().sum();
            let sum_y = m as f64 - sum_z;
            let mut next = theta.clone();
            let ab: Vec<(f64, f64)> = par_map_collect(par, n, |iu| {
                let i = iu as u32;
                let mut dep_z = 0.0;
                for &j in data.d().row(i) {
                    dep_z += posterior[j as usize];
                }
                let dep_y = data.d().row_nnz(i) as f64 - dep_z;
                let (mut num_a, mut num_b) = (0.0, 0.0);
                let dep = data.d().row(i);
                let mut dep_iter = dep.iter().peekable();
                for &j in data.sc().row(i) {
                    while dep_iter.peek().is_some_and(|&&dj| dj < j) {
                        dep_iter.next();
                    }
                    if dep_iter.peek() == Some(&&j) {
                        continue;
                    }
                    num_a += posterior[j as usize];
                    num_b += 1.0 - posterior[j as usize];
                }
                let den_a = sum_z - dep_z;
                let den_b = sum_y - dep_y;
                let prev = *theta.source(iu);
                let a = if den_a > 1e-12 { num_a / den_a } else { prev.a };
                let b = if den_b > 1e-12 { num_b / den_b } else { prev.b };
                (a, b)
            });
            for (i, (a, b)) in ab.into_iter().enumerate() {
                set_ab(&mut next, i, a, b);
            }
            next.set_z(sum_z / m as f64);
            next.clamp_in_place(cfg.eps);
            let delta = theta.max_abs_diff(&next)?;
            theta = next;
            if delta < cfg.tol {
                converged = true;
                break;
            }
        }
        if self.obs.enabled() {
            self.obs.counter("em.runs_total", 1);
            self.obs.counter("em.iterations_total", iterations as u64);
            if converged {
                self.obs.counter("em.runs_converged_total", 1);
            }
            self.obs.observe("em.run.iterations", iterations as f64);
        }
        Ok((posterior, log_odds))
    }
}

/// Helper setting only the (a, b) pair of one source.
fn set_ab(theta: &mut Theta, i: usize, a: f64, b: f64) {
    let s = *theta.source(i);
    theta.set_source(
        i,
        SourceParams {
            a,
            b,
            f: s.f,
            g: s.g,
        },
    );
}

impl EmSocial {
    /// The dependent-claims-deleted dataset used by
    /// [`DropMode::AsSilence`].
    fn cleaned(&self, data: &ClaimData) -> Result<ClaimData, SenseError> {
        let sc = data.sc();
        let kept = sc.entries().filter(|&(i, j)| !data.dependent(i, j));
        let cleaned = SparseBinaryMatrix::from_entries(sc.nrows(), sc.ncols(), kept);
        ClaimData::new(cleaned, SparseBinaryMatrix::empty(sc.nrows(), sc.ncols()))
    }
}

impl FactFinder for EmSocial {
    fn name(&self) -> &'static str {
        "EM-Social"
    }

    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        match self.drop_mode {
            DropMode::ExcludeCells => Ok(self.fit_excluding_cells(data)?.0),
            DropMode::AsSilence => {
                let em = EmExt::new(self.config).with_obs(self.obs.clone());
                Ok(em.fit(&self.cleaned(data)?)?.posterior)
            }
        }
    }

    fn ranking_scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        match self.drop_mode {
            DropMode::ExcludeCells => Ok(self.fit_excluding_cells(data)?.1),
            DropMode::AsSilence => {
                let em = EmExt::new(self.config).with_obs(self.obs.clone());
                Ok(em.fit(&self.cleaned(data)?)?.log_odds)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_core::classify;

    fn separable() -> ClaimData {
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for j in 0..5u32 {
                entries.push((i, j));
            }
        }
        for i in 4..6u32 {
            for j in 5..10u32 {
                entries.push((i, j));
            }
        }
        let sc = SparseBinaryMatrix::from_entries(6, 10, entries);
        ClaimData::new(sc, SparseBinaryMatrix::empty(6, 10)).unwrap()
    }

    #[test]
    fn all_em_variants_agree_without_dependencies() {
        // With an empty D, EM, EM-Social, and EM-Ext are the same model.
        let data = separable();
        let ext = EmExtFinder::default().scores(&data).unwrap();
        let indep = EmIndependent::default().scores(&data).unwrap();
        let social = EmSocial::default().scores(&data).unwrap();
        let social_silence = EmSocial::new(EmConfig::default(), DropMode::AsSilence)
            .scores(&data)
            .unwrap();
        for j in 0..10 {
            assert!((ext[j] - indep[j]).abs() < 1e-6, "EM j={j}");
            assert!((ext[j] - social[j]).abs() < 1e-3, "EM-Social j={j}");
            assert!((ext[j] - social_silence[j]).abs() < 1e-6, "AsSilence j={j}");
        }
        let truth: Vec<bool> = (0..10).map(|j| j < 5).collect();
        assert_eq!(classify(&ext), truth);
        assert_eq!(classify(&social), truth);
    }

    /// A rumor scenario: a single unreliable root claims false assertions
    /// and an echo chamber repeats them; honest independents support the
    /// true ones.
    fn rumor_data() -> (ClaimData, Vec<bool>) {
        let mut entries = Vec::new();
        let mut dep = Vec::new();
        // Sources 0..3: honest, claim true assertions 0..4 (sparsely).
        for i in 0..4u32 {
            for j in 0..5u32 {
                if (i + j) % 2 == 0 {
                    entries.push((i, j));
                }
            }
        }
        // Source 4: rumor root claiming false assertions 5..9.
        for j in 5..10u32 {
            entries.push((4, j));
        }
        // Sources 5..9: echoes of source 4 (dependent claims).
        for i in 5..10u32 {
            for j in 5..10u32 {
                entries.push((i, j));
                dep.push((i, j));
            }
        }
        let sc = SparseBinaryMatrix::from_entries(10, 10, entries);
        let d = SparseBinaryMatrix::from_entries(10, 10, dep);
        let truth = (0..10).map(|j| j < 5).collect();
        (ClaimData::new(sc, d).unwrap(), truth)
    }

    #[test]
    fn dependency_aware_variants_resist_the_echo_chamber() {
        let (data, truth) = rumor_data();
        let ext = EmExtFinder::default().scores(&data).unwrap();
        let indep = EmIndependent::default().scores(&data).unwrap();
        let acc = |scores: &[f64]| {
            classify(scores)
                .iter()
                .zip(&truth)
                .filter(|(p, t)| p == t)
                .count()
        };
        assert!(
            acc(&ext) >= acc(&indep),
            "EM-Ext {} should be at least as accurate as EM {}",
            acc(&ext),
            acc(&indep)
        );
        // EM, blind to dependencies, believes the echoed rumors more than
        // EM-Ext does on average.
        let rumor_belief = |s: &[f64]| s[5..].iter().sum::<f64>() / 5.0;
        assert!(
            rumor_belief(&ext) <= rumor_belief(&indep) + 1e-9,
            "ext {} vs indep {}",
            rumor_belief(&ext),
            rumor_belief(&indep)
        );
    }

    #[test]
    fn em_social_discards_dependent_information() {
        let (data, _) = rumor_data();
        let social = EmSocial::default().scores(&data).unwrap();
        assert_eq!(social.len(), 10);
        for &p in &social {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn bad_config_surfaces() {
        let (data, _) = rumor_data();
        let bad = EmSocial::new(
            EmConfig {
                max_iters: 0,
                ..EmConfig::default()
            },
            DropMode::ExcludeCells,
        );
        assert!(bad.scores(&data).is_err());
    }
}
