//! TruthFinder — Yin, Han & Yu, TKDE 2008.

use socsense_core::{ClaimData, SenseError};

use crate::util::l2_distance;
use crate::FactFinder;

/// The TruthFinder algorithm: source trustworthiness and claim confidence
/// reinforce each other through a log-odds transform.
///
/// Each round computes, for every assertion `c`,
///
/// ```text
/// s(c) = Σ_{s claims c} τ(s)           where τ(s) = -ln(1 - t(s))
/// σ(c) = 1 / (1 + e^(-γ·s(c)))         (dampened confidence)
/// ```
///
/// and then every source's trust `t(s)` becomes the average confidence of
/// its claims. `γ` dampens the unrealistic independence assumption, as in
/// the original paper; implication links between claims (the `ρ` term) are
/// not modelled because binary assertions in this workspace carry no
/// mutual-support structure.
#[derive(Debug, Clone, Copy)]
pub struct TruthFinder {
    /// Initial source trust `t_0`.
    pub initial_trust: f64,
    /// Dampening factor γ.
    pub gamma: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// L2 convergence threshold on the trust vector.
    pub tol: f64,
}

impl Default for TruthFinder {
    fn default() -> Self {
        Self {
            initial_trust: 0.9,
            gamma: 0.3,
            max_iters: 100,
            tol: 1e-6,
        }
    }
}

impl FactFinder for TruthFinder {
    fn name(&self) -> &'static str {
        "Truth-Finder"
    }

    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        if self.initial_trust <= 0.0 || self.initial_trust >= 1.0 || self.initial_trust.is_nan() {
            return Err(SenseError::InvalidProbability {
                name: "initial_trust",
                value: self.initial_trust,
            });
        }
        if self.max_iters == 0 || self.gamma <= 0.0 || self.gamma.is_nan() {
            return Err(SenseError::BadConfig {
                what: "TruthFinder needs positive max_iters and gamma",
            });
        }
        let n = data.source_count();
        let m = data.assertion_count();
        let mut trust = vec![self.initial_trust; n];
        let mut confidence = vec![0.0_f64; m];
        for _ in 0..self.max_iters {
            let prev = trust.clone();
            // τ(s) = -ln(1 - t(s)), kept finite by a tiny margin.
            let tau: Vec<f64> = trust.iter().map(|&t| -(1.0 - t).max(1e-12).ln()).collect();
            for (j, c) in confidence.iter_mut().enumerate() {
                let s: f64 = data
                    .sc()
                    .col(j as u32)
                    .iter()
                    .map(|&i| tau[i as usize])
                    .sum();
                *c = 1.0 / (1.0 + (-self.gamma * s).exp());
            }
            for (i, t) in trust.iter_mut().enumerate() {
                let row = data.sc().row(i as u32);
                if !row.is_empty() {
                    *t =
                        row.iter().map(|&j| confidence[j as usize]).sum::<f64>() / row.len() as f64;
                }
            }
            if l2_distance(&trust, &prev) < self.tol {
                break;
            }
        }
        Ok(confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_matrix::SparseBinaryMatrix;

    #[test]
    fn confidence_grows_with_support() {
        let sc = SparseBinaryMatrix::from_entries(4, 3, [(0, 0), (1, 0), (2, 0), (3, 1)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(4, 3)).unwrap();
        let s = TruthFinder::default().scores(&data).unwrap();
        assert!(s[0] > s[1]);
        assert!(s[1] > s[2]); // one claimant beats zero
                              // Unclaimed assertion sits at the sigmoid midpoint.
        assert!((s[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scores_are_probabilities() {
        let sc = SparseBinaryMatrix::from_entries(3, 2, [(0, 0), (1, 1), (2, 1)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(3, 2)).unwrap();
        for &s in &TruthFinder::default().scores(&data).unwrap() {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn trusted_sources_lift_their_other_claims() {
        // Source 0 co-claims the popular assertion 0, then alone claims 1.
        // Source 3 alone claims 2 and nothing else. Source 0 should earn
        // more trust, so assertion 1 > assertion 2.
        let sc = SparseBinaryMatrix::from_entries(4, 3, [(0, 0), (1, 0), (2, 0), (0, 1), (3, 2)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(4, 3)).unwrap();
        let s = TruthFinder::default().scores(&data).unwrap();
        assert!(s[1] > s[2], "{s:?}");
    }

    #[test]
    fn invalid_config_rejected() {
        let sc = SparseBinaryMatrix::from_entries(1, 1, [(0, 0)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(1, 1)).unwrap();
        assert!(TruthFinder {
            initial_trust: 1.0,
            ..TruthFinder::default()
        }
        .scores(&data)
        .is_err());
        assert!(TruthFinder {
            gamma: 0.0,
            ..TruthFinder::default()
        }
        .scores(&data)
        .is_err());
    }
}
