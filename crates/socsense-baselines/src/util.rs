//! Shared helpers for the iterative heuristics.

/// Scales a non-negative score vector so its maximum is 1.
///
/// Leaves an all-zero (or empty) vector untouched. This is the
/// normalisation Pasternack & Roth apply between Sums / Average·Log
/// iterations to stop the scores diverging.
pub(crate) fn max_normalize(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(0.0_f64, f64::max);
    if max > 0.0 {
        for s in scores.iter_mut() {
            *s /= max;
        }
    }
}

/// L2 distance between two equally sized vectors.
pub(crate) fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_normalize_scales_to_unit_max() {
        let mut v = vec![2.0, 4.0, 1.0];
        max_normalize(&mut v);
        assert_eq!(v, vec![0.5, 1.0, 0.25]);
    }

    #[test]
    fn max_normalize_ignores_zero_vector() {
        let mut v = vec![0.0, 0.0];
        max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn l2_distance_basic() {
        assert_eq!(l2_distance(&[0.0, 3.0], &[4.0, 0.0]), 5.0);
        assert_eq!(l2_distance(&[1.0], &[1.0]), 0.0);
    }
}
