//! Sums (Hubs & Authorities) — Pasternack & Roth 2010, after Kleinberg.

use socsense_core::{ClaimData, SenseError};

use crate::util::{l2_distance, max_normalize};
use crate::FactFinder;

/// The Sums fact-finder: source trust and assertion belief reinforce each
/// other additively.
///
/// ```text
/// B(c) = Σ_{s claims c} T(s)        T(s) = Σ_{c claimed by s} B(c)
/// ```
///
/// Both vectors are max-normalised each round to keep the fixed point
/// finite, exactly as in Pasternack & Roth's formulation of Kleinberg's
/// hubs-and-authorities on the source-claim bipartite graph.
#[derive(Debug, Clone, Copy)]
pub struct Sums {
    /// Iteration cap.
    pub max_iters: usize,
    /// L2 convergence threshold on the belief vector.
    pub tol: f64,
}

impl Default for Sums {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

impl FactFinder for Sums {
    fn name(&self) -> &'static str {
        "Sums"
    }

    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        if self.max_iters == 0 {
            return Err(SenseError::BadConfig {
                what: "Sums max_iters must be positive",
            });
        }
        let n = data.source_count();
        let m = data.assertion_count();
        let mut trust = vec![1.0_f64; n];
        let mut belief = vec![0.0_f64; m];
        for _ in 0..self.max_iters {
            let prev = belief.clone();
            for (j, b) in belief.iter_mut().enumerate() {
                *b = data
                    .sc()
                    .col(j as u32)
                    .iter()
                    .map(|&i| trust[i as usize])
                    .sum();
            }
            max_normalize(&mut belief);
            for (i, t) in trust.iter_mut().enumerate() {
                *t = data
                    .sc()
                    .row(i as u32)
                    .iter()
                    .map(|&j| belief[j as usize])
                    .sum();
            }
            max_normalize(&mut trust);
            if l2_distance(&belief, &prev) < self.tol {
                break;
            }
        }
        Ok(belief)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_matrix::SparseBinaryMatrix;

    #[test]
    fn well_supported_assertion_wins() {
        let sc = SparseBinaryMatrix::from_entries(3, 2, [(0, 0), (1, 0), (2, 1)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(3, 2)).unwrap();
        let s = Sums::default().scores(&data).unwrap();
        assert!(s[0] > s[1]);
        assert_eq!(s[0], 1.0); // max-normalised
    }

    #[test]
    fn trusted_company_boosts_claims() {
        // Assertions 0 and 1 both have 1 claimant, but assertion 1's
        // claimant also makes the widely supported assertion 2 -> higher
        // trust -> higher belief for assertion 1.
        let sc = SparseBinaryMatrix::from_entries(4, 3, [(0, 0), (1, 1), (1, 2), (2, 2), (3, 2)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(4, 3)).unwrap();
        let s = Sums::default().scores(&data).unwrap();
        assert!(s[1] > s[0], "{s:?}");
    }

    #[test]
    fn empty_assertions_score_zero() {
        let sc = SparseBinaryMatrix::from_entries(2, 2, [(0, 0)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(2, 2)).unwrap();
        let s = Sums::default().scores(&data).unwrap();
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn zero_iters_rejected() {
        let sc = SparseBinaryMatrix::from_entries(1, 1, [(0, 0)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(1, 1)).unwrap();
        let bad = Sums {
            max_iters: 0,
            ..Sums::default()
        };
        assert!(bad.scores(&data).is_err());
    }
}
