//! Average·Log — Pasternack & Roth 2010.

use socsense_core::{ClaimData, SenseError};

use crate::util::{l2_distance, max_normalize};
use crate::FactFinder;

/// The Average·Log fact-finder, a Sums variant that damps prolific
/// sources: a source's trust is its *average* claim belief, re-weighted by
/// the logarithm of how much it talks.
///
/// ```text
/// T(s) = ln(1 + |C_s|) · ( Σ_{c ∈ C_s} B(c) / |C_s| )
/// B(c) = Σ_{s claims c} T(s)
/// ```
///
/// We use `ln(1 + ·)` rather than the original `ln(·)` so single-claim
/// sources keep a small positive weight instead of being zeroed out —
/// at Twitter scale most sources make exactly one claim, and `ln 1 = 0`
/// would silence nearly the whole network.
#[derive(Debug, Clone, Copy)]
pub struct AverageLog {
    /// Iteration cap.
    pub max_iters: usize,
    /// L2 convergence threshold on the belief vector.
    pub tol: f64,
}

impl Default for AverageLog {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

impl FactFinder for AverageLog {
    fn name(&self) -> &'static str {
        "Average.Log"
    }

    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        if self.max_iters == 0 {
            return Err(SenseError::BadConfig {
                what: "AverageLog max_iters must be positive",
            });
        }
        let n = data.source_count();
        let m = data.assertion_count();
        let log_weight: Vec<f64> = (0..n as u32)
            .map(|i| (1.0 + data.sc().row_nnz(i) as f64).ln())
            .collect();
        let mut trust = vec![1.0_f64; n];
        let mut belief = vec![0.0_f64; m];
        for _ in 0..self.max_iters {
            let prev = belief.clone();
            for (j, b) in belief.iter_mut().enumerate() {
                *b = data
                    .sc()
                    .col(j as u32)
                    .iter()
                    .map(|&i| trust[i as usize])
                    .sum();
            }
            max_normalize(&mut belief);
            for (i, t) in trust.iter_mut().enumerate() {
                let row = data.sc().row(i as u32);
                *t = if row.is_empty() {
                    0.0
                } else {
                    let avg: f64 =
                        row.iter().map(|&j| belief[j as usize]).sum::<f64>() / row.len() as f64;
                    log_weight[i] * avg
                };
            }
            max_normalize(&mut trust);
            if l2_distance(&belief, &prev) < self.tol {
                break;
            }
        }
        Ok(belief)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_matrix::SparseBinaryMatrix;

    #[test]
    fn support_still_dominates() {
        let sc = SparseBinaryMatrix::from_entries(3, 2, [(0, 0), (1, 0), (2, 1)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(3, 2)).unwrap();
        let s = AverageLog::default().scores(&data).unwrap();
        assert!(s[0] > s[1]);
    }

    #[test]
    fn spamming_is_damped_relative_to_sums() {
        // Source 0 claims only assertion 0. Source 1 sprays 6 assertions
        // including assertion 1. Under Sums the spammer's trust grows with
        // raw volume; Average.Log divides by the claim count, so the
        // focused source's assertion fares *relatively* better here.
        let mut entries = vec![(0u32, 0u32)];
        for j in 1..7u32 {
            entries.push((1, j));
        }
        // A shared extra supporter keeps both assertions comparable.
        entries.push((2, 0));
        entries.push((2, 1));
        let sc = SparseBinaryMatrix::from_entries(3, 7, entries);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(3, 7)).unwrap();
        let avg = AverageLog::default().scores(&data).unwrap();
        let sums = crate::Sums::default().scores(&data).unwrap();
        let avg_ratio = avg[0] / avg[1];
        let sums_ratio = sums[0] / sums[1];
        assert!(
            avg_ratio >= sums_ratio,
            "Average.Log ratio {avg_ratio} should beat Sums ratio {sums_ratio}"
        );
    }

    #[test]
    fn silent_source_has_zero_effect() {
        let sc = SparseBinaryMatrix::from_entries(3, 1, [(0, 0)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(3, 1)).unwrap();
        let s = AverageLog::default().scores(&data).unwrap();
        assert_eq!(s, vec![1.0]);
    }
}
