//! Baseline fact-finders evaluated against EM-Ext in the paper (Sec. V).
//!
//! All algorithms consume the same [`ClaimData`] (`SC`/`D` pair) and
//! expose a uniform interface, [`FactFinder`]: a per-assertion *score*,
//! higher meaning more credible. The EM-family scores are genuine
//! posterior probabilities `P(C_j = 1 | ·)`; the heuristic scores are
//! normalised credences suitable for ranking (the paper evaluates the
//! heuristics by their top-100 lists, not by thresholding).
//!
//! | implementation | paper's name | provenance |
//! |---|---|---|
//! | [`EmExtFinder`] | EM-Ext | this paper (Algorithm 2) |
//! | [`EmIndependent`] | EM | Wang et al., IPSN 2012 — all claims treated independent |
//! | [`EmSocial`] | EM-Social | Wang et al., IPSN 2014 — dependent claims discarded |
//! | [`Voting`] | Voting | claim counting |
//! | [`Sums`] | Sums | Kleinberg hubs/authorities, per Pasternack & Roth 2010 |
//! | [`AverageLog`] | Average.Log | Pasternack & Roth 2010 |
//! | [`TruthFinder`] | Truth-Finder | Yin et al., TKDE 2008 |
//!
//! # Example
//!
//! ```
//! use socsense_baselines::{FactFinder, Voting};
//! use socsense_core::ClaimData;
//! use socsense_matrix::SparseBinaryMatrix;
//!
//! let sc = SparseBinaryMatrix::from_entries(3, 2, [(0, 0), (1, 0), (2, 1)]);
//! let d = SparseBinaryMatrix::empty(3, 2);
//! let data = ClaimData::new(sc, d)?;
//! let scores = Voting::default().scores(&data)?;
//! assert!(scores[0] > scores[1]); // assertion 0 has more support
//! # Ok::<(), socsense_core::SenseError>(())
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avglog;
mod em_variants;
mod sums;
mod truthfinder;
mod util;
mod voting;

pub use avglog::AverageLog;
pub use em_variants::{DropMode, EmExtFinder, EmIndependent, EmSocial};
pub use sums::Sums;
pub use truthfinder::TruthFinder;
pub use voting::Voting;

use socsense_core::{ClaimData, SenseError};

/// A truth-discovery algorithm producing per-assertion credence scores.
///
/// Higher scores mean "more likely true". EM-family implementations
/// return posterior probabilities; heuristics return normalised scores in
/// `[0, 1]`.
pub trait FactFinder {
    /// Short display name matching the paper's legends (e.g. `"EM-Ext"`).
    fn name(&self) -> &'static str;

    /// Scores every assertion in `data`.
    ///
    /// # Errors
    ///
    /// Implementations surface configuration and dimension errors as
    /// [`SenseError`].
    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError>;

    /// Hard true/false labels: score strictly above `0.5`.
    ///
    /// Meaningful for the EM family (posterior thresholding, as the paper
    /// does in Figs. 7–10); for ranking heuristics prefer
    /// [`top_k`](FactFinder::top_k).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`scores`](FactFinder::scores).
    fn classify(&self, data: &ClaimData) -> Result<Vec<bool>, SenseError> {
        Ok(self.scores(data)?.into_iter().map(|s| s > 0.5).collect())
    }

    /// Scores used for *ranking*. Defaults to [`scores`](FactFinder::scores);
    /// the EM family overrides this with posterior **log-odds**, which
    /// order identically but never saturate — at Twitter scale many
    /// posteriors round to exactly `1.0` in `f64`, and ranking ties would
    /// otherwise be broken arbitrarily.
    ///
    /// # Errors
    ///
    /// Same as [`scores`](FactFinder::scores).
    fn ranking_scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        self.scores(data)
    }

    /// Indices of the `k` highest-scoring assertions (by
    /// [`ranking_scores`](FactFinder::ranking_scores)), best first; ties
    /// break toward the lower assertion id so rankings are deterministic.
    ///
    /// This is the paper's Fig. 11 protocol (top-100 per algorithm).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`scores`](FactFinder::scores).
    fn top_k(&self, data: &ClaimData, k: usize) -> Result<Vec<u32>, SenseError> {
        let scores = self.ranking_scores(data)?;
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        Ok(idx)
    }
}

/// Constructs one boxed instance of each of the paper's seven algorithms,
/// in the order of Fig. 11's legend.
pub fn all_finders() -> Vec<Box<dyn FactFinder>> {
    vec![
        Box::new(EmExtFinder::default()),
        Box::new(EmSocial::default()),
        Box::new(EmIndependent::default()),
        Box::new(Voting::default()),
        Box::new(Sums::default()),
        Box::new(AverageLog::default()),
        Box::new(TruthFinder::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_matrix::SparseBinaryMatrix;

    fn data() -> ClaimData {
        let sc = SparseBinaryMatrix::from_entries(
            4,
            3,
            [(0, 0), (1, 0), (2, 0), (3, 1), (0, 2), (1, 2)],
        );
        let d = SparseBinaryMatrix::empty(4, 3);
        ClaimData::new(sc, d).unwrap()
    }

    #[test]
    fn all_finders_produce_full_score_vectors() {
        let data = data();
        for finder in all_finders() {
            let scores = finder.scores(&data).unwrap();
            assert_eq!(scores.len(), 3, "{}", finder.name());
            assert!(
                scores.iter().all(|s| s.is_finite()),
                "{} produced non-finite scores",
                finder.name()
            );
        }
    }

    #[test]
    fn top_k_is_sorted_and_deterministic() {
        let data = data();
        let v = Voting::default();
        let top = v.top_k(&data, 2).unwrap();
        assert_eq!(top, vec![0, 2]); // support 3, then 2, then 1
        let full = v.top_k(&data, 10).unwrap();
        assert_eq!(full, vec![0, 2, 1]);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = all_finders().iter().map(|f| f.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
