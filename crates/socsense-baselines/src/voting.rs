//! Voting: credence by raw claim count.

use socsense_core::{ClaimData, SenseError};

use crate::util::max_normalize;
use crate::FactFinder;

/// Ranks assertions by the number of sources asserting them, normalised
/// to `[0, 1]`.
///
/// The weakest baseline in the paper: it is exactly the estimator that
/// rumors exploit, since every repetition counts as independent support.
///
/// # Example
///
/// ```
/// use socsense_baselines::{FactFinder, Voting};
/// use socsense_core::ClaimData;
/// use socsense_matrix::SparseBinaryMatrix;
///
/// let sc = SparseBinaryMatrix::from_entries(2, 2, [(0, 1), (1, 1)]);
/// let data = ClaimData::new(sc, SparseBinaryMatrix::empty(2, 2))?;
/// assert_eq!(Voting::default().scores(&data)?, vec![0.0, 1.0]);
/// # Ok::<(), socsense_core::SenseError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Voting {
    _private: (),
}

impl FactFinder for Voting {
    fn name(&self) -> &'static str {
        "Voting"
    }

    fn scores(&self, data: &ClaimData) -> Result<Vec<f64>, SenseError> {
        let mut scores: Vec<f64> = (0..data.assertion_count() as u32)
            .map(|j| data.sc().col_nnz(j) as f64)
            .collect();
        max_normalize(&mut scores);
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_matrix::SparseBinaryMatrix;

    #[test]
    fn counts_claims_per_assertion() {
        let sc = SparseBinaryMatrix::from_entries(3, 3, [(0, 0), (1, 0), (2, 0), (0, 1)]);
        let data = ClaimData::new(sc, SparseBinaryMatrix::empty(3, 3)).unwrap();
        let s = Voting::default().scores(&data).unwrap();
        assert_eq!(s, vec![1.0, 1.0 / 3.0, 0.0]);
    }

    #[test]
    fn ignores_dependency_information() {
        let sc = SparseBinaryMatrix::from_entries(2, 1, [(0, 0), (1, 0)]);
        let d_full = SparseBinaryMatrix::from_entries(2, 1, [(1, 0)]);
        let with = ClaimData::new(sc.clone(), d_full).unwrap();
        let without = ClaimData::new(sc, SparseBinaryMatrix::empty(2, 1)).unwrap();
        let v = Voting::default();
        assert_eq!(v.scores(&with).unwrap(), v.scores(&without).unwrap());
    }
}
