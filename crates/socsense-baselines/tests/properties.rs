//! Property-based tests: every fact-finder must be total, deterministic,
//! and well-behaved on arbitrary claim matrices.

use proptest::collection::vec;
use proptest::prelude::*;
use socsense_baselines::{all_finders, AverageLog, FactFinder, Sums, TruthFinder, Voting};
use socsense_core::ClaimData;
use socsense_matrix::SparseBinaryMatrix;

fn arbitrary_data() -> impl Strategy<Value = ClaimData> {
    (2u32..12, 2u32..15).prop_flat_map(|(n, m)| {
        let sc_entries = vec((0..n, 0..m), 1..60);
        let d_entries = vec((0..n, 0..m), 0..40);
        (Just(n), Just(m), sc_entries, d_entries).prop_map(|(n, m, sc_e, d_e)| {
            ClaimData::new(
                SparseBinaryMatrix::from_entries(n, m, sc_e),
                SparseBinaryMatrix::from_entries(n, m, d_e),
            )
            .expect("shapes match")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm returns one finite score per assertion, twice the
    /// same way.
    #[test]
    fn all_finders_are_total_and_deterministic(data in arbitrary_data()) {
        for finder in all_finders() {
            let s1 = finder.scores(&data).unwrap();
            prop_assert_eq!(s1.len(), data.assertion_count(), "{}", finder.name());
            prop_assert!(s1.iter().all(|v| v.is_finite()), "{}", finder.name());
            let s2 = finder.scores(&data).unwrap();
            prop_assert_eq!(s1, s2, "{} not deterministic", finder.name());
        }
    }

    /// Heuristic scores live in [0, 1]; EM scores are probabilities.
    #[test]
    fn scores_are_bounded(data in arbitrary_data()) {
        let heuristics: [Box<dyn FactFinder>; 4] = [
            Box::new(Voting::default()),
            Box::new(Sums::default()),
            Box::new(AverageLog::default()),
            Box::new(TruthFinder::default()),
        ];
        for finder in heuristics {
            for &s in &finder.scores(&data).unwrap() {
                prop_assert!((0.0..=1.0).contains(&s), "{}: {s}", finder.name());
            }
        }
    }

    /// top_k returns a ranking: unique ids, ordered by non-increasing
    /// ranking score, stable under repetition, and a prefix property
    /// (top-k is a prefix of top-(k+1) up to ties).
    #[test]
    fn top_k_is_a_consistent_ranking(data in arbitrary_data(), k in 1usize..8) {
        for finder in all_finders() {
            let top = finder.top_k(&data, k).unwrap();
            prop_assert!(top.len() <= k);
            let mut dedup = top.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), top.len(), "{} duplicated ids", finder.name());
            let scores = finder.ranking_scores(&data).unwrap();
            for w in top.windows(2) {
                prop_assert!(
                    scores[w[0] as usize] >= scores[w[1] as usize],
                    "{} ranking out of order",
                    finder.name()
                );
            }
            let bigger = finder.top_k(&data, k + 1).unwrap();
            prop_assert_eq!(&bigger[..top.len().min(bigger.len())], &top[..], "{} prefix", finder.name());
        }
    }

    /// ranking_scores orders identically to scores wherever scores are
    /// strictly ordered (the log-odds transform is monotone).
    #[test]
    fn ranking_scores_are_monotone_in_scores(data in arbitrary_data()) {
        for finder in all_finders() {
            let s = finder.scores(&data).unwrap();
            let r = finder.ranking_scores(&data).unwrap();
            for a in 0..s.len() {
                for b in 0..s.len() {
                    if s[a] > s[b] + 1e-9 {
                        prop_assert!(
                            r[a] >= r[b] - 1e-9,
                            "{}: scores {} > {} but ranking {} < {}",
                            finder.name(), s[a], s[b], r[a], r[b]
                        );
                    }
                }
            }
        }
    }

    /// classify agrees with thresholding scores at 0.5.
    #[test]
    fn classify_matches_score_threshold(data in arbitrary_data()) {
        for finder in all_finders() {
            let labels = finder.classify(&data).unwrap();
            let scores = finder.scores(&data).unwrap();
            for (l, s) in labels.iter().zip(&scores) {
                prop_assert_eq!(*l, *s > 0.5, "{}", finder.name());
            }
        }
    }
}
