//! Property-based tests for the graph substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use socsense_graph::{
    build_matrices, dependent_assertions, preferential_attachment, DependencyForest, FollowerGraph,
    TimedClaim,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_graph() -> impl Strategy<Value = FollowerGraph> {
    (2u32..20).prop_flat_map(|n| {
        vec((0..n, 0..n), 0..60).prop_map(move |edges| {
            let mut g = FollowerGraph::new(n);
            for (a, b) in edges {
                if a != b {
                    g.add_follow(a, b);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward and reverse adjacency are mirror images.
    #[test]
    fn follower_graph_indexes_agree(g in arbitrary_graph()) {
        let n = g.node_count();
        let mut edge_count = 0;
        for i in 0..n {
            for &k in g.ancestors(i) {
                prop_assert!(g.followers(k).contains(&i));
                prop_assert!(g.follows(i, k));
                edge_count += 1;
            }
        }
        prop_assert_eq!(edge_count, g.edge_count());
        // Reconstruction through from_edges is lossless.
        let rebuilt = FollowerGraph::from_edges(n, g.edges()).unwrap();
        prop_assert_eq!(rebuilt, g);
    }

    /// D is always a sub-relation of "some ancestor asserted this", and
    /// every dependent *claim* has a strictly earlier ancestor claim.
    #[test]
    fn dependency_matrix_is_sound(
        g in arbitrary_graph(),
        raw_claims in vec((0u32..20, 0u32..10, 0u64..50), 1..60),
    ) {
        let n = g.node_count();
        let m = 10u32;
        let claims: Vec<TimedClaim> = raw_claims
            .into_iter()
            .map(|(s, a, t)| TimedClaim::new(s % n, a, t))
            .collect();
        let (sc, d) = build_matrices(n, m, &claims, &g);
        // Every claim in the log appears in SC.
        for c in &claims {
            prop_assert!(sc.contains(c.source, c.assertion));
        }
        for (i, j) in d.entries() {
            // Dependent cell ⇒ some ancestor claimed j.
            let anc_claims: Vec<&TimedClaim> = claims
                .iter()
                .filter(|c| c.assertion == j && g.follows(i, c.source))
                .collect();
            prop_assert!(!anc_claims.is_empty(), "dep cell without ancestor claim");
            prop_assert!(dependent_assertions(i, &claims, &g).contains(&j));
            if sc.contains(i, j) {
                // Dependent claim ⇒ strictly earlier ancestor claim than
                // i's own earliest.
                let own = claims
                    .iter()
                    .filter(|c| c.source == i && c.assertion == j)
                    .map(|c| c.time)
                    .min()
                    .expect("claimed");
                prop_assert!(anc_claims.iter().any(|c| c.time < own));
            }
        }
        // Converse for claims: independent claim ⇒ no strictly earlier
        // ancestor claim.
        for (i, j) in sc.entries() {
            if !d.contains(i, j) {
                let own = claims
                    .iter()
                    .filter(|c| c.source == i && c.assertion == j)
                    .map(|c| c.time)
                    .min()
                    .expect("claimed");
                let earlier = claims
                    .iter()
                    .any(|c| c.assertion == j && g.follows(i, c.source) && c.time < own);
                prop_assert!(!earlier, "independent claim with earlier ancestor claim");
            }
        }
    }

    /// Forests partition sources for every valid (n, τ).
    #[test]
    fn forest_partitions_sources(n in 1u32..40, tau_raw in 1u32..40, seed in 0u64..100) {
        let tau = tau_raw.min(n);
        let f = DependencyForest::random(n, tau, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(f.tree_count(), tau);
        prop_assert_eq!(f.roots().len() + f.leaves().len(), n as usize);
        for s in 0..n {
            prop_assert!(f.is_root(f.root_of(s)));
            prop_assert_eq!(f.is_root(s), f.root_of(s) == s);
        }
        let g = f.to_follower_graph();
        prop_assert_eq!(g.edge_count(), (n - tau) as usize);
    }

    /// Preferential attachment yields the promised out-degrees.
    #[test]
    fn preferential_attachment_degrees(n in 2u32..60, k in 1u32..5, seed in 0u64..100) {
        let g = preferential_attachment(n, k, &mut StdRng::seed_from_u64(seed));
        for i in 0..n {
            prop_assert_eq!(g.followee_count(i), k.min(i) as usize, "node {}", i);
        }
    }
}
