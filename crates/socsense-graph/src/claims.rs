//! Timestamped claims and the construction of the `SC` and `D` matrices.
//!
//! The paper's estimator consumes two `n × m` binary matrices:
//!
//! * `SC[i, j] = 1` — source `i` asserted `C_j` (at least once);
//! * `D[i, j] = 1` — the *(potential)* claim of `i` on `C_j` is dependent.
//!
//! For a cell where `i` actually claimed `j`, the paper's rule applies
//! directly: the claim is dependent iff an ancestor of `i` asserted `C_j`
//! strictly earlier. The paper leaves `D` undefined on non-claim cells, yet
//! the EM M-step (Eqs. 10–13) partitions *non-claims* by `D` as well; we
//! complete the definition in the natural way — a non-claim cell is
//! dependent iff an ancestor asserted `C_j` at any time (had `i` spoken, it
//! would have spoken after hearing its ancestor). This choice is recorded
//! in `DESIGN.md` §4.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use socsense_matrix::{SparseBinaryMatrix, SparseBinaryMatrixBuilder};

use crate::follow::FollowerGraph;

/// One act of sensing: `source` asserted `assertion` at `time`.
///
/// Times are opaque monotone ticks; only their relative order matters.
/// Repeated claims by the same source on the same assertion collapse to
/// the earliest occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimedClaim {
    /// Claiming source id.
    pub source: u32,
    /// Asserted statement id.
    pub assertion: u32,
    /// Claim timestamp (monotone tick).
    pub time: u64,
}

impl TimedClaim {
    /// Creates a claim record.
    pub fn new(source: u32, assertion: u32, time: u64) -> Self {
        Self {
            source,
            assertion,
            time,
        }
    }
}

/// Builds the source-claim matrix `SC` and dependency matrix `D` from a
/// timestamped claim log and the follow relation.
///
/// Returns `(sc, d)`, both `n × m`. The dependency rule is described in
/// the module docs; ties in time do **not** create dependencies (a claim
/// is dependent only on *strictly earlier* ancestor claims, matching the
/// paper's walk-through where simultaneous tweets stay independent).
///
/// # Panics
///
/// Panics if a claim references `source >= n` or `assertion >= m`.
pub fn build_matrices(
    n: u32,
    m: u32,
    claims: &[TimedClaim],
    graph: &FollowerGraph,
) -> (SparseBinaryMatrix, SparseBinaryMatrix) {
    // Earliest claim time per (source, assertion).
    // BTreeMap: the builder sorts entries anyway, but iterating in key
    // order below keeps this function free of hash-order escapes.
    let mut first_claim: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for c in claims {
        assert!(
            c.source < n && c.assertion < m,
            "claim ({}, {}) out of bounds for {}x{}",
            c.source,
            c.assertion,
            n,
            m
        );
        first_claim
            .entry((c.source, c.assertion))
            .and_modify(|t| *t = (*t).min(c.time))
            .or_insert(c.time);
    }

    let mut sc_builder = SparseBinaryMatrixBuilder::with_capacity(n, m, first_claim.len());
    for &(s, a) in first_claim.keys() {
        sc_builder.insert(s, a);
    }
    let sc = sc_builder.build();

    // Earliest ancestor claim time per (follower, assertion).
    let mut anc_time: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for (&(s, a), &t) in &first_claim {
        for &f in graph.followers(s) {
            anc_time
                .entry((f, a))
                .and_modify(|tt| *tt = (*tt).min(t))
                .or_insert(t);
        }
    }

    let mut d_builder = SparseBinaryMatrixBuilder::with_capacity(n, m, anc_time.len());
    for (&(f, a), &t_anc) in &anc_time {
        match first_claim.get(&(f, a)) {
            // Claim cell: dependent only if an ancestor spoke strictly first.
            Some(&t_own) if t_anc >= t_own => {}
            _ => d_builder.insert(f, a),
        }
    }
    (sc, d_builder.build())
}

/// The sorted set of assertions claimed by any ancestor of `source`.
///
/// This is the "Dependent Assertion" candidate set of the paper's Sec. V-A
/// generator, and also `D`'s support restricted to row `source` before the
/// who-spoke-first refinement.
pub fn dependent_assertions(source: u32, claims: &[TimedClaim], graph: &FollowerGraph) -> Vec<u32> {
    let mut out: Vec<u32> = claims
        .iter()
        .filter(|c| graph.follows(source, c.source))
        .map(|c| c.assertion)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1: John(0) follows Sally(1); Heather(2) independent.
    fn fig1() -> (FollowerGraph, Vec<TimedClaim>) {
        let mut g = FollowerGraph::new(3);
        g.add_follow(0, 1);
        let claims = vec![
            TimedClaim::new(1, 0, 1), // Sally -> C1 @ t1
            TimedClaim::new(2, 1, 1), // Heather -> C2 @ t1
            TimedClaim::new(0, 0, 2), // John -> C1 @ t2 (dependent)
            TimedClaim::new(0, 1, 3), // John -> C2 @ t3 (independent)
        ];
        (g, claims)
    }

    #[test]
    fn fig1_walkthrough_matches_paper() {
        let (g, claims) = fig1();
        let (sc, d) = build_matrices(3, 2, &claims, &g);
        // SC: John claims both, Sally C1, Heather C2.
        assert!(sc.contains(0, 0) && sc.contains(0, 1));
        assert!(sc.contains(1, 0) && !sc.contains(1, 1));
        assert!(!sc.contains(2, 0) && sc.contains(2, 1));
        // D: only John's repeat of Sally's claim is dependent.
        assert!(d.contains(0, 0));
        assert!(!d.contains(0, 1));
        assert!(!d.contains(1, 0));
        assert!(!d.contains(2, 1));
    }

    #[test]
    fn simultaneous_claims_stay_independent() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(0, 1);
        let claims = vec![TimedClaim::new(1, 0, 5), TimedClaim::new(0, 0, 5)];
        let (_, d) = build_matrices(2, 1, &claims, &g);
        assert!(!d.contains(0, 0), "tie in time must not be dependent");
    }

    #[test]
    fn non_claim_cell_is_dependent_when_ancestor_spoke() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(0, 1);
        let claims = vec![TimedClaim::new(1, 0, 1)]; // only the ancestor speaks
        let (sc, d) = build_matrices(2, 1, &claims, &g);
        assert!(!sc.contains(0, 0));
        assert!(d.contains(0, 0), "silent follower cell is a dependent cell");
    }

    #[test]
    fn repeated_claims_collapse_to_earliest() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(0, 1);
        // Follower speaks at t=1 then again at t=10; ancestor at t=5.
        let claims = vec![
            TimedClaim::new(0, 0, 10),
            TimedClaim::new(0, 0, 1),
            TimedClaim::new(1, 0, 5),
        ];
        let (sc, d) = build_matrices(2, 1, &claims, &g);
        assert_eq!(sc.nnz(), 2);
        // Earliest own claim (t=1) precedes the ancestor's (t=5): independent.
        assert!(!d.contains(0, 0));
    }

    #[test]
    fn multiple_ancestors_earliest_wins() {
        let mut g = FollowerGraph::new(3);
        g.add_follow(0, 1);
        g.add_follow(0, 2);
        let claims = vec![
            TimedClaim::new(1, 0, 8),
            TimedClaim::new(2, 0, 2),
            TimedClaim::new(0, 0, 5),
        ];
        let (_, d) = build_matrices(3, 1, &claims, &g);
        // Ancestor 2 spoke at t=2 < 5, so dependent even though ancestor 1 was later.
        assert!(d.contains(0, 0));
    }

    #[test]
    fn dependent_assertions_lists_ancestor_claims() {
        let (g, claims) = fig1();
        assert_eq!(dependent_assertions(0, &claims, &g), vec![0]);
        assert!(dependent_assertions(1, &claims, &g).is_empty());
        assert!(dependent_assertions(2, &claims, &g).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_claim_panics() {
        let g = FollowerGraph::new(1);
        build_matrices(1, 1, &[TimedClaim::new(0, 7, 0)], &g);
    }

    #[test]
    fn empty_claim_log_yields_empty_matrices() {
        let g = FollowerGraph::new(3);
        let (sc, d) = build_matrices(3, 2, &[], &g);
        assert_eq!(sc.nnz(), 0);
        assert_eq!(d.nnz(), 0);
    }
}
