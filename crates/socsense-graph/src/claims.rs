//! Timestamped claims and the construction of the `SC` and `D` matrices.
//!
//! The paper's estimator consumes two `n × m` binary matrices:
//!
//! * `SC[i, j] = 1` — source `i` asserted `C_j` (at least once);
//! * `D[i, j] = 1` — the *(potential)* claim of `i` on `C_j` is dependent.
//!
//! For a cell where `i` actually claimed `j`, the paper's rule applies
//! directly: the claim is dependent iff an ancestor of `i` asserted `C_j`
//! strictly earlier. The paper leaves `D` undefined on non-claim cells, yet
//! the EM M-step (Eqs. 10–13) partitions *non-claims* by `D` as well; we
//! complete the definition in the natural way — a non-claim cell is
//! dependent iff an ancestor asserted `C_j` at any time (had `i` spoken, it
//! would have spoken after hearing its ancestor). This choice is recorded
//! in `DESIGN.md` §4.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use socsense_matrix::{SparseBinaryMatrix, SparseBinaryMatrixBuilder};

use crate::follow::FollowerGraph;

/// One act of sensing: `source` asserted `assertion` at `time`.
///
/// Times are opaque monotone ticks; only their relative order matters.
/// Repeated claims by the same source on the same assertion collapse to
/// the earliest occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimedClaim {
    /// Claiming source id.
    pub source: u32,
    /// Asserted statement id.
    pub assertion: u32,
    /// Claim timestamp (monotone tick).
    pub time: u64,
}

impl TimedClaim {
    /// Creates a claim record.
    pub fn new(source: u32, assertion: u32, time: u64) -> Self {
        Self {
            source,
            assertion,
            time,
        }
    }
}

/// Builds the source-claim matrix `SC` and dependency matrix `D` from a
/// timestamped claim log and the follow relation.
///
/// Returns `(sc, d)`, both `n × m`. The dependency rule is described in
/// the module docs; ties in time do **not** create dependencies (a claim
/// is dependent only on *strictly earlier* ancestor claims, matching the
/// paper's walk-through where simultaneous tweets stay independent).
///
/// # Panics
///
/// Panics if a claim references `source >= n` or `assertion >= m`.
pub fn build_matrices(
    n: u32,
    m: u32,
    claims: &[TimedClaim],
    graph: &FollowerGraph,
) -> (SparseBinaryMatrix, SparseBinaryMatrix) {
    // Earliest claim time per (source, assertion).
    // BTreeMap: the builder sorts entries anyway, but iterating in key
    // order below keeps this function free of hash-order escapes.
    let mut first_claim: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for c in claims {
        assert!(
            c.source < n && c.assertion < m,
            "claim ({}, {}) out of bounds for {}x{}",
            c.source,
            c.assertion,
            n,
            m
        );
        first_claim
            .entry((c.source, c.assertion))
            .and_modify(|t| *t = (*t).min(c.time))
            .or_insert(c.time);
    }

    // Earliest ancestor claim time per (follower, assertion).
    let mut anc_time: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for (&(s, a), &t) in &first_claim {
        for &f in graph.followers(s) {
            anc_time
                .entry((f, a))
                .and_modify(|tt| *tt = (*tt).min(t))
                .or_insert(t);
        }
    }

    matrices_from_maps(n, m, &first_claim, &anc_time)
}

/// Materialises `(SC, D)` from the earliest-claim and earliest-ancestor
/// maps. Shared by [`build_matrices`] and [`ClaimLogIndex::build`] so the
/// batch and incremental paths cannot drift: identical maps produce
/// identical (structurally `==`) matrices.
fn matrices_from_maps(
    n: u32,
    m: u32,
    first_claim: &BTreeMap<(u32, u32), u64>,
    anc_time: &BTreeMap<(u32, u32), u64>,
) -> (SparseBinaryMatrix, SparseBinaryMatrix) {
    let mut sc_builder = SparseBinaryMatrixBuilder::with_capacity(n, m, first_claim.len());
    for &(s, a) in first_claim.keys() {
        sc_builder.insert(s, a);
    }
    let sc = sc_builder.build();

    let mut d_builder = SparseBinaryMatrixBuilder::with_capacity(n, m, anc_time.len());
    for (&(f, a), &t_anc) in anc_time {
        match first_claim.get(&(f, a)) {
            // Claim cell: dependent only if an ancestor spoke strictly first.
            Some(&t_own) if t_anc >= t_own => {}
            _ => d_builder.insert(f, a),
        }
    }
    (sc, d_builder.build())
}

/// The `(SC, D)` membership of one `(source, assertion)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellState {
    /// `SC[i, j] = 1` — the source has claimed the assertion.
    pub claimed: bool,
    /// `D[i, j] = 1` — the (actual or would-be) claim is dependent.
    pub dependent: bool,
}

/// One cell whose `SC`/`D` membership changed during an
/// [`ingest`](ClaimLogIndex::ingest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellChange {
    /// Row (source id) of the changed cell.
    pub source: u32,
    /// Column (assertion id) of the changed cell.
    pub assertion: u32,
    /// Membership before the batch.
    pub before: CellState,
    /// Membership after the batch.
    pub after: CellState,
}

/// Incrementally maintained claim-log index: the earliest-own-claim and
/// earliest-ancestor-claim maps behind [`build_matrices`], kept up to
/// date batch by batch.
///
/// Both maps are *min-merges* over the log, so their contents depend only
/// on the set of claims seen — never on how the log was split into
/// batches. [`build`](Self::build) therefore produces matrices
/// structurally equal to a fresh [`build_matrices`] over the whole log,
/// at `O(nnz)` instead of `O(claims)` cost, and
/// [`ingest`](Self::ingest) reports exactly which cells changed `SC`/`D`
/// membership — the seed of a delta refit's touched set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimLogIndex {
    n: u32,
    m: u32,
    first_claim: BTreeMap<(u32, u32), u64>,
    anc_time: BTreeMap<(u32, u32), u64>,
}

impl ClaimLogIndex {
    /// Creates an empty index over `n` sources and `m` assertions.
    pub fn new(n: u32, m: u32) -> Self {
        Self {
            n,
            m,
            first_claim: BTreeMap::new(),
            anc_time: BTreeMap::new(),
        }
    }

    /// Number of sources.
    pub fn source_count(&self) -> u32 {
        self.n
    }

    /// Number of assertions.
    pub fn assertion_count(&self) -> u32 {
        self.m
    }

    /// Number of distinct `(source, assertion)` claim cells (`nnz(SC)`).
    pub fn claim_cell_count(&self) -> usize {
        self.first_claim.len()
    }

    /// Current `SC`/`D` membership of cell `(i, j)`.
    pub fn cell_state(&self, i: u32, j: u32) -> CellState {
        let own = self.first_claim.get(&(i, j));
        let dependent = match (self.anc_time.get(&(i, j)), own) {
            // Claim cell: dependent only if an ancestor spoke strictly
            // first (build_matrices' rule; ties stay independent).
            (Some(&t_anc), Some(&t_own)) => t_anc < t_own,
            (Some(_), None) => true,
            (None, _) => false,
        };
        CellState {
            claimed: own.is_some(),
            dependent,
        }
    }

    /// Folds a batch of claims into the index, returning every cell whose
    /// `SC`/`D` membership changed (deduplicated, in `(source,
    /// assertion)` order).
    ///
    /// # Panics
    ///
    /// Panics if a claim references `source >= n` or `assertion >= m` —
    /// the same contract as [`build_matrices`]. Validate first when the
    /// batch must be rejected atomically.
    pub fn ingest(&mut self, graph: &FollowerGraph, batch: &[TimedClaim]) -> Vec<CellChange> {
        // Pass 1: snapshot the prior state of every cell this batch can
        // touch — the claim cells themselves plus each claimant's
        // follower cells (the only rows of `anc_time` a claim reaches).
        let mut before: BTreeMap<(u32, u32), CellState> = BTreeMap::new();
        for c in batch {
            assert!(
                c.source < self.n && c.assertion < self.m,
                "claim ({}, {}) out of bounds for {}x{}",
                c.source,
                c.assertion,
                self.n,
                self.m
            );
            before
                .entry((c.source, c.assertion))
                .or_insert_with(|| self.cell_state(c.source, c.assertion));
            for &f in graph.followers(c.source) {
                before
                    .entry((f, c.assertion))
                    .or_insert_with(|| self.cell_state(f, c.assertion));
            }
        }

        // Pass 2: min-merge the batch into both maps.
        for c in batch {
            self.first_claim
                .entry((c.source, c.assertion))
                .and_modify(|t| *t = (*t).min(c.time))
                .or_insert(c.time);
            for &f in graph.followers(c.source) {
                self.anc_time
                    .entry((f, c.assertion))
                    .and_modify(|t| *t = (*t).min(c.time))
                    .or_insert(c.time);
            }
        }

        // Pass 3: report the cells whose membership actually changed.
        before
            .into_iter()
            .filter_map(|((i, j), prior)| {
                let after = self.cell_state(i, j);
                (after != prior).then_some(CellChange {
                    source: i,
                    assertion: j,
                    before: prior,
                    after,
                })
            })
            .collect()
    }

    /// Materialises the current `(SC, D)` pair.
    ///
    /// Structurally equal to [`build_matrices`] over the full log the
    /// index has ingested, but `O(nnz)` — it never re-walks the claims.
    pub fn build(&self) -> (SparseBinaryMatrix, SparseBinaryMatrix) {
        matrices_from_maps(self.n, self.m, &self.first_claim, &self.anc_time)
    }
}

/// The sorted set of assertions claimed by any ancestor of `source`.
///
/// This is the "Dependent Assertion" candidate set of the paper's Sec. V-A
/// generator, and also `D`'s support restricted to row `source` before the
/// who-spoke-first refinement.
pub fn dependent_assertions(source: u32, claims: &[TimedClaim], graph: &FollowerGraph) -> Vec<u32> {
    let mut out: Vec<u32> = claims
        .iter()
        .filter(|c| graph.follows(source, c.source))
        .map(|c| c.assertion)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1: John(0) follows Sally(1); Heather(2) independent.
    fn fig1() -> (FollowerGraph, Vec<TimedClaim>) {
        let mut g = FollowerGraph::new(3);
        g.add_follow(0, 1);
        let claims = vec![
            TimedClaim::new(1, 0, 1), // Sally -> C1 @ t1
            TimedClaim::new(2, 1, 1), // Heather -> C2 @ t1
            TimedClaim::new(0, 0, 2), // John -> C1 @ t2 (dependent)
            TimedClaim::new(0, 1, 3), // John -> C2 @ t3 (independent)
        ];
        (g, claims)
    }

    #[test]
    fn fig1_walkthrough_matches_paper() {
        let (g, claims) = fig1();
        let (sc, d) = build_matrices(3, 2, &claims, &g);
        // SC: John claims both, Sally C1, Heather C2.
        assert!(sc.contains(0, 0) && sc.contains(0, 1));
        assert!(sc.contains(1, 0) && !sc.contains(1, 1));
        assert!(!sc.contains(2, 0) && sc.contains(2, 1));
        // D: only John's repeat of Sally's claim is dependent.
        assert!(d.contains(0, 0));
        assert!(!d.contains(0, 1));
        assert!(!d.contains(1, 0));
        assert!(!d.contains(2, 1));
    }

    #[test]
    fn simultaneous_claims_stay_independent() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(0, 1);
        let claims = vec![TimedClaim::new(1, 0, 5), TimedClaim::new(0, 0, 5)];
        let (_, d) = build_matrices(2, 1, &claims, &g);
        assert!(!d.contains(0, 0), "tie in time must not be dependent");
    }

    #[test]
    fn non_claim_cell_is_dependent_when_ancestor_spoke() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(0, 1);
        let claims = vec![TimedClaim::new(1, 0, 1)]; // only the ancestor speaks
        let (sc, d) = build_matrices(2, 1, &claims, &g);
        assert!(!sc.contains(0, 0));
        assert!(d.contains(0, 0), "silent follower cell is a dependent cell");
    }

    #[test]
    fn repeated_claims_collapse_to_earliest() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(0, 1);
        // Follower speaks at t=1 then again at t=10; ancestor at t=5.
        let claims = vec![
            TimedClaim::new(0, 0, 10),
            TimedClaim::new(0, 0, 1),
            TimedClaim::new(1, 0, 5),
        ];
        let (sc, d) = build_matrices(2, 1, &claims, &g);
        assert_eq!(sc.nnz(), 2);
        // Earliest own claim (t=1) precedes the ancestor's (t=5): independent.
        assert!(!d.contains(0, 0));
    }

    #[test]
    fn multiple_ancestors_earliest_wins() {
        let mut g = FollowerGraph::new(3);
        g.add_follow(0, 1);
        g.add_follow(0, 2);
        let claims = vec![
            TimedClaim::new(1, 0, 8),
            TimedClaim::new(2, 0, 2),
            TimedClaim::new(0, 0, 5),
        ];
        let (_, d) = build_matrices(3, 1, &claims, &g);
        // Ancestor 2 spoke at t=2 < 5, so dependent even though ancestor 1 was later.
        assert!(d.contains(0, 0));
    }

    #[test]
    fn dependent_assertions_lists_ancestor_claims() {
        let (g, claims) = fig1();
        assert_eq!(dependent_assertions(0, &claims, &g), vec![0]);
        assert!(dependent_assertions(1, &claims, &g).is_empty());
        assert!(dependent_assertions(2, &claims, &g).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_claim_panics() {
        let g = FollowerGraph::new(1);
        build_matrices(1, 1, &[TimedClaim::new(0, 7, 0)], &g);
    }

    #[test]
    fn empty_claim_log_yields_empty_matrices() {
        let g = FollowerGraph::new(3);
        let (sc, d) = build_matrices(3, 2, &[], &g);
        assert_eq!(sc.nnz(), 0);
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn index_matches_batch_build_on_fig1() {
        let (g, claims) = fig1();
        let mut index = ClaimLogIndex::new(3, 2);
        // Ingest claim by claim — the least favourable batching.
        for c in &claims {
            index.ingest(&g, std::slice::from_ref(c));
        }
        assert_eq!(index.build(), build_matrices(3, 2, &claims, &g));
        assert_eq!(index.claim_cell_count(), 4);
    }

    #[test]
    fn index_is_batching_invariant() {
        // Min-merges are order-independent, so any split of the log into
        // batches — including time-travelling late arrivals — must land
        // on the same maps and therefore the same matrices.
        let mut g = FollowerGraph::new(4);
        g.add_follow(0, 1);
        g.add_follow(2, 1);
        g.add_follow(3, 2);
        let claims = vec![
            TimedClaim::new(1, 0, 4),
            TimedClaim::new(0, 0, 6),
            TimedClaim::new(2, 0, 2), // earlier than its ancestor: independent
            TimedClaim::new(1, 1, 9),
            TimedClaim::new(3, 1, 10),
            TimedClaim::new(1, 0, 1), // late-arriving earlier duplicate
        ];
        let fresh = build_matrices(4, 2, &claims, &g);
        for split in 0..=claims.len() {
            let mut index = ClaimLogIndex::new(4, 2);
            index.ingest(&g, &claims[..split]);
            index.ingest(&g, &claims[split..]);
            assert_eq!(index.build(), fresh, "split at {split}");
        }
    }

    #[test]
    fn ingest_reports_membership_changes_only() {
        let mut g = FollowerGraph::new(2);
        g.add_follow(0, 1);
        let mut index = ClaimLogIndex::new(2, 1);
        // Ancestor speaks: its own cell joins SC; the silent follower
        // cell becomes dependent.
        let changes = index.ingest(&g, &[TimedClaim::new(1, 0, 5)]);
        assert_eq!(
            changes,
            vec![
                CellChange {
                    source: 0,
                    assertion: 0,
                    before: CellState {
                        claimed: false,
                        dependent: false
                    },
                    after: CellState {
                        claimed: false,
                        dependent: true
                    },
                },
                CellChange {
                    source: 1,
                    assertion: 0,
                    before: CellState {
                        claimed: false,
                        dependent: false
                    },
                    after: CellState {
                        claimed: true,
                        dependent: false
                    },
                },
            ]
        );
        // A later repeat by the ancestor changes nothing.
        assert!(index.ingest(&g, &[TimedClaim::new(1, 0, 9)]).is_empty());
        // The follower then speaks (after the ancestor): claimed and
        // still dependent.
        let changes = index.ingest(&g, &[TimedClaim::new(0, 0, 7)]);
        assert_eq!(changes.len(), 1);
        assert_eq!(
            changes[0].after,
            CellState {
                claimed: true,
                dependent: true
            }
        );
        // A late earlier copy of the follower's claim flips the cell
        // back to independent.
        let changes = index.ingest(&g, &[TimedClaim::new(0, 0, 2)]);
        assert_eq!(changes.len(), 1);
        assert_eq!(
            changes[0].after,
            CellState {
                claimed: true,
                dependent: false
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_ingest_panics_out_of_bounds() {
        let g = FollowerGraph::new(1);
        let mut index = ClaimLogIndex::new(1, 1);
        index.ingest(&g, &[TimedClaim::new(0, 7, 0)]);
    }
}
