//! The paper's synthetic dependency structure: a forest of two-level trees.
//!
//! Sec. V-A generates "source dependency graphs as a forest of τ level-two
//! trees, where each source appears only once". Each tree has one **root**
//! (an independent source) and zero or more **leaves** that follow the
//! root. Varying τ from 1 to `n` interpolates between "one source followed
//! by everyone" and "all sources independent".

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::follow::FollowerGraph;

/// A forest of τ two-level dependency trees over `n` sources.
///
/// # Example
///
/// ```
/// use socsense_graph::DependencyForest;
///
/// let f = DependencyForest::balanced(10, 3).unwrap();
/// assert_eq!(f.tree_count(), 3);
/// assert_eq!(f.roots().len(), 3);
/// // Every non-root has exactly one root ancestor.
/// for s in 0..10 {
///     if !f.is_root(s) {
///         assert!(f.roots().contains(&f.root_of(s)));
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyForest {
    n: u32,
    /// root_of[i] = the root of i's tree (roots map to themselves).
    root_of: Vec<u32>,
    roots: Vec<u32>,
}

impl DependencyForest {
    /// Builds a forest where leaves are spread as evenly as possible over
    /// the τ trees; roots are sources `0..tau` in order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadForest`] unless `1 <= tau <= n`.
    pub fn balanced(n: u32, tau: u32) -> Result<Self, GraphError> {
        Self::check(n, tau)?;
        let mut root_of: Vec<u32> = (0..n).collect();
        for leaf in tau..n {
            root_of[leaf as usize] = (leaf - tau) % tau;
        }
        Ok(Self {
            n,
            root_of,
            roots: (0..tau).collect(),
        })
    }

    /// Builds a forest with uniformly random root selection and random
    /// leaf-to-tree assignment.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadForest`] unless `1 <= tau <= n`.
    pub fn random<R: Rng + ?Sized>(n: u32, tau: u32, rng: &mut R) -> Result<Self, GraphError> {
        Self::check(n, tau)?;
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(rng);
        let roots: Vec<u32> = order[..tau as usize].to_vec();
        let mut root_of: Vec<u32> = (0..n).collect();
        for &leaf in &order[tau as usize..] {
            root_of[leaf as usize] = roots[rng.gen_range(0..tau as usize)];
        }
        let mut sorted_roots = roots;
        sorted_roots.sort_unstable();
        Ok(Self {
            n,
            root_of,
            roots: sorted_roots,
        })
    }

    fn check(n: u32, tau: u32) -> Result<(), GraphError> {
        if tau == 0 || tau > n {
            return Err(GraphError::BadForest { n, tau });
        }
        Ok(())
    }

    /// Number of sources.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of trees (τ).
    pub fn tree_count(&self) -> u32 {
        self.roots.len() as u32
    }

    /// Sorted root sources.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Whether `source` is a tree root (an independent source).
    pub fn is_root(&self, source: u32) -> bool {
        self.root_of[source as usize] == source
    }

    /// The root of `source`'s tree; a root maps to itself.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    pub fn root_of(&self, source: u32) -> u32 {
        self.root_of[source as usize]
    }

    /// All leaf sources (non-roots), sorted.
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.n).filter(|&s| !self.is_root(s)).collect()
    }

    /// The follower graph induced by the forest: each leaf follows its root.
    pub fn to_follower_graph(&self) -> FollowerGraph {
        let mut g = FollowerGraph::new(self.n);
        for s in 0..self.n {
            if !self.is_root(s) {
                g.add_follow(s, self.root_of(s));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_covers_every_source_once() {
        let f = DependencyForest::balanced(11, 4).unwrap();
        assert_eq!(f.roots(), &[0, 1, 2, 3]);
        assert_eq!(f.leaves().len(), 7);
        for s in 0..11 {
            let r = f.root_of(s);
            assert!(f.is_root(r));
        }
    }

    #[test]
    fn tau_equals_n_means_all_independent() {
        let f = DependencyForest::balanced(5, 5).unwrap();
        assert!(f.leaves().is_empty());
        assert_eq!(f.to_follower_graph().edge_count(), 0);
    }

    #[test]
    fn tau_one_means_single_hub() {
        let f = DependencyForest::balanced(5, 1).unwrap();
        assert_eq!(f.roots(), &[0]);
        let g = f.to_follower_graph();
        assert_eq!(g.follower_count(0), 4);
    }

    #[test]
    fn invalid_tau_rejected() {
        assert!(DependencyForest::balanced(5, 0).is_err());
        assert!(DependencyForest::balanced(5, 6).is_err());
    }

    #[test]
    fn random_forest_is_valid_partition() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = DependencyForest::random(20, 6, &mut rng).unwrap();
        assert_eq!(f.tree_count(), 6);
        assert_eq!(f.roots().len(), 6);
        for s in 0..20 {
            assert!(f.is_root(f.root_of(s)));
        }
        // Leaves + roots = all sources.
        assert_eq!(f.leaves().len() + f.roots().len(), 20);
    }

    #[test]
    fn random_forest_is_deterministic_per_seed() {
        let a = DependencyForest::random(15, 4, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = DependencyForest::random(15, 4, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn follower_graph_edges_match_leaf_count() {
        let f = DependencyForest::balanced(9, 2).unwrap();
        let g = f.to_follower_graph();
        assert_eq!(g.edge_count(), 7);
        for leaf in f.leaves() {
            assert!(g.follows(leaf, f.root_of(leaf)));
        }
    }
}
