//! The directed follow relation between sources.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;

/// A directed "follows" graph over `n` sources.
///
/// Edge `i → k` means *source `i` follows source `k`*; in the paper's
/// terminology `k` is then an **ancestor** of `i` (its claims can influence
/// `i`'s claims). Both directions are indexed: [`ancestors`](Self::ancestors)
/// for the accounts a source follows, [`followers`](Self::followers) for
/// who follows a source.
///
/// Adjacency lists are kept sorted and duplicate-free; self-follows are
/// rejected (a source trivially "repeats" itself, which the model treats
/// as a single claim, not a dependency).
///
/// # Example
///
/// ```
/// use socsense_graph::FollowerGraph;
///
/// let mut g = FollowerGraph::new(3);
/// g.add_follow(0, 2);
/// g.add_follow(1, 2);
/// assert_eq!(g.followers(2), &[0, 1]);
/// assert!(g.follows(0, 2));
/// assert!(!g.follows(2, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FollowerGraph {
    n: u32,
    /// ancestors[i] = sorted accounts that i follows.
    ancestors: Vec<Vec<u32>>,
    /// followers[k] = sorted accounts that follow k.
    followers: Vec<Vec<u32>>,
    edges: usize,
}

impl FollowerGraph {
    /// An edgeless graph over `n` sources.
    pub fn new(n: u32) -> Self {
        Self {
            n,
            ancestors: vec![Vec::new(); n as usize],
            followers: vec![Vec::new(); n as usize],
            edges: 0,
        }
    }

    /// Builds a graph from `(follower, followee)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfFollow`]
    /// on invalid edges.
    pub fn from_edges(
        n: u32,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, GraphError> {
        let mut g = Self::new(n);
        for (i, k) in edges {
            g.try_add_follow(i, k)?;
        }
        Ok(g)
    }

    /// Number of sources.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of distinct follow edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Records that `follower` follows `followee`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or a self-follow.
    pub fn add_follow(&mut self, follower: u32, followee: u32) {
        self.try_add_follow(follower, followee)
            .expect("invalid follow edge");
    }

    /// Fallible variant of [`add_follow`](Self::add_follow). Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] when a node id is `>= n` and
    /// [`GraphError::SelfFollow`] when `follower == followee`.
    pub fn try_add_follow(&mut self, follower: u32, followee: u32) -> Result<(), GraphError> {
        if follower >= self.n || followee >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: follower.max(followee),
                n: self.n,
            });
        }
        if follower == followee {
            return Err(GraphError::SelfFollow { node: follower });
        }
        let anc = &mut self.ancestors[follower as usize];
        match anc.binary_search(&followee) {
            Ok(_) => return Ok(()), // already present
            Err(pos) => anc.insert(pos, followee),
        }
        let fol = &mut self.followers[followee as usize];
        let pos = fol.binary_search(&follower).unwrap_err();
        fol.insert(pos, follower);
        self.edges += 1;
        Ok(())
    }

    /// Sorted accounts that `source` follows (its ancestors).
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    pub fn ancestors(&self, source: u32) -> &[u32] {
        &self.ancestors[source as usize]
    }

    /// Sorted accounts following `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    pub fn followers(&self, source: u32) -> &[u32] {
        &self.followers[source as usize]
    }

    /// Whether `follower` follows `followee`.
    pub fn follows(&self, follower: u32, followee: u32) -> bool {
        follower < self.n
            && followee < self.n
            && self.ancestors[follower as usize]
                .binary_search(&followee)
                .is_ok()
    }

    /// Out-degree (number of followees) of `source`.
    pub fn followee_count(&self, source: u32) -> usize {
        self.ancestors(source).len()
    }

    /// In-degree (number of followers) of `source`.
    pub fn follower_count(&self, source: u32) -> usize {
        self.followers(source).len()
    }

    /// Iterates over all `(follower, followee)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ancestors
            .iter()
            .enumerate()
            .flat_map(|(i, ks)| ks.iter().map(move |&k| (i as u32, k)))
    }

    /// Everyone reachable *downstream* of `source` by following reverse
    /// edges (followers, followers-of-followers, ...), excluding `source`.
    ///
    /// Used by cascade simulation: these are the accounts a tweet can
    /// eventually propagate to.
    pub fn reachable_followers(&self, source: u32) -> Vec<u32> {
        let mut seen = vec![false; self.n as usize];
        seen[source as usize] = true;
        let mut queue = std::collections::VecDeque::from([source]);
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            for &f in self.followers(u) {
                if !seen[f as usize] {
                    seen[f as usize] = true;
                    out.push(f);
                    queue.push_back(f);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_follow_is_idempotent_and_bidirectionally_indexed() {
        let mut g = FollowerGraph::new(4);
        g.add_follow(0, 3);
        g.add_follow(0, 3);
        g.add_follow(1, 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.ancestors(0), &[3]);
        assert_eq!(g.followers(3), &[0, 1]);
        assert_eq!(g.follower_count(3), 2);
        assert_eq!(g.followee_count(0), 1);
    }

    #[test]
    fn self_follow_rejected() {
        let mut g = FollowerGraph::new(2);
        assert!(matches!(
            g.try_add_follow(1, 1),
            Err(GraphError::SelfFollow { node: 1 })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = FollowerGraph::new(2);
        assert!(matches!(
            g.try_add_follow(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
    }

    #[test]
    fn from_edges_round_trips_edge_list() {
        let edges = [(0, 1), (2, 1), (2, 0)];
        let g = FollowerGraph::from_edges(3, edges).unwrap();
        let mut collected: Vec<_> = g.edges().collect();
        collected.sort_unstable();
        assert_eq!(collected, vec![(0, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn reachable_followers_walks_transitively() {
        // 1 follows 0, 2 follows 1, 3 follows 2; 0's reach = {1,2,3}.
        let g = FollowerGraph::from_edges(5, [(1, 0), (2, 1), (3, 2)]).unwrap();
        assert_eq!(g.reachable_followers(0), vec![1, 2, 3]);
        assert_eq!(g.reachable_followers(3), Vec::<u32>::new());
    }

    #[test]
    fn reachable_followers_handles_cycles() {
        // 0 and 1 follow each other.
        let g = FollowerGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
        assert_eq!(g.reachable_followers(0), vec![1]);
        assert_eq!(g.reachable_followers(1), vec![0]);
    }
}
