//! Follower / dependency graph substrate for the `socsense` workspace.
//!
//! The ICDCS 2016 dependency model hinges on *who can see whom*: a claim by
//! source `S_i` is **dependent** when one of `S_i`'s *ancestors* (accounts
//! `S_i` follows) asserted the same thing earlier. This crate provides:
//!
//! * [`FollowerGraph`] — the directed follow relation with forward
//!   (ancestor) and reverse (follower) adjacency;
//! * [`DependencyForest`] — the paper's Sec. V-A synthetic dependency
//!   structure: a forest of `τ` two-level trees over `n` sources;
//! * [`preferential_attachment`] — a heavy-tailed follower graph generator
//!   used by the simulated Twitter substrate;
//! * [`TimedClaim`] and [`build_matrices`] — the glue that turns a
//!   timestamped claim log plus a follower graph into the paper's
//!   source-claim matrix `SC` and dependency indicator matrix `D`.
//!
//! # Example
//!
//! Reproducing the paper's Fig. 1 walk-through (John follows Sally;
//! Sally tweets first, so John's repeat of her claim is dependent while
//! his other claim is independent):
//!
//! ```
//! use socsense_graph::{build_matrices, FollowerGraph, TimedClaim};
//!
//! // Sources: 0 = John, 1 = Sally, 2 = Heather. John follows Sally.
//! let mut g = FollowerGraph::new(3);
//! g.add_follow(0, 1);
//!
//! let claims = vec![
//!     TimedClaim::new(1, 0, 1), // Sally asserts C1 at t1
//!     TimedClaim::new(2, 1, 1), // Heather asserts C2 at t1
//!     TimedClaim::new(0, 0, 2), // John repeats C1 at t2 -> dependent
//!     TimedClaim::new(0, 1, 3), // John asserts C2 at t3 -> independent
//! ];
//! let (sc, d) = build_matrices(3, 2, &claims, &g);
//! assert!(sc.contains(0, 0) && sc.contains(0, 1));
//! assert!(d.contains(0, 0));   // D_{1,1} = 1 in the paper's numbering
//! assert!(!d.contains(0, 1));  // D_{1,2} = 0
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod claims;
mod error;
mod follow;
mod forest;
mod prefattach;

pub use claims::{
    build_matrices, dependent_assertions, CellChange, CellState, ClaimLogIndex, TimedClaim,
};
pub use error::GraphError;
pub use follow::FollowerGraph;
pub use forest::DependencyForest;
pub use prefattach::preferential_attachment;
