//! Error type for the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by graph constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id was `>= n`.
    NodeOutOfRange {
        /// Offending node id.
        node: u32,
        /// Declared node count.
        n: u32,
    },
    /// A source attempted to follow itself.
    SelfFollow {
        /// The offending node.
        node: u32,
    },
    /// An invalid forest shape was requested (`tau == 0` or `tau > n`).
    BadForest {
        /// Source count.
        n: u32,
        /// Requested tree count.
        tau: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph of {n} sources")
            }
            GraphError::SelfFollow { node } => write!(f, "source {node} cannot follow itself"),
            GraphError::BadForest { n, tau } => {
                write!(
                    f,
                    "invalid forest: tau={tau} must satisfy 1 <= tau <= n={n}"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(GraphError::SelfFollow { node: 2 }
            .to_string()
            .contains("follow itself"));
        assert!(GraphError::BadForest { n: 3, tau: 9 }
            .to_string()
            .contains("tau=9"));
        assert!(GraphError::NodeOutOfRange { node: 8, n: 4 }
            .to_string()
            .contains("node 8"));
    }
}
