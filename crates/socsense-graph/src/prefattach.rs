//! Preferential-attachment follower graph generation.
//!
//! Real follower graphs are heavy-tailed: a few hub accounts collect most
//! followers. The simulated Twitter substrate uses this generator so that
//! retweet cascades concentrate around hubs, reproducing the correlated
//! error structure the paper's estimator is designed to exploit.

use rand::Rng;

use crate::follow::FollowerGraph;

/// Generates a follower graph over `n` sources by preferential attachment.
///
/// Sources join in id order. Each joining source `i >= 1` picks
/// `min(k, i)` distinct followees among the earlier sources, each drawn
/// with probability proportional to `followers + 1` (the `+1` smoothing
/// lets zero-follower sources be picked at all).
///
/// The expected in-degree distribution is heavy-tailed; source `0` is the
/// most likely hub.
///
/// # Panics
///
/// Panics if `k == 0` (every joining source must follow someone for the
/// graph to be connected enough to cascade).
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socsense_graph::preferential_attachment;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = preferential_attachment(100, 3, &mut rng);
/// assert_eq!(g.node_count(), 100);
/// // Everyone but source 0 follows somebody.
/// assert!((1..100).all(|s| g.followee_count(s) >= 1));
/// ```
pub fn preferential_attachment<R: Rng + ?Sized>(n: u32, k: u32, rng: &mut R) -> FollowerGraph {
    assert!(k > 0, "attachment degree k must be positive");
    let mut g = FollowerGraph::new(n);
    // repeated-nodes trick: each edge endpoint is pushed once, so sampling
    // uniformly from `targets` is sampling proportional to (in-degree + 1).
    let mut targets: Vec<u32> = Vec::with_capacity((n as usize) * (k as usize + 1));
    for i in 0..n {
        let want = (k.min(i)) as usize;
        let mut picked: Vec<u32> = Vec::with_capacity(want);
        let mut guard = 0usize;
        while picked.len() < want && guard < want * 50 {
            guard += 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if t != i && !picked.contains(&t) {
                picked.push(t);
            }
        }
        // Fallback for pathological rejection streaks: fill with the
        // lowest-id sources not yet picked.
        let mut next = 0u32;
        while picked.len() < want {
            if next != i && !picked.contains(&next) {
                picked.push(next);
            }
            next += 1;
        }
        for &t in &picked {
            g.add_follow(i, t);
            targets.push(t);
        }
        targets.push(i); // the joiner itself becomes a future target
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_late_source_follows_k_accounts() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = preferential_attachment(50, 2, &mut rng);
        for s in 2..50 {
            assert_eq!(g.followee_count(s), 2, "source {s}");
        }
        assert_eq!(g.followee_count(0), 0);
        assert_eq!(g.followee_count(1), 1);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = preferential_attachment(500, 2, &mut rng);
        let mut degrees: Vec<usize> = (0..500).map(|s| g.follower_count(s)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // The top decile should hold well over its proportional share.
        let top: usize = degrees[..50].iter().sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top as f64 > 0.3 * total as f64,
            "expected heavy tail, top-decile share {}",
            top as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = preferential_attachment(60, 3, &mut StdRng::seed_from_u64(11));
        let b = preferential_attachment(60, 3, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        preferential_attachment(10, 0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn single_node_graph_is_empty() {
        let g = preferential_attachment(1, 3, &mut StdRng::seed_from_u64(0));
        assert_eq!(g.edge_count(), 0);
    }
}
