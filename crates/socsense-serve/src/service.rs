//! The channel-based query service: one owned worker thread, many
//! concurrent client handles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use socsense_core::{
    bound_for_assertions_traced, BoundMethod, BoundResult, EmFit, EmFitBits, RefitOutcome,
    RefitStats, SenseError, StreamingEstimator,
};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_obs::{MetricsSnapshot, Obs, Recorder, Tee};

use crate::api::{
    IngestAck, PersistConfig, ServeConfig, ServeError, ServeStats, ShardTopology, SourceRank,
};
use crate::durable::{DurableLog, WorkerSnapshot};

/// Renders a worker thread's panic payload for
/// [`ServeError::WorkerPanicked`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A typed request, one per client call. Shared verbatim by the
/// unsharded worker and the sharded router, so both backends present
/// the same client surface.
// detlint: protocol
pub(crate) enum Request {
    Ingest(Vec<TimedClaim>),
    Posterior(u32),
    Posteriors,
    TopSources(usize),
    Bound {
        assertions: Vec<u32>,
        method: Option<BoundMethod>,
    },
    Stats,
    Metrics,
    /// Partition map of the sharded tier; the unsharded worker has none.
    Topology,
    Shutdown,
    /// Test hook: panic inside the worker (exercises panic surfacing).
    #[cfg(test)]
    InjectPanic,
    /// Test hook: ack on `ack`, then block until `release` yields —
    /// turns the worker into a deterministic "slow worker" so queue
    /// backpressure can be tested without timing races.
    #[cfg(test)]
    Park {
        ack: Sender<()>,
        release: Receiver<()>,
    },
}

impl Request {
    /// Stable label used in `serve.request.<label>.seconds` metrics.
    pub(crate) fn label(&self) -> &'static str {
        match self {
            Request::Ingest(_) => "ingest",
            Request::Posterior(_) => "posterior",
            Request::Posteriors => "posteriors",
            Request::TopSources(_) => "top_sources",
            Request::Bound { .. } => "bound",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Topology => "topology",
            Request::Shutdown => "shutdown",
            #[cfg(test)]
            Request::InjectPanic => "inject_panic",
            #[cfg(test)]
            Request::Park { .. } => "park",
        }
    }
}

/// The worker's reply to one request.
pub(crate) enum Response {
    Ingested(IngestAck),
    Posterior(f64),
    Posteriors(Vec<f64>),
    TopSources(Vec<SourceRank>),
    Bound(BoundResult),
    Stats(ServeStats),
    Metrics(Box<MetricsSnapshot>),
    Topology(Box<ShardTopology>),
    ShuttingDown(ServeStats),
}

pub(crate) struct Envelope {
    pub(crate) req: Request,
    pub(crate) reply: Sender<Result<Response, ServeError>>,
    /// When the client enqueued the request (feeds
    /// `serve.queue.wait_seconds`).
    pub(crate) queued: Instant,
}

/// A cheap, cloneable client of a [`QueryService`].
///
/// Every method is a synchronous request/response round trip over the
/// service channel; handles can be cloned freely and moved to other
/// threads. After the service shuts down, every call returns
/// [`ServeError::Closed`].
#[derive(Debug, Clone)]
pub struct ServeHandle {
    tx: Sender<Envelope>,
    /// Requests sent but not yet picked up by the worker, shared by
    /// every handle of one service (feeds `serve.queue.depth`).
    depth: Arc<AtomicUsize>,
    /// Backpressure limit ([`ServeConfig::max_queue_depth`]; `0` =
    /// unlimited). Checked at the handle, so a shed request never even
    /// enters the queue.
    max_depth: usize,
}

impl ServeHandle {
    /// A handle over an already-running request channel (the sharded
    /// router speaks the same envelope protocol as the unsharded
    /// worker).
    pub(crate) fn internal(
        tx: Sender<Envelope>,
        depth: Arc<AtomicUsize>,
        max_depth: usize,
    ) -> Self {
        Self {
            tx,
            depth,
            max_depth,
        }
    }

    // Clippy twin of the detlint allow(D2) below: the queue-entry
    // timestamp is observation-only.
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn call(&self, req: Request) -> Result<Response, ServeError> {
        let (reply, rx) = mpsc::channel();
        let queued_depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        // Shed at the door when the queue is full. Shutdown is always
        // admitted — a client must be able to stop an overloaded
        // service.
        if self.max_depth > 0 && queued_depth > self.max_depth && !matches!(req, Request::Shutdown)
        {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        let sent = self.tx.send(Envelope {
            req,
            reply,
            // detlint: allow(D2) -- observation-only: feeds the queue-wait latency histogram; responses never read this clock
            queued: Instant::now(),
        });
        if sent.is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ServeError::Closed);
        }
        // A dropped reply sender means the worker exited (shutdown drain
        // finished, or it died) before answering.
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Test-only: enqueue a request without waiting for the reply (and
    /// without the backpressure shed), returning the raw reply
    /// receiver. Used to fill the queue while the worker is parked —
    /// `call` would block on the answer.
    #[cfg(test)]
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn raw_send(&self, req: Request) -> Receiver<Result<Response, ServeError>> {
        let (reply, rx) = mpsc::channel();
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Envelope {
                req,
                reply,
                // detlint: allow(D2) -- observation-only queue timestamp (test helper)
                queued: Instant::now(),
            })
            // detlint: allow(P1) -- test-only helper: a refused send is a broken test setup, so panicking is the honest failure
            .expect("service accepts the raw envelope");
        rx
    }

    /// Appends a batch of claims to the service's log.
    ///
    /// The warm-start chain advances immediately when the batch leaves at
    /// least [`ServeConfig::refit_pending_claims`] claims pending;
    /// otherwise the refit is deferred until a query needs it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Sense`] when a claim is out of range (the batch is
    /// rejected atomically) or an eager refit fails — the claims stay
    /// ingested and the warm-start state survives; [`ServeError::Closed`]
    /// when the service is gone.
    pub fn ingest(&self, batch: Vec<TimedClaim>) -> Result<IngestAck, ServeError> {
        match self.call(Request::Ingest(batch))? {
            Response::Ingested(ack) => Ok(ack),
            _ => Err(ServeError::Protocol("expected Ingested")),
        }
    }

    /// The current truth posterior `P(C_j = 1 | ·)` of one assertion.
    ///
    /// # Errors
    ///
    /// [`ServeError::Sense`] for an out-of-range assertion id or a failed
    /// refit; [`ServeError::Closed`] when the service is gone.
    pub fn posterior(&self, assertion: u32) -> Result<f64, ServeError> {
        match self.call(Request::Posterior(assertion))? {
            Response::Posterior(p) => Ok(p),
            _ => Err(ServeError::Protocol("expected Posterior")),
        }
    }

    /// The current truth posterior of every assertion, in assertion
    /// order.
    ///
    /// # Errors
    ///
    /// As [`posterior`](Self::posterior).
    pub fn posteriors(&self) -> Result<Vec<f64>, ServeError> {
        match self.call(Request::Posteriors)? {
            Response::Posteriors(p) => Ok(p),
            _ => Err(ServeError::Protocol("expected Posteriors")),
        }
    }

    /// The `k` most reliable sources under the current fit, best first
    /// (ties broken toward the lower source id).
    ///
    /// # Errors
    ///
    /// As [`posterior`](Self::posterior).
    pub fn top_sources(&self, k: usize) -> Result<Vec<SourceRank>, ServeError> {
        match self.call(Request::TopSources(k))? {
            Response::TopSources(r) => Ok(r),
            _ => Err(ServeError::Protocol("expected TopSources")),
        }
    }

    /// Mean Bayes-risk bound over `assertions` (every assertion when
    /// empty) under the current fit, using `method` or the service's
    /// configured default.
    ///
    /// # Errors
    ///
    /// As [`posterior`](Self::posterior), plus whatever the bound
    /// evaluation reports (e.g. too many sources for an exact bound).
    pub fn bound(
        &self,
        assertions: Vec<u32>,
        method: Option<BoundMethod>,
    ) -> Result<BoundResult, ServeError> {
        match self.call(Request::Bound { assertions, method })? {
            Response::Bound(b) => Ok(b),
            _ => Err(ServeError::Protocol("expected Bound")),
        }
    }

    /// Current operating statistics. Never triggers a refit.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] when the service is gone.
    pub fn stats(&self) -> Result<ServeStats, ServeError> {
        match self.call(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ServeError::Protocol("expected Stats")),
        }
    }

    /// A snapshot of the service's metrics recorder: per-request-type
    /// latency histograms (`serve.request.<type>.seconds`), queue
    /// wait/depth, refit and cache counters, plus the `em.*`,
    /// `stream.*`, and `bound.*` metrics of the work the service ran.
    /// Never triggers a refit.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] when the service is gone.
    pub fn metrics(&self) -> Result<MetricsSnapshot, ServeError> {
        match self.call(Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            _ => Err(ServeError::Protocol("expected Metrics")),
        }
    }
}

/// A long-lived query service owning one warm
/// [`StreamingEstimator`] on a dedicated worker thread.
///
/// See the crate docs for the ownership model and refit policy. Dropping
/// the service without calling [`shutdown`](Self::shutdown) still drains
/// the queue and joins the worker.
#[derive(Debug)]
pub struct QueryService {
    tx: Sender<Envelope>,
    depth: Arc<AtomicUsize>,
    max_depth: usize,
    worker: Option<JoinHandle<()>>,
}

impl QueryService {
    /// Spawns the worker thread over `n` sources and `m` assertions with
    /// the given follow relation.
    ///
    /// # Errors
    ///
    /// [`ServeError::Sense`] for an invalid shape (`n == 0`, `m == 0`, a
    /// graph over a different source count) or a `warm_blend` outside
    /// `[0, 1]`.
    pub fn spawn(
        n: u32,
        m: u32,
        graph: FollowerGraph,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::spawn_with_obs(n, m, graph, config, Obs::none())
    }

    /// As [`spawn`](Self::spawn), additionally teeing every metric the
    /// worker emits into `extra` (e.g. a caller-owned exporter). The
    /// worker always keeps its own in-memory recorder — the source of
    /// [`ServeHandle::metrics`] snapshots — whether or not an extra
    /// sink is attached; metrics are observation-only and never change
    /// served numbers.
    ///
    /// # Errors
    ///
    /// See [`spawn`](Self::spawn); additionally
    /// [`ServeError::Persist`] when [`ServeConfig::persist`] is set and
    /// the durable state cannot be opened or recovered. Recovery — the
    /// newest snapshot plus a WAL-tail replay — happens here, before
    /// the worker thread serves its first request.
    pub fn spawn_with_obs(
        n: u32,
        m: u32,
        graph: FollowerGraph,
        config: ServeConfig,
        extra: Obs,
    ) -> Result<Self, ServeError> {
        let rec = Arc::new(Recorder::new());
        let obs = match extra.sink() {
            Some(sink) => Obs::new(Arc::new(Tee::new(rec.clone(), sink))),
            None => Obs::new(rec.clone()),
        };
        let mut est = StreamingEstimator::new(n, m, graph, config.em)?;
        est.set_warm_blend(config.warm_blend)?;
        est.set_refit_mode(config.refit_mode)?;
        est.set_obs(obs.clone());
        let depth = Arc::new(AtomicUsize::new(0));
        let max_depth = config.max_queue_depth;
        let persist = config.persist.clone();
        let mut worker = Worker {
            est,
            cfg: config,
            chain_fit: None,
            probe_fit: None,
            stats: ServeStats::default(),
            rec,
            obs,
            depth: Arc::clone(&depth),
            durable: None,
            seq: 0,
        };
        if let Some(pcfg) = &persist {
            worker.recover(pcfg)?;
        }
        let (tx, rx) = mpsc::channel::<Envelope>();
        let worker = std::thread::Builder::new()
            .name("socsense-serve".into())
            .spawn(move || worker.run(rx))
            // detlint: allow(P1) -- construction-time: no client exists yet, so a failed spawn panics the caller, not a worker others wait on
            .expect("spawning the service worker thread");
        Ok(Self {
            tx,
            depth,
            max_depth,
            worker: Some(worker),
        })
    }

    /// A new client handle. Handles stay valid until shutdown.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
            max_depth: self.max_depth,
        }
    }

    /// Shuts the service down gracefully: requests already queued are
    /// still answered (requests arriving later get
    /// [`ServeError::Closed`]), then the worker exits and is joined.
    ///
    /// Returns the final operating statistics, taken at the moment the
    /// shutdown request was processed.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] when the worker was already gone;
    /// [`ServeError::WorkerPanicked`] when the worker thread died by
    /// panic (with its payload) instead of exiting cleanly.
    pub fn shutdown(mut self) -> Result<ServeStats, ServeError> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> Result<ServeStats, ServeError> {
        let stats = match self.handle().call(Request::Shutdown) {
            Ok(Response::ShuttingDown(stats)) => Ok(stats),
            Ok(_) => Err(ServeError::Protocol("expected ShuttingDown")),
            Err(e) => Err(e),
        };
        if let Some(worker) = self.worker.take() {
            // A panicked worker must not be swallowed: it outranks
            // whatever the (necessarily failed) shutdown call returned.
            if let Err(payload) = worker.join() {
                return Err(ServeError::WorkerPanicked(panic_message(payload)));
            }
        }
        stats
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        if self.worker.is_some() {
            // Nobody is left to receive the error; a panic still gets
            // reported rather than vanishing with the service.
            if let Err(ServeError::WorkerPanicked(what)) = self.shutdown_impl() {
                eprintln!("socsense-serve: worker thread panicked: {what}");
            }
        }
    }
}

/// The single-threaded owner of the estimator and its cached fits.
struct Worker {
    est: StreamingEstimator,
    cfg: ServeConfig,
    /// Fit of the last warm-start-chain refit (covers the log up to the
    /// last chain advance; exactly current while nothing is pending).
    chain_fit: Option<Arc<EmFit>>,
    /// Query-driven probe fit, keyed on the claim count it covered.
    probe_fit: Option<(usize, Arc<EmFit>)>,
    stats: ServeStats,
    /// The service's own recorder; `Metrics` requests snapshot it.
    rec: Arc<Recorder>,
    /// Emission handle: the recorder, possibly teed with a caller sink.
    obs: Obs,
    /// Shared with every [`ServeHandle`]; decremented on pickup.
    depth: Arc<AtomicUsize>,
    /// Durability engine, when [`ServeConfig::persist`] is set.
    durable: Option<DurableLog>,
    /// Ingest batches accepted over the service's *durable* lifetime
    /// (monotonic across restarts; stays 0 without persistence).
    seq: u64,
}

impl Worker {
    /// Restores whatever a previous service left under the data
    /// directory: install the newest snapshot, then replay the WAL tail
    /// through the normal ingest path. Runs before the worker thread
    /// exists, so the first client request already sees the recovered
    /// state.
    fn recover(&mut self, pcfg: &PersistConfig) -> Result<(), ServeError> {
        let (log, recovered) = DurableLog::open::<WorkerSnapshot>(pcfg, &self.obs)?;
        let mut since = 0;
        if let Some((seq, snap)) = recovered.snapshot {
            self.est.restore_state(&snap.stream)?;
            self.chain_fit = match &snap.chain_fit {
                Some(bits) => Some(Arc::new(bits.to_fit()?)),
                None => None,
            };
            self.stats = snap.stats;
            self.seq = seq;
            since = seq;
        }
        for record in recovered.records {
            if record.seq <= since {
                continue;
            }
            if record.seq != self.seq + 1 {
                return Err(ServeError::Persist(format!(
                    "WAL gap: expected batch {}, found {}",
                    self.seq + 1,
                    record.seq
                )));
            }
            self.seq = record.seq;
            self.est.ingest(&record.claims)?;
            // Refit errors during replay mirror the live path: the
            // original run surfaced them to the client and kept the
            // claims ingested, so replay keeps the claims and moves on.
            let _ = self.post_ingest();
        }
        self.durable = Some(log);
        Ok(())
    }
    fn run(mut self, rx: Receiver<Envelope>) {
        while let Ok(env) = rx.recv() {
            let shutting_down = matches!(env.req, Request::Shutdown);
            self.answer(env);
            if shutting_down {
                // Graceful drain: everything already queued is answered;
                // senders arriving after the channel closes get `Closed`.
                while let Ok(env) = rx.try_recv() {
                    self.answer(env);
                }
                return;
            }
        }
        // All handles (and the service) dropped without a shutdown
        // request: nothing left to answer.
    }

    fn answer(&mut self, env: Envelope) {
        // The request leaves the queue: record how long it sat and how
        // many are still behind it.
        let waiting = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
        self.obs.gauge("serve.queue.depth", waiting as f64);
        self.obs.observe(
            "serve.queue.wait_seconds",
            env.queued.elapsed().as_secs_f64(),
        );
        self.stats.requests_served += 1;
        self.obs.counter("serve.requests_total", 1);
        let label = env.req.label();
        let timer = self.obs.timer(&format!("serve.request.{label}.seconds"));
        let result = self.dispatch(env.req);
        timer.stop();
        if result.is_err() {
            self.obs.counter("serve.request_errors_total", 1);
        }
        // A client that gave up on its reply is not an error.
        let _ = env.reply.send(result);
    }

    fn dispatch(&mut self, req: Request) -> Result<Response, ServeError> {
        match req {
            Request::Ingest(batch) => {
                self.est.ingest(&batch)?;
                // Log the accepted batch before the refit work and the
                // ack — with `fsync_every = 1`, an acked batch is on
                // disk. A rejected batch (the `?` above) logs nothing.
                if self.durable.is_some() {
                    self.seq += 1;
                    let seq = self.seq;
                    let obs = self.obs.clone();
                    if let Some(d) = &mut self.durable {
                        d.append(seq, &batch, &obs)?;
                    }
                }
                let ack = self.post_ingest()?;
                self.maybe_snapshot()?;
                Ok(Response::Ingested(ack))
            }
            Request::Posterior(j) => {
                if j >= self.est.assertion_count() {
                    return Err(ServeError::Sense(SenseError::DimensionMismatch {
                        what: "query assertion id vs m",
                        expected: self.est.assertion_count() as usize,
                        actual: j as usize,
                    }));
                }
                let fit = self.fresh_fit()?;
                Ok(Response::Posterior(fit.posterior[j as usize]))
            }
            Request::Posteriors => {
                let fit = self.fresh_fit()?;
                Ok(Response::Posteriors(fit.posterior.clone()))
            }
            Request::TopSources(k) => {
                let fit = self.fresh_fit()?;
                Ok(Response::TopSources(rank_sources(&fit, k)))
            }
            Request::Bound { assertions, method } => {
                let fit = self.fresh_fit()?;
                let data = self.est.snapshot();
                let assertions = if assertions.is_empty() {
                    (0..self.est.assertion_count()).collect()
                } else {
                    assertions
                };
                let method = method.unwrap_or_else(|| self.cfg.bound.clone());
                let bound = bound_for_assertions_traced(
                    &data,
                    &fit.theta,
                    &method,
                    &assertions,
                    self.cfg.parallelism,
                    &self.obs,
                )?;
                Ok(Response::Bound(bound))
            }
            Request::Stats => Ok(Response::Stats(self.stats_snapshot())),
            Request::Metrics => Ok(Response::Metrics(Box::new(self.rec.snapshot()))),
            // Only the sharded router keeps a partition map; the
            // unsharded worker cannot answer this (and no public
            // `ServeHandle` method sends it).
            Request::Topology => Err(ServeError::Protocol(
                "topology is only served by the sharded tier",
            )),
            Request::Shutdown => Ok(Response::ShuttingDown(self.stats_snapshot())),
            #[cfg(test)]
            Request::InjectPanic => panic!("injected worker panic"),
            #[cfg(test)]
            Request::Park { ack, release } => {
                let _ = ack.send(());
                let _ = release.recv();
                Ok(Response::Stats(self.stats_snapshot()))
            }
        }
    }

    /// The post-ingest half of the ingest path, shared by live requests
    /// and WAL-tail replay: invalidate the probe cache, apply the
    /// chain-refit policy, refresh the claim counters, and build the
    /// ack.
    fn post_ingest(&mut self) -> Result<IngestAck, ServeError> {
        // The log changed: any cached probe is stale.
        self.probe_fit = None;
        let mut refitted = false;
        if self.cfg.refit_pending_claims > 0 && self.est.pending() >= self.cfg.refit_pending_claims
        {
            self.chain_refit()?;
            refitted = true;
        }
        self.stats.total_claims = self.est.claim_count();
        self.stats.pending_claims = self.est.pending();
        Ok(IngestAck {
            total_claims: self.est.claim_count(),
            pending_claims: self.est.pending(),
            refitted,
        })
    }

    /// Writes a checkpoint when the configured cadence is due. The WAL
    /// is truncated afterwards: the snapshot absorbed it, so recovery
    /// replays only the tail since this point.
    fn maybe_snapshot(&mut self) -> Result<(), ServeError> {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.should_snapshot(self.seq));
        if !due {
            return Ok(());
        }
        let snap = WorkerSnapshot {
            seq: self.seq,
            stream: self.est.export_state(),
            chain_fit: self.chain_fit.as_deref().map(EmFitBits::from_fit),
            stats: self.stats_snapshot(),
        };
        let seq = self.seq;
        let obs = self.obs.clone();
        if let Some(d) = &mut self.durable {
            d.write_snapshot(seq, &snap, true, &obs)?;
        }
        Ok(())
    }

    /// Advances the warm-start chain: a full refit whose `θ̂` seeds the
    /// next one. Only ingest processing calls this, so the chain — and
    /// with it every served number — is a pure function of the ingest
    /// sequence, never of query timing.
    fn chain_refit(&mut self) -> Result<(), ServeError> {
        match self.est.estimate_with_stats() {
            Ok((fit, stats)) => {
                self.stats.chain_refits += 1;
                self.obs.counter("serve.refit.chain_total", 1);
                self.note_refit(&stats);
                self.chain_fit = Some(Arc::new(fit));
                Ok(())
            }
            Err(e) => {
                self.stats.failed_refits += 1;
                self.obs.counter("serve.refit.failed_total", 1);
                Err(ServeError::Sense(e))
            }
        }
    }

    /// The fit covering the full current log: the chain fit when nothing
    /// is pending, else a cached *probe* refit — fresh, but leaving the
    /// warm-start chain untouched (see [`StreamingEstimator::peek_estimate`]).
    fn fresh_fit(&mut self) -> Result<Arc<EmFit>, ServeError> {
        if self.est.pending() == 0 {
            if let Some(fit) = &self.chain_fit {
                return Ok(Arc::clone(fit));
            }
        }
        if let Some((at, fit)) = &self.probe_fit {
            if *at == self.est.claim_count() {
                self.stats.probe_cache_hits += 1;
                self.obs.counter("serve.cache.probe_hits_total", 1);
                return Ok(Arc::clone(fit));
            }
        }
        match self.est.peek_estimate() {
            Ok((fit, stats)) => {
                self.stats.probe_refits += 1;
                self.obs.counter("serve.refit.probe_total", 1);
                self.note_refit(&stats);
                let fit = Arc::new(fit);
                self.probe_fit = Some((self.est.claim_count(), Arc::clone(&fit)));
                Ok(fit)
            }
            Err(e) => {
                self.stats.failed_refits += 1;
                self.obs.counter("serve.refit.failed_total", 1);
                Err(ServeError::Sense(e))
            }
        }
    }

    /// Per-refit bookkeeping shared by chain and probe refits: warm and
    /// delta-mode counters, plus the last refit's shape.
    fn note_refit(&mut self, stats: &RefitStats) {
        if stats.warm {
            self.stats.warm_refits += 1;
            self.obs.counter("serve.refit.warm_total", 1);
        }
        match stats.mode {
            RefitOutcome::Full => {}
            RefitOutcome::Delta => {
                self.stats.delta_refits += 1;
                self.obs.counter("serve.refit.delta_total", 1);
            }
            RefitOutcome::Fallback => {
                self.stats.fallback_refits += 1;
                self.obs.counter("serve.refit.fallback_total", 1);
            }
        }
        self.stats.last_refit_iterations = Some(stats.iterations);
        self.stats.last_touched_assertions = Some(stats.touched_assertions);
        self.stats.last_touched_sources = Some(stats.touched_sources);
        self.stats.last_ll_exact = Some(stats.ll_exact);
    }

    fn stats_snapshot(&self) -> ServeStats {
        ServeStats {
            total_claims: self.est.claim_count(),
            pending_claims: self.est.pending(),
            ..self.stats
        }
    }
}

/// Ranks every source by independent-claim precision, best first, and
/// keeps the top `k`.
fn rank_sources(fit: &EmFit, k: usize) -> Vec<SourceRank> {
    let z = fit.theta.z();
    let mut ranks: Vec<SourceRank> = fit
        .theta
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| SourceRank {
            source: i as u32,
            precision: z * s.a / (z * s.a + (1.0 - z) * s.b),
            params: *s,
        })
        .collect();
    ranks.sort_by(|x, y| {
        y.precision
            .partial_cmp(&x.precision)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.source.cmp(&y.source))
    });
    ranks.truncate(k);
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use socsense_core::Theta;

    fn service_over(n: u32, m: u32) -> QueryService {
        QueryService::spawn(n, m, FollowerGraph::new(n), ServeConfig::default()).unwrap()
    }

    #[test]
    fn spawn_validates_shape() {
        assert!(matches!(
            QueryService::spawn(0, 2, FollowerGraph::new(0), ServeConfig::default()),
            Err(ServeError::Sense(SenseError::EmptyData))
        ));
        assert!(matches!(
            QueryService::spawn(
                3,
                2,
                FollowerGraph::new(3),
                ServeConfig {
                    warm_blend: 1.5,
                    ..ServeConfig::default()
                }
            ),
            Err(ServeError::Sense(SenseError::BadConfig { .. }))
        ));
    }

    #[test]
    fn bad_batch_is_rejected_atomically() {
        let svc = service_over(2, 2);
        let client = svc.handle();
        let err = client
            .ingest(vec![TimedClaim::new(0, 0, 1), TimedClaim::new(7, 0, 2)])
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Sense(SenseError::DimensionMismatch { .. })
        ));
        let ack = client.ingest(vec![TimedClaim::new(0, 0, 1)]).unwrap();
        assert_eq!(ack.total_claims, 1, "bad batch must not have landed");
        svc.shutdown().unwrap();
    }

    #[test]
    fn out_of_range_posterior_query_is_rejected() {
        let svc = service_over(2, 2);
        let client = svc.handle();
        client.ingest(vec![TimedClaim::new(0, 0, 1)]).unwrap();
        assert!(matches!(
            client.posterior(5),
            Err(ServeError::Sense(SenseError::DimensionMismatch { .. }))
        ));
        svc.shutdown().unwrap();
    }

    #[test]
    fn calls_after_shutdown_report_closed() {
        let svc = service_over(2, 2);
        let client = svc.handle();
        client.ingest(vec![TimedClaim::new(0, 0, 1)]).unwrap();
        svc.shutdown().unwrap();
        assert!(matches!(client.stats(), Err(ServeError::Closed)));
        assert!(matches!(client.posterior(0), Err(ServeError::Closed)));
    }

    #[test]
    fn top_sources_ranks_by_precision_and_clamps_k() {
        let mut fit_theta = Theta::neutral(3);
        fit_theta.set_source(
            0,
            socsense_core::SourceParams {
                a: 0.9,
                b: 0.1,
                f: 0.5,
                g: 0.5,
            },
        );
        fit_theta.set_source(
            2,
            socsense_core::SourceParams {
                a: 0.8,
                b: 0.1,
                f: 0.5,
                g: 0.5,
            },
        );
        let fit = EmFit {
            theta: fit_theta,
            posterior: vec![],
            log_likelihood: 0.0,
            iterations: 0,
            converged: true,
            ll_history: vec![],
            log_odds: vec![],
        };
        let ranks = rank_sources(&fit, 10);
        assert_eq!(ranks.len(), 3, "k larger than n is clamped");
        assert_eq!(ranks[0].source, 0);
        assert_eq!(ranks[1].source, 2);
        assert!(ranks[0].precision > ranks[1].precision);
        assert_eq!(rank_sources(&fit, 2).len(), 2);
    }

    #[test]
    fn probe_cache_serves_repeat_queries_between_batches() {
        let svc = QueryService::spawn(
            3,
            2,
            FollowerGraph::new(3),
            ServeConfig {
                // Debounced: the threshold never trips, so queries probe.
                refit_pending_claims: 100,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let client = svc.handle();
        let ack = client
            .ingest(vec![TimedClaim::new(0, 0, 1), TimedClaim::new(1, 1, 2)])
            .unwrap();
        assert!(!ack.refitted);
        client.posterior(0).unwrap();
        client.posterior(1).unwrap();
        client.posteriors().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.chain_refits, 0);
        assert_eq!(stats.probe_refits, 1, "one probe covers all three queries");
        assert_eq!(stats.probe_cache_hits, 2);
        svc.shutdown().unwrap();
    }

    #[test]
    fn delta_mode_counts_scoped_refits_and_surfaces_metrics() {
        use socsense_core::{DeltaConfig, RefitMode};
        let svc = QueryService::spawn(
            4,
            6,
            FollowerGraph::new(4),
            ServeConfig {
                // Thresholds out of reach: after the seeding full refit,
                // every ingest-driven refit must run scoped.
                refit_mode: RefitMode::Delta(DeltaConfig {
                    max_drift: 1e9,
                    max_batch_fraction: 1e9,
                    max_divergence: 1e9,
                    ..DeltaConfig::default()
                }),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let client = svc.handle();
        for t in 0..6u64 {
            client
                .ingest(vec![TimedClaim::new((t % 4) as u32, (t % 6) as u32, t + 1)])
                .unwrap();
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.chain_refits, 6);
        assert_eq!(
            stats.delta_refits, 5,
            "first refit seeds, the rest are scoped"
        );
        assert_eq!(stats.fallback_refits, 0);
        assert!(stats.last_touched_assertions.unwrap_or(usize::MAX) <= 6);
        assert!(stats.last_touched_sources.unwrap_or(usize::MAX) <= 4);
        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.counter("serve.refit.delta_total"), 5);
        assert_eq!(metrics.counter("stream.refit.delta_total"), 5);
        assert!(metrics
            .histogram("stream.delta.touched_assertions")
            .is_some());
        svc.shutdown().unwrap();
    }

    #[test]
    fn spawn_rejects_invalid_delta_config() {
        use socsense_core::{DeltaConfig, RefitMode};
        assert!(matches!(
            QueryService::spawn(
                2,
                2,
                FollowerGraph::new(2),
                ServeConfig {
                    refit_mode: RefitMode::Delta(DeltaConfig {
                        max_drift: -1.0,
                        ..DeltaConfig::default()
                    }),
                    ..ServeConfig::default()
                }
            ),
            Err(ServeError::Sense(SenseError::BadConfig { .. }))
        ));
    }

    #[test]
    fn drop_without_shutdown_joins_the_worker() {
        let svc = service_over(2, 2);
        let client = svc.handle();
        client.ingest(vec![TimedClaim::new(0, 0, 1)]).unwrap();
        drop(svc);
        assert!(matches!(client.stats(), Err(ServeError::Closed)));
    }

    #[test]
    fn over_limit_requests_are_shed_with_overloaded() {
        let svc = QueryService::spawn(
            2,
            2,
            FollowerGraph::new(2),
            ServeConfig {
                max_queue_depth: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let client = svc.handle();
        // Park the worker so queued requests stay queued.
        let (ack_tx, ack_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let parked = client.raw_send(Request::Park {
            ack: ack_tx,
            release: release_rx,
        });
        ack_rx.recv().unwrap();
        // Fill the queue to the limit; the reply receivers stay alive so
        // the worker's answers have somewhere to go.
        let queued: Vec<_> = (0..2).map(|_| client.raw_send(Request::Stats)).collect();
        assert!(matches!(client.stats(), Err(ServeError::Overloaded)));
        release_tx.send(()).unwrap();
        for rx in queued {
            assert!(matches!(rx.recv().unwrap(), Ok(Response::Stats(_))));
        }
        assert!(matches!(parked.recv().unwrap(), Ok(Response::Stats(_))));
        // Once the queue drained, the same request is admitted again.
        client.stats().unwrap();
        svc.shutdown().unwrap();
    }

    #[test]
    fn shutdown_is_admitted_past_a_full_queue() {
        let svc = QueryService::spawn(
            2,
            2,
            FollowerGraph::new(2),
            ServeConfig {
                max_queue_depth: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let client = svc.handle();
        // Inflate the shared depth gauge past the limit without queueing
        // anything: ordinary requests shed, shutdown still goes through.
        client.depth.store(5, Ordering::Relaxed);
        assert!(matches!(client.stats(), Err(ServeError::Overloaded)));
        svc.shutdown().unwrap();
    }

    #[test]
    fn worker_panic_surfaces_from_shutdown() {
        let svc = service_over(2, 2);
        let client = svc.handle();
        let rx = client.raw_send(Request::InjectPanic);
        // The worker died mid-request: the reply channel just closes.
        assert!(rx.recv().is_err());
        match svc.shutdown() {
            Err(ServeError::WorkerPanicked(what)) => {
                assert!(what.contains("injected worker panic"), "payload: {what}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}
