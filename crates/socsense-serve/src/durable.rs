//! Durable serve state: the WAL record and snapshot payload types, the
//! shared append/checkpoint engine, and the sharded router's on-disk
//! history spill (see DESIGN.md §12).
//!
//! Every float inside a payload travels as `f64::to_bits` (via
//! [`StreamingState`] / [`EmFitBits`]), so a restored worker is
//! bit-identical to the one that wrote the checkpoint — recovery is
//! *restore the newest snapshot, then replay the WAL tail through the
//! normal ingest path*, and both steps are pure functions of the logged
//! ingest sequence.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use socsense_core::{EmFitBits, StreamingState};
use socsense_graph::TimedClaim;
use socsense_obs::Obs;
use socsense_persist::{recover, rewrite_atomic, SnapshotStore, WalWriter};

use crate::api::{PersistConfig, ServeError, ServeStats};
use crate::shard::{LastRefit, SlotCounters};

/// One WAL record: an accepted ingest batch stamped with its position
/// in the ingest sequence (the unsharded worker's batch number, or the
/// sharded router's epoch). Sequence numbers are dense: record `k + 1`
/// always follows record `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct WalRecord {
    /// 1-based position in the ingest sequence.
    pub seq: u64,
    /// The batch, verbatim (global ids).
    pub claims: Vec<TimedClaim>,
}

/// The unsharded worker's checkpoint: the estimator's full streaming
/// state, the cached chain fit, and the operating counters — everything
/// the worker needs to answer queries bit-identically after a restart.
#[derive(Serialize, Deserialize)]
pub(crate) struct WorkerSnapshot {
    /// The ingest sequence position this checkpoint covers.
    pub seq: u64,
    pub stream: StreamingState,
    pub chain_fit: Option<EmFitBits>,
    /// Counters at checkpoint time. Chain-refit counters are advanced
    /// exactly by tail replay; query-driven counters (probe refits,
    /// cache hits, requests served) resume from their checkpoint values
    /// and are not replayed.
    pub stats: ServeStats,
}

/// One cluster's slice of a router checkpoint: global membership, the
/// compacted estimator's streaming state (local ids), the cached chain
/// fit, and the cluster's counters. Shipping this to whichever shard
/// the rendezvous hash picks *after* restart is what makes a cluster
/// move equal to snapshot ship + tail replay.
#[derive(Serialize, Deserialize)]
pub(crate) struct ClusterSnapshot {
    pub key: u32,
    pub sources: Vec<u32>,
    pub assertions: Vec<u32>,
    pub pending: usize,
    pub stream: StreamingState,
    pub chain_fit: Option<EmFitBits>,
    pub counters: SlotCounters,
    pub last_refit: Option<LastRefit>,
}

/// The sharded router's checkpoint: router counters plus every live
/// cluster's state, in ascending key order.
#[derive(Serialize, Deserialize)]
pub(crate) struct RouterSnapshot {
    pub epoch: u64,
    pub total_claims: usize,
    pub requests_served: u64,
    pub clusters: Vec<ClusterSnapshot>,
}

/// What [`DurableLog::open`] found on disk.
pub(crate) struct Recovered<S> {
    /// The newest valid snapshot, if any: `(sequence, payload)`.
    pub snapshot: Option<(u64, S)>,
    /// Every valid WAL record, in append order (including records the
    /// snapshot already covers — the router's membership dry-replay
    /// needs the full sequence; callers filter by `seq`).
    pub records: Vec<WalRecord>,
}

/// The durability engine shared by the unsharded worker and the sharded
/// router: one WAL of ingest batches plus a snapshot directory.
pub(crate) struct DurableLog {
    wal: WalWriter,
    snaps: SnapshotStore,
    snapshot_every: usize,
}

impl DurableLog {
    /// Opens (creating as needed) the durable state under
    /// `cfg.data_dir` and recovers whatever a previous service left
    /// there: the newest valid snapshot and every valid WAL record. A
    /// torn final WAL line — the signature of a crash mid-append — is
    /// truncated away and counted on `serve.wal.truncated_tail_total`.
    pub fn open<S: Deserialize>(
        cfg: &PersistConfig,
        obs: &Obs,
    ) -> Result<(Self, Recovered<S>), ServeError> {
        let wal_path = cfg.data_dir.join("wal.jsonl");
        let rx = recover::<WalRecord>(&wal_path)?;
        if rx.truncated_tail {
            obs.counter("serve.wal.truncated_tail_total", 1);
        }
        let snaps = SnapshotStore::open(&cfg.data_dir.join("snapshots"))?;
        let snapshot = snaps.latest::<S>()?;
        if snapshot.is_some() {
            obs.counter("serve.snapshot.restores_total", 1);
        }
        let since = snapshot.as_ref().map_or(0, |(seq, _)| *seq);
        let replayable = rx.records.iter().filter(|r| r.seq > since).count();
        obs.counter("serve.wal.recovered_batches_total", replayable as u64);
        let wal = WalWriter::open(&wal_path, cfg.fsync_every)?;
        Ok((
            Self {
                wal,
                snaps,
                snapshot_every: cfg.snapshot_every,
            },
            Recovered {
                snapshot,
                records: rx.records,
            },
        ))
    }

    /// Appends one accepted batch to the WAL (write-ahead of the ack:
    /// with `fsync_every = 1`, a batch the client saw acknowledged is on
    /// disk).
    pub fn append(&mut self, seq: u64, claims: &[TimedClaim], obs: &Obs) -> Result<(), ServeError> {
        let bytes_before = self.wal.bytes_total();
        let fsyncs_before = self.wal.fsyncs_total();
        self.wal.append(&WalRecord {
            seq,
            claims: claims.to_vec(),
        })?;
        obs.counter("serve.wal.appends_total", 1);
        obs.counter(
            "serve.wal.bytes_total",
            self.wal.bytes_total() - bytes_before,
        );
        obs.counter(
            "serve.wal.fsyncs_total",
            self.wal.fsyncs_total() - fsyncs_before,
        );
        Ok(())
    }

    /// Whether the configured checkpoint cadence is due at `seq`.
    pub fn should_snapshot(&self, seq: u64) -> bool {
        self.snapshot_every > 0 && seq.is_multiple_of(self.snapshot_every as u64)
    }

    /// Writes checkpoint `seq` atomically, keeps the two newest
    /// snapshots, and — when `truncate_wal` — empties the WAL, whose
    /// records the checkpoint has fully absorbed. (The router keeps its
    /// WAL: the full record sequence is its membership replay source.)
    pub fn write_snapshot<S: Serialize>(
        &mut self,
        seq: u64,
        payload: &S,
        truncate_wal: bool,
        obs: &Obs,
    ) -> Result<(), ServeError> {
        let bytes_before = self.snaps.bytes_total();
        self.snaps.write(seq, payload)?;
        self.snaps.prune(2)?;
        obs.counter("serve.snapshot.writes_total", 1);
        obs.counter(
            "serve.snapshot.bytes_total",
            self.snaps.bytes_total() - bytes_before,
        );
        if truncate_wal {
            self.wal.truncate()?;
        }
        Ok(())
    }
}

/// One entry of a cluster's claim history: `(ingest epoch, position in
/// that epoch's batch, the claim)`. The pair orders entries globally.
pub(crate) type HistoryEntry = (u64, u32, TimedClaim);

/// On-disk framing of one [`HistoryEntry`] in a cluster segment.
#[derive(Serialize, Deserialize)]
struct HistoryRecord {
    epoch: u64,
    pos: u32,
    claim: TimedClaim,
}

/// Where the router keeps per-cluster claim histories — the replay
/// source for membership-change rebuilds.
///
/// `Memory` is the original in-process map. `Disk` spills each cluster
/// to its own segment file under `<data_dir>/clusters/`, so the
/// router's resident state stays bounded by the live fit caches, not by
/// the claim log. Segments are *not* crash-critical: recovery rebuilds
/// them from scratch by dry-replaying the WAL, so segment appends skip
/// fsync entirely.
pub(crate) enum HistoryBackend {
    Memory(BTreeMap<u32, Vec<HistoryEntry>>),
    Disk(PathBuf),
}

impl HistoryBackend {
    pub fn memory() -> Self {
        HistoryBackend::Memory(BTreeMap::new())
    }

    /// A disk spill rooted at `dir` (created as needed).
    pub fn disk(dir: &Path) -> Result<Self, ServeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::Persist(format!("creating {}: {e}", dir.display())))?;
        Ok(HistoryBackend::Disk(dir.to_path_buf()))
    }

    fn segment(dir: &Path, key: u32) -> PathBuf {
        dir.join(format!("cluster-{key:010}.jsonl"))
    }

    /// Drops every cluster's history (recovery rebuilds from the WAL).
    pub fn wipe(&mut self) -> Result<(), ServeError> {
        match self {
            HistoryBackend::Memory(map) => map.clear(),
            HistoryBackend::Disk(dir) => {
                let entries = std::fs::read_dir(&*dir)
                    .map_err(|e| ServeError::Persist(format!("listing {}: {e}", dir.display())))?;
                for entry in entries {
                    let entry = entry.map_err(|e| {
                        ServeError::Persist(format!("listing {}: {e}", dir.display()))
                    })?;
                    let path = entry.path();
                    if path.extension().is_some_and(|x| x == "jsonl") {
                        std::fs::remove_file(&path).map_err(|e| {
                            ServeError::Persist(format!("removing {}: {e}", path.display()))
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Appends entries (already in `(epoch, pos)` order) to `key`'s
    /// history.
    pub fn append(&mut self, key: u32, entries: &[HistoryEntry]) -> Result<(), ServeError> {
        match self {
            HistoryBackend::Memory(map) => {
                map.entry(key).or_default().extend_from_slice(entries);
            }
            HistoryBackend::Disk(dir) => {
                let mut w = WalWriter::open(&Self::segment(dir, key), 0)?;
                for &(epoch, pos, claim) in entries {
                    w.append(&HistoryRecord { epoch, pos, claim })?;
                }
            }
        }
        Ok(())
    }

    /// Removes and returns `key`'s history (`None` when it has none).
    pub fn remove(&mut self, key: u32) -> Result<Option<Vec<HistoryEntry>>, ServeError> {
        match self {
            HistoryBackend::Memory(map) => Ok(map.remove(&key)),
            HistoryBackend::Disk(dir) => {
                let path = Self::segment(dir, key);
                if !path.exists() {
                    return Ok(None);
                }
                let entries = read_segment(&path)?;
                std::fs::remove_file(&path).map_err(|e| {
                    ServeError::Persist(format!("removing {}: {e}", path.display()))
                })?;
                Ok(Some(entries))
            }
        }
    }

    /// Folds `absorbed` (a merged-away cluster's history) into
    /// `winner`'s, restoring global `(epoch, pos)` order. The pairs are
    /// unique, so this is a deterministic merge of two sorted runs.
    pub fn merge(&mut self, winner: u32, absorbed: Vec<HistoryEntry>) -> Result<(), ServeError> {
        match self {
            HistoryBackend::Memory(map) => {
                let dst = map.entry(winner).or_default();
                dst.extend(absorbed);
                dst.sort_unstable_by_key(|&(seq, pos, _)| (seq, pos));
            }
            HistoryBackend::Disk(dir) => {
                let path = Self::segment(dir, winner);
                let mut dst = if path.exists() {
                    read_segment(&path)?
                } else {
                    Vec::new()
                };
                dst.extend(absorbed);
                dst.sort_unstable_by_key(|&(seq, pos, _)| (seq, pos));
                let records: Vec<HistoryRecord> = dst
                    .into_iter()
                    .map(|(epoch, pos, claim)| HistoryRecord { epoch, pos, claim })
                    .collect();
                rewrite_atomic(&path, &records)?;
            }
        }
        Ok(())
    }

    /// `key`'s full history, in `(epoch, pos)` order.
    pub fn read(&self, key: u32) -> Result<Vec<HistoryEntry>, ServeError> {
        match self {
            HistoryBackend::Memory(map) => Ok(map.get(&key).cloned().unwrap_or_default()),
            HistoryBackend::Disk(dir) => {
                let path = Self::segment(dir, key);
                if !path.exists() {
                    return Ok(Vec::new());
                }
                read_segment(&path)
            }
        }
    }
}

fn read_segment(path: &Path) -> Result<Vec<HistoryEntry>, ServeError> {
    let rx = recover::<HistoryRecord>(path)?;
    Ok(rx
        .records
        .into_iter()
        .map(|r| (r.epoch, r.pos, r.claim))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("socsense-serve-hist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entries_of(seed: u64, count: u32) -> Vec<HistoryEntry> {
        (0..count)
            .map(|p| {
                (
                    seed,
                    p,
                    TimedClaim::new(p % 3, p % 2, seed * 100 + p as u64),
                )
            })
            .collect()
    }

    #[test]
    fn disk_backend_mirrors_memory_backend() {
        let dir = tmp_dir("mirror");
        let mut mem = HistoryBackend::memory();
        let mut disk = HistoryBackend::disk(&dir).unwrap();
        for backend in [&mut mem, &mut disk] {
            backend.append(1, &entries_of(1, 3)).unwrap();
            backend.append(2, &entries_of(2, 2)).unwrap();
            backend.append(1, &entries_of(3, 1)).unwrap();
            // Cluster 2 merges away into cluster 1.
            let absorbed = backend.remove(2).unwrap().unwrap();
            backend.merge(1, absorbed).unwrap();
        }
        assert_eq!(mem.read(1).unwrap(), disk.read(1).unwrap());
        assert_eq!(mem.read(2).unwrap(), Vec::new());
        assert_eq!(disk.read(2).unwrap(), Vec::new());
        assert!(mem.remove(9).unwrap().is_none());
        assert!(disk.remove(9).unwrap().is_none());
        // Merged history is globally ordered by (epoch, pos).
        let h = disk.read(1).unwrap();
        let keys: Vec<(u64, u32)> = h.iter().map(|&(e, p, _)| (e, p)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(h.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flips one interior line of `key`'s segment to non-JSON garbage,
    /// leaving the final line (the torn-tail slot) intact.
    fn corrupt_interior_line(dir: &Path, key: u32) {
        let path = HistoryBackend::segment(dir, key);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.len() >= 2,
            "need an interior line to corrupt, got {} line(s)",
            lines.len()
        );
        let victim = lines.len() / 2 - lines.len().is_multiple_of(2) as usize;
        lines[victim] = "{\"epoch\":garbage";
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    }

    #[test]
    fn interior_segment_corruption_is_loud_never_a_silent_truncation() {
        let dir = tmp_dir("interior");
        let mut disk = HistoryBackend::disk(&dir).unwrap();
        disk.append(5, &entries_of(1, 2)).unwrap();
        disk.append(5, &entries_of(2, 2)).unwrap();
        corrupt_interior_line(&dir, 5);

        // Every access path must refuse: returning the readable prefix
        // would silently drop claims from the rebuild replay source.
        let err = disk.read(5).unwrap_err().to_string();
        assert!(
            err.contains("corrupt"),
            "read error names corruption: {err}"
        );
        assert!(
            err.contains("cluster-0000000005.jsonl"),
            "read error names the segment: {err}"
        );
        let err = disk.remove(5).unwrap_err().to_string();
        assert!(err.contains("corrupt"), "remove error: {err}");
        assert!(
            HistoryBackend::segment(&dir, 5).exists(),
            "a failed remove must leave the evidence on disk"
        );
        let err = disk.merge(5, entries_of(9, 1)).unwrap_err().to_string();
        assert!(err.contains("corrupt"), "merge error: {err}");

        // Other clusters stay readable.
        disk.append(6, &entries_of(3, 1)).unwrap();
        assert_eq!(disk.read(6).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_segment_line_is_dropped_but_interior_tear_is_not() {
        let dir = tmp_dir("torn");
        let mut disk = HistoryBackend::disk(&dir).unwrap();
        disk.append(5, &entries_of(1, 3)).unwrap();
        let path = HistoryBackend::segment(&dir, 5);

        // Chop the final line mid-record: the crash-mid-append
        // signature. Recovery semantics allow dropping exactly that.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 8]).unwrap();
        assert_eq!(
            disk.read(5).unwrap().len(),
            2,
            "torn tail drops only the final record"
        );

        // The same tear *inside* the file (a missing newline splices
        // two records) is interior corruption and must be loud.
        let spliced = text.replacen('\n', "", 1);
        std::fs::write(&path, spliced).unwrap();
        let err = disk.read(5).unwrap_err().to_string();
        assert!(err.contains("corrupt"), "spliced records are loud: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wipe_drops_every_segment() {
        let dir = tmp_dir("wipe");
        let mut disk = HistoryBackend::disk(&dir).unwrap();
        disk.append(4, &entries_of(1, 2)).unwrap();
        disk.append(7, &entries_of(2, 2)).unwrap();
        disk.wipe().unwrap();
        assert_eq!(disk.read(4).unwrap(), Vec::new());
        assert_eq!(disk.read(7).unwrap(), Vec::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
