//! The cluster-partitioned router of the sharded serving tier.
//!
//! A [`ShardedService`] owns one router thread and `N` shard worker
//! threads ([`ShardWorker`](crate::shard::ShardWorker)). The router is
//! the single writer of the partition map: it tracks assertion clusters
//! with a [`ClusterTracker`] (union-find over claim co-occurrence),
//! assigns each *new* cluster to a shard by a deterministic rendezvous
//! hash of its key (the smallest assertion id), fans ingest batches out
//! by cluster, and merges fan-out answers in fixed shard/key order —
//! so every served number is a pure function of the ingest sequence and
//! the query parameters, independent of the shard count.
//!
//! # Epoch / drain protocol
//!
//! The router stamps every ingest batch with a fresh epoch. Shards
//! involved in the batch receive the cluster operations and must ack
//! (the drain barrier); uninvolved shards receive a bare epoch marker
//! over the same FIFO channel, which is delivered — and therefore
//! applied — before any later query. Queries carry the epoch the router
//! expects; a shard answering at a different epoch reports a protocol
//! error instead of mixing epochs into a fan-out.
//!
//! # Determinism argument
//!
//! Cluster membership, per-cluster claim sub-streams, and per-cluster
//! batch boundaries are all derived from the global ingest sequence
//! alone — never from the shard count or query timing. Each cluster's
//! estimator state is a pure function of `(membership, batch history)`
//! because membership changes rebuild the cluster by replaying its
//! history under the live refit policy. Fan-out replies are merged
//! after sorting by shard index, folding in ascending cluster-key
//! order, so the merge order is fixed too. Hence `Shards(1)`,
//! `Shards(2)`, and `Shards(4)` produce `f64::to_bits`-identical
//! answers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use socsense_core::{
    exact_bound, BoundResult, ClusterTracker, ClusterUpdate, SenseError, SourceParams,
    StreamingEstimator,
};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_obs::{Obs, Recorder, Tee};

use crate::api::{
    ClusterAssignment, IngestAck, PersistConfig, ServeConfig, ServeError, ServeStats,
    ShardTopology, SourceRank,
};
use crate::durable::{DurableLog, HistoryBackend, HistoryEntry, RouterSnapshot};
use crate::service::{panic_message, Envelope, Request, Response, ServeHandle};
use crate::shard::{
    ClusterAck, ClusterOp, LastRefit, ShardMsg, ShardQuery, ShardReply, ShardReturn, ShardWorker,
};

/// SplitMix64 finalizer: a full-avalanche mix of one 64-bit word.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rendezvous (highest-random-weight) assignment of a cluster key to a
/// shard: every participant computes the same winner from the key
/// alone, with no assignment table to coordinate. Strict `>` keeps the
/// lowest shard index on (astronomically unlikely) weight ties.
pub(crate) fn rendezvous_shard(key: u32, shards: usize) -> usize {
    let mut best = 0usize;
    let mut best_weight = 0u64;
    for s in 0..shards {
        let weight = splitmix64(((key as u64) << 32) ^ (s as u64 + 1));
        if s == 0 || weight > best_weight {
            best = s;
            best_weight = weight;
        }
    }
    best
}

/// The Bayes-risk contribution of an assertion no source ever claimed:
/// with no claim pattern to condition on, the optimal decision is the
/// prior coin flip.
fn neutral_bound() -> BoundResult {
    exact_bound(&[], 0.5).unwrap_or(BoundResult {
        error: 0.5,
        false_positive: 0.5,
        false_negative: 0.0,
    })
}

/// What the router knows about one live cluster.
struct RecordedCluster {
    shard: usize,
    n_sources: usize,
    n_assertions: usize,
    /// Pending-claim count from the owning shard's last ack.
    pending: usize,
}

/// Groups a sorted cluster history back into its original ingest
/// batches (one `Vec` per epoch, batch order preserved) so a rebuild
/// replays the refit policy over the exact boundaries the live path saw.
fn history_batches(history: &[HistoryEntry]) -> Vec<Vec<TimedClaim>> {
    let mut out: Vec<Vec<TimedClaim>> = Vec::new();
    let mut current = None;
    for &(seq, _, claim) in history {
        if current != Some(seq) {
            out.push(Vec::new());
            current = Some(seq);
        }
        if let Some(last) = out.last_mut() {
            last.push(claim);
        }
    }
    out
}

/// A sharded drop-in for [`QueryService`](crate::QueryService): the
/// same request surface, served by a router thread over `N` worker
/// shards partitioned by assertion cluster.
///
/// Answers are `f64::to_bits`-identical at every shard count: sharding
/// changes wall-clock behaviour, never served numbers. See the module
/// docs for the protocol and the determinism argument.
#[derive(Debug)]
pub struct ShardedService {
    tx: Sender<Envelope>,
    depth: Arc<AtomicUsize>,
    max_depth: usize,
    router: Option<JoinHandle<()>>,
    shards: usize,
}

/// A cheap, cloneable client of a [`ShardedService`].
///
/// Dereferences to [`ServeHandle`], so every unsharded client method
/// (ingest, posterior, bound, …) works unchanged; adds
/// [`topology`](Self::topology) for inspecting the partition map.
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    inner: ServeHandle,
}

impl std::ops::Deref for ShardedHandle {
    type Target = ServeHandle;

    fn deref(&self) -> &ServeHandle {
        &self.inner
    }
}

impl ShardedHandle {
    /// The current partition map: shard count, ingest epoch, and each
    /// live cluster's key, owning shard, and member counts (keys
    /// ascending).
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] when the service is gone.
    pub fn topology(&self) -> Result<ShardTopology, ServeError> {
        match self.inner.call(Request::Topology)? {
            Response::Topology(t) => Ok(*t),
            _ => Err(ServeError::Protocol("expected Topology")),
        }
    }
}

impl ShardedService {
    /// Spawns the router and `shards` worker threads over `n` sources
    /// and `m` assertions with the given follow relation.
    ///
    /// # Errors
    ///
    /// [`ServeError::Sense`] for an invalid shape or configuration —
    /// the same construction-error surface as
    /// [`QueryService::spawn`](crate::QueryService::spawn) — or a zero
    /// shard count.
    pub fn spawn(
        n: u32,
        m: u32,
        graph: FollowerGraph,
        config: ServeConfig,
        shards: usize,
    ) -> Result<Self, ServeError> {
        Self::spawn_with_obs(n, m, graph, config, shards, Obs::none())
    }

    /// As [`spawn`](Self::spawn), additionally teeing every metric the
    /// router and shards emit into `extra`. Metrics are
    /// observation-only and never change served numbers.
    ///
    /// # Errors
    ///
    /// See [`spawn`](Self::spawn).
    pub fn spawn_with_obs(
        n: u32,
        m: u32,
        graph: FollowerGraph,
        config: ServeConfig,
        shards: usize,
        extra: Obs,
    ) -> Result<Self, ServeError> {
        if shards == 0 {
            return Err(ServeError::Sense(SenseError::BadConfig {
                what: "sharded service needs at least one shard",
            }));
        }
        // Probe construction: surface exactly the shape/config errors
        // the unsharded service would, before any thread exists.
        {
            let mut probe = StreamingEstimator::new(n, m, graph.clone(), config.em)?;
            probe.set_warm_blend(config.warm_blend)?;
            probe.set_refit_mode(config.refit_mode)?;
        }
        let tracker = ClusterTracker::new(n, m, graph.clone())?;
        let rec = Arc::new(Recorder::new());
        let obs = match extra.sink() {
            Some(sink) => Obs::new(Arc::new(Tee::new(rec.clone(), sink))),
            None => Obs::new(rec.clone()),
        };
        let mut shard_tx = Vec::with_capacity(shards);
        let mut shard_depth = Vec::with_capacity(shards);
        let mut shard_workers = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            let depth = Arc::new(AtomicUsize::new(0));
            let worker =
                ShardWorker::new(i, config.clone(), graph.clone(), obs.clone(), depth.clone());
            let handle = std::thread::Builder::new()
                .name(format!("socsense-shard-{i}"))
                .spawn(move || worker.run(rx))
                // detlint: allow(P1) -- construction-time: no client exists yet, so a failed spawn panics the caller, not a worker others wait on
                .expect("spawning a shard worker thread");
            shard_tx.push(tx);
            shard_depth.push(depth);
            shard_workers.push(handle);
        }
        let depth = Arc::new(AtomicUsize::new(0));
        let router_depth = Arc::clone(&depth);
        let max_depth = config.max_queue_depth;
        let persist = config.persist.clone();
        let history = match &persist {
            Some(pcfg) => HistoryBackend::disk(&pcfg.data_dir.join("clusters"))?,
            None => HistoryBackend::memory(),
        };
        let (tx, rx) = mpsc::channel::<Envelope>();
        let mut router = Router {
            cfg: config,
            tracker,
            epoch: 0,
            total_claims: 0,
            requests_served: 0,
            recorded: BTreeMap::new(),
            history,
            shard_tx,
            shard_depth,
            shard_workers,
            rec,
            obs,
            depth: router_depth,
            durable: None,
            wedged: None,
        };
        // Recovery runs here, on the caller thread, with the shards
        // already live (they receive the snapshot's cluster states and
        // the WAL-tail replay) but before the router serves anything.
        if let Some(pcfg) = &persist {
            if let Err(e) = router.recover(pcfg) {
                router.stop_shards();
                return Err(e);
            }
        }
        let router = std::thread::Builder::new()
            .name("socsense-router".into())
            .spawn(move || router.run(rx))
            // detlint: allow(P1) -- construction-time: no client exists yet, so a failed spawn panics the caller, not a worker others wait on
            .expect("spawning the router thread");
        Ok(Self {
            tx,
            depth,
            max_depth,
            router: Some(router),
            shards,
        })
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// A new client handle. Handles stay valid until shutdown.
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle {
            inner: ServeHandle::internal(self.tx.clone(), Arc::clone(&self.depth), self.max_depth),
        }
    }

    /// Shuts the tier down gracefully: requests already queued are
    /// still answered, then the shards and the router exit and are
    /// joined. Returns the final operating statistics.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] when the router was already gone;
    /// [`ServeError::WorkerPanicked`] when the router — or any shard,
    /// surfaced through the router's shutdown reply — died by panic.
    pub fn shutdown(mut self) -> Result<ServeStats, ServeError> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> Result<ServeStats, ServeError> {
        let stats = match self.handle().inner.call(Request::Shutdown) {
            Ok(Response::ShuttingDown(stats)) => Ok(stats),
            Ok(_) => Err(ServeError::Protocol("expected ShuttingDown")),
            Err(e) => Err(e),
        };
        if let Some(router) = self.router.take() {
            // A panicked router must not be swallowed: it outranks
            // whatever the (necessarily failed) shutdown call returned.
            if let Err(payload) = router.join() {
                return Err(ServeError::WorkerPanicked(panic_message(payload)));
            }
        }
        stats
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        if self.router.is_some() {
            // Nobody is left to receive the error; a panic still gets
            // reported rather than vanishing with the service.
            if let Err(ServeError::WorkerPanicked(what)) = self.shutdown_impl() {
                eprintln!("socsense-serve: router or shard thread panicked: {what}");
            }
        }
    }
}

/// The single-threaded owner of the partition map and shard channels.
struct Router {
    cfg: ServeConfig,
    tracker: ClusterTracker,
    /// Ingest batches processed; every shard state and query is pinned
    /// to an epoch.
    epoch: u64,
    total_claims: usize,
    requests_served: u64,
    recorded: BTreeMap<u32, RecordedCluster>,
    /// Per-cluster claim history in `(epoch, position)` order — the
    /// replay source for membership-change rebuilds. In-memory without
    /// persistence; spilled to per-cluster segment files under
    /// `<data_dir>/clusters/` with it.
    history: HistoryBackend,
    shard_tx: Vec<Sender<ShardMsg>>,
    shard_depth: Vec<Arc<AtomicUsize>>,
    shard_workers: Vec<JoinHandle<()>>,
    rec: Arc<Recorder>,
    obs: Obs,
    depth: Arc<AtomicUsize>,
    /// Durability engine, when [`ServeConfig::persist`] is set.
    durable: Option<DurableLog>,
    /// Set when an ingest epoch failed after the WAL append but before
    /// the shard fan-out completed: the shards are missing that
    /// epoch's cluster operations, so every later request fails fast
    /// with this message instead of serving silently incomplete state.
    /// A restart clears the wedge by rebuilding from the WAL.
    wedged: Option<String>,
}

impl Router {
    fn run(mut self, rx: Receiver<Envelope>) {
        while let Ok(env) = rx.recv() {
            if matches!(env.req, Request::Shutdown) {
                // Graceful drain: everything already queued is answered
                // (the shards are still up); senders arriving after the
                // channel closes get `Closed`. The shutdown reply is
                // held back until the shards have been joined, so a
                // shard that died by panic surfaces in the result
                // instead of being swallowed.
                self.note_pickup(&env);
                let stats = self.stats_snapshot();
                while let Ok(queued) = rx.try_recv() {
                    self.answer(queued);
                }
                let result = match self.stop_shards() {
                    Some(what) => Err(ServeError::WorkerPanicked(what)),
                    None => stats.map(Response::ShuttingDown),
                };
                // A client that gave up on its reply is not an error.
                let _ = env.reply.send(result);
                return;
            }
            self.answer(env);
        }
        self.stop_shards();
    }

    /// Stops and joins every shard, reporting the first panic payload.
    fn stop_shards(&mut self) -> Option<String> {
        for (i, tx) in self.shard_tx.iter().enumerate() {
            self.shard_depth[i].fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(ShardMsg::Shutdown);
        }
        let mut panicked = None;
        for handle in self.shard_workers.drain(..) {
            if let Err(payload) = handle.join() {
                if panicked.is_none() {
                    panicked = Some(panic_message(payload));
                }
            }
        }
        panicked
    }

    /// Queue bookkeeping for one picked-up request: depth gauge, wait
    /// histogram, request counter.
    fn note_pickup(&mut self, env: &Envelope) {
        let waiting = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
        self.obs.gauge("serve.queue.depth", waiting as f64);
        self.obs.gauge("serve.router.queue.depth", waiting as f64);
        self.obs.observe(
            "serve.queue.wait_seconds",
            env.queued.elapsed().as_secs_f64(),
        );
        self.requests_served += 1;
        self.obs.counter("serve.requests_total", 1);
    }

    fn answer(&mut self, env: Envelope) {
        self.note_pickup(&env);
        let label = env.req.label();
        let timer = self.obs.timer(&format!("serve.request.{label}.seconds"));
        let result = self.dispatch(env.req);
        timer.stop();
        if result.is_err() {
            self.obs.counter("serve.request_errors_total", 1);
        }
        // A client that gave up on its reply is not an error.
        let _ = env.reply.send(result);
    }

    fn dispatch(&mut self, req: Request) -> Result<Response, ServeError> {
        if let Some(why) = &self.wedged {
            return Err(ServeError::Wedged(why.clone()));
        }
        match req {
            Request::Ingest(batch) => self.ingest(batch),
            Request::Posterior(j) => self.posterior(j),
            Request::Posteriors => self.posteriors(),
            Request::TopSources(k) => self.top_sources(k),
            Request::Bound { assertions, method } => self.bound(assertions, method),
            Request::Stats => Ok(Response::Stats(self.stats_snapshot()?)),
            Request::Metrics => Ok(Response::Metrics(Box::new(self.rec.snapshot()))),
            Request::Topology => Ok(Response::Topology(Box::new(self.topology()))),
            // Unreachable: `run` intercepts Shutdown so the reply can
            // wait for the shard joins. Kept total for safety.
            Request::Shutdown => Ok(Response::ShuttingDown(self.stats_snapshot()?)),
            #[cfg(test)]
            Request::InjectPanic => panic!("injected router panic"),
            #[cfg(test)]
            Request::Park { ack, release } => {
                let _ = ack.send(());
                let _ = release.recv();
                Ok(Response::Stats(self.stats_snapshot()?))
            }
        }
    }

    /// Fans an ingest batch out by cluster and waits for every involved
    /// shard's ack (the drain barrier) before acknowledging the client.
    fn ingest(&mut self, batch: Vec<TimedClaim>) -> Result<Response, ServeError> {
        self.ingest_impl(batch, true)
    }

    /// The ingest path, shared by live requests (`log = true`: the
    /// batch is WAL-appended and the checkpoint cadence applies) and
    /// recovery's WAL-tail replay (`log = false`: the records are
    /// already on disk).
    fn ingest_impl(&mut self, batch: Vec<TimedClaim>, log: bool) -> Result<Response, ServeError> {
        // Atomic validation: a rejected batch changes nothing, and the
        // epoch does not advance.
        let update = self.tracker.ingest(&batch)?;
        self.epoch += 1;
        // Everything between the epoch advance and the drain barrier
        // must either complete or wedge the router: a failure in here
        // (a corrupt history segment, a dead WAL) means the shards
        // never received this epoch's cluster operations, so carrying
        // on would serve from silently incomplete state — exactly the
        // truncation-without-telling-anyone failure the durability
        // layer exists to rule out. On failure the router broadcasts
        // bare epoch markers (keeping the fleet's epochs aligned so
        // the drain protocol still works), records the wedge, and
        // fails every later request fast until a restart rebuilds the
        // histories from the WAL.
        let returns = match self.commit_batch(&batch, &update, log) {
            Ok(returns) => returns,
            Err(e) => {
                self.wedged = Some(e.to_string());
                self.obs.counter("serve.router.wedged_total", 1);
                let _ = self.dispatch_ops(BTreeMap::new());
                return Err(e);
            }
        };
        let mut refitted = false;
        let mut first_error: Option<SenseError> = None;
        for ret in returns {
            for ack in ret.payload? {
                if let Some(rc) = self.recorded.get_mut(&ack.key) {
                    rc.pending = ack.pending;
                }
                refitted |= ack.refitted;
                if first_error.is_none() {
                    first_error = ack.error;
                }
            }
        }
        if log {
            self.maybe_snapshot()?;
        }
        // Mirror the unsharded service: a failed eager refit surfaces as
        // an error, but the claims stay ingested.
        if let Some(e) = first_error {
            return Err(ServeError::Sense(e));
        }
        Ok(Response::Ingested(IngestAck {
            total_claims: self.total_claims,
            pending_claims: self.recorded.values().map(|rc| rc.pending).sum(),
            refitted,
        }))
    }

    /// The wedge-guarded half of one ingest epoch: WAL append, history
    /// advance, cluster-operation build (including history reads for
    /// rebuilds), and the shard fan-out. Runs with the epoch already
    /// advanced; [`Router::ingest_impl`] wedges the router if any step
    /// fails.
    fn commit_batch(
        &mut self,
        batch: &[TimedClaim],
        update: &ClusterUpdate,
        log: bool,
    ) -> Result<Vec<ShardReturn<Vec<ClusterAck>>>, ServeError> {
        // Log the accepted batch before the fan-out and the ack — with
        // `fsync_every = 1`, an acked batch is on disk.
        if log && self.durable.is_some() {
            let epoch = self.epoch;
            let obs = self.obs.clone();
            if let Some(d) = &mut self.durable {
                d.append(epoch, batch, &obs)?;
            }
        }
        self.total_claims += batch.len();
        self.obs.gauge("serve.router.epoch", self.epoch as f64);

        let (per_key, merged_into) = self.advance_history(self.epoch, batch, &update.removed)?;

        // Cluster operations, grouped per shard in ascending key order.
        let mut ops: BTreeMap<usize, Vec<ClusterOp>> = BTreeMap::new();
        for &gone in &update.removed {
            if let Some(rc) = self.recorded.remove(&gone) {
                ops.entry(rc.shard)
                    .or_default()
                    .push(ClusterOp::Drop { key: gone });
            }
        }
        for (&key, claims) in &per_key {
            let members = self
                .tracker
                .members(key)
                .ok_or(ServeError::Protocol("claimed cluster is not tracked"))?;
            let sizes = (members.sources().len(), members.assertions().len());
            let (shard, needs_build, was_recorded) = match self.recorded.get(&key) {
                None => (rendezvous_shard(key, self.shard_tx.len()), true, false),
                Some(rc) => (
                    rc.shard,
                    merged_into.contains(&key) || (rc.n_sources, rc.n_assertions) != sizes,
                    true,
                ),
            };
            let op = if needs_build {
                if was_recorded {
                    self.obs.counter("serve.router.rebuilds_total", 1);
                }
                ClusterOp::Build {
                    key,
                    sources: members.sources().to_vec(),
                    assertions: members.assertions().to_vec(),
                    batches: history_batches(&self.history.read(key)?),
                }
            } else {
                ClusterOp::Append {
                    key,
                    claims: claims.iter().map(|&(_, c)| c).collect(),
                }
            };
            ops.entry(shard).or_default().push(op);
            let pending = self.recorded.get(&key).map_or(0, |rc| rc.pending);
            self.recorded.insert(
                key,
                RecordedCluster {
                    shard,
                    n_sources: sizes.0,
                    n_assertions: sizes.1,
                    pending,
                },
            );
        }
        self.obs
            .gauge("serve.router.clusters", self.recorded.len() as f64);

        self.dispatch_ops(ops)
    }

    /// Applies one batch's history consequences: clusters merged away
    /// hand their logged claims to the surviving key, and the batch's
    /// claims are appended to each owning cluster's history, stamped
    /// `(epoch, position)`. Returns the per-cluster sub-batches
    /// (position-tagged, batch order preserved) and the keys that
    /// absorbed a merge.
    #[allow(clippy::type_complexity)]
    fn advance_history(
        &mut self,
        epoch: u64,
        batch: &[TimedClaim],
        removed: &[u32],
    ) -> Result<(BTreeMap<u32, Vec<(u32, TimedClaim)>>, BTreeSet<u32>), ServeError> {
        let mut merged_into: BTreeSet<u32> = BTreeSet::new();
        for &gone in removed {
            if let Some(src) = self.history.remove(gone)? {
                let winner = self
                    .tracker
                    .cluster_key_of(src[0].2.assertion)
                    .ok_or(ServeError::Protocol("merged cluster has no live key"))?;
                // (epoch, position) pairs are unique, so the backend's
                // merge is a deterministic merge of two sorted runs.
                self.history.merge(winner, src)?;
                merged_into.insert(winner);
            }
        }
        // Partition the batch by owning cluster, preserving batch order
        // inside each sub-stream. One map probe per claim; the history
        // log extends once per involved cluster afterwards.
        let mut per_key: BTreeMap<u32, Vec<(u32, TimedClaim)>> = BTreeMap::new();
        for (pos, &claim) in batch.iter().enumerate() {
            let key = self
                .tracker
                .cluster_key_of(claim.assertion)
                .ok_or(ServeError::Protocol("ingested claim has no cluster"))?;
            per_key.entry(key).or_default().push((pos as u32, claim));
        }
        for (&key, positioned) in &per_key {
            let entries: Vec<HistoryEntry> =
                positioned.iter().map(|&(pos, c)| (epoch, pos, c)).collect();
            self.history.append(key, &entries)?;
        }
        Ok((per_key, merged_into))
    }

    /// Sends each shard its cluster operations (a bare epoch marker
    /// when it has none) and collects the involved shards' acks sorted
    /// by shard index — the drain barrier of one ingest batch.
    fn dispatch_ops(
        &mut self,
        mut ops: BTreeMap<usize, Vec<ClusterOp>>,
    ) -> Result<Vec<ShardReturn<Vec<ClusterAck>>>, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        let mut involved = 0usize;
        for (i, tx) in self.shard_tx.iter().enumerate() {
            self.shard_depth[i].fetch_add(1, Ordering::Relaxed);
            let msg = match ops.remove(&i) {
                Some(ops) => {
                    involved += 1;
                    ShardMsg::Ingest {
                        epoch: self.epoch,
                        ops,
                        reply: ack_tx.clone(),
                    }
                }
                None => ShardMsg::Epoch(self.epoch),
            };
            tx.send(msg).map_err(|_| ServeError::Closed)?;
        }
        drop(ack_tx);
        let mut returns = Vec::with_capacity(involved);
        for _ in 0..involved {
            returns.push(ack_rx.recv().map_err(|_| ServeError::Closed)?);
        }
        returns.sort_by_key(|r| r.shard);
        Ok(returns)
    }

    /// Writes a router checkpoint when the configured cadence is due:
    /// every cluster's state is exported from its owning shard and
    /// written alongside the router counters. The WAL is kept — the
    /// full batch sequence is the membership dry-replay source at
    /// recovery.
    fn maybe_snapshot(&mut self) -> Result<(), ServeError> {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.should_snapshot(self.epoch));
        if !due {
            return Ok(());
        }
        let mut clusters = Vec::new();
        for (_, reply) in self.scatter(self.all_shards(|| ShardQuery::Export))? {
            let ShardReply::Export(list) = reply else {
                return Err(ServeError::Protocol("expected shard Export"));
            };
            clusters.extend(list);
        }
        clusters.sort_by_key(|c| c.key);
        let snap = RouterSnapshot {
            epoch: self.epoch,
            total_claims: self.total_claims,
            requests_served: self.requests_served,
            clusters,
        };
        let epoch = self.epoch;
        let obs = self.obs.clone();
        if let Some(d) = &mut self.durable {
            d.write_snapshot(epoch, &snap, false, &obs)?;
        }
        Ok(())
    }

    /// Restores whatever a previous service left under the data
    /// directory, in three phases: (1) dry-replay the WAL up to the
    /// checkpoint to rebuild the cluster tracker and the per-cluster
    /// history segments (membership is a pure function of the batch
    /// sequence — the union-find is never serialized); (2) install the
    /// checkpoint — router counters, the recorded-cluster map, and a
    /// `Restore` fan-out shipping each cluster's state to whichever
    /// shard the rendezvous hash picks *now*, so restarting with a
    /// different shard count is just a cluster move; (3) replay the
    /// WAL tail through the normal ingest path.
    fn recover(&mut self, pcfg: &PersistConfig) -> Result<(), ServeError> {
        let (log, recovered) = DurableLog::open::<RouterSnapshot>(pcfg, &self.obs)?;
        // Segments are a rebuildable cache of the WAL: start clean.
        self.history.wipe()?;
        let since = recovered.snapshot.as_ref().map_or(0, |(seq, _)| *seq);
        for record in recovered.records.iter().filter(|r| r.seq <= since) {
            if record.seq != self.epoch + 1 {
                return Err(ServeError::Persist(format!(
                    "WAL gap: expected batch {}, found {}",
                    self.epoch + 1,
                    record.seq
                )));
            }
            let update = self.tracker.ingest(&record.claims)?;
            self.epoch = record.seq;
            self.advance_history(record.seq, &record.claims, &update.removed)?;
        }
        if let Some((_, snap)) = recovered.snapshot {
            if snap.epoch != self.epoch {
                return Err(ServeError::Persist(format!(
                    "WAL ends at batch {} but the snapshot covers {}",
                    self.epoch, snap.epoch
                )));
            }
            self.total_claims = snap.total_claims;
            self.requests_served = snap.requests_served;
            let mut ops: BTreeMap<usize, Vec<ClusterOp>> = BTreeMap::new();
            for cluster in snap.clusters {
                let shard = rendezvous_shard(cluster.key, self.shard_tx.len());
                self.recorded.insert(
                    cluster.key,
                    RecordedCluster {
                        shard,
                        n_sources: cluster.sources.len(),
                        n_assertions: cluster.assertions.len(),
                        pending: cluster.pending,
                    },
                );
                ops.entry(shard)
                    .or_default()
                    .push(ClusterOp::Restore(Box::new(cluster)));
            }
            for ret in self.dispatch_ops(ops)? {
                for ack in ret.payload? {
                    if let Some(e) = ack.error {
                        return Err(ServeError::Sense(e));
                    }
                }
            }
        }
        for record in recovered.records.into_iter().filter(|r| r.seq > since) {
            if record.seq != self.epoch + 1 {
                return Err(ServeError::Persist(format!(
                    "WAL gap: expected batch {}, found {}",
                    self.epoch + 1,
                    record.seq
                )));
            }
            // Refit errors during replay mirror the live path: the
            // original run surfaced them to the client and kept the
            // claims ingested. Anything else is fatal.
            match self.ingest_impl(record.claims, false) {
                Ok(_) | Err(ServeError::Sense(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.durable = Some(log);
        Ok(())
    }

    /// Sends each `(shard, query)` pair and collects the replies sorted
    /// by shard index, verifying no fan-out mixes epochs.
    fn scatter(
        &self,
        targets: Vec<(usize, ShardQuery)>,
    ) -> Result<Vec<(usize, ShardReply)>, ServeError> {
        let (tx, rx) = mpsc::channel();
        let expected = targets.len();
        for (shard, query) in targets {
            self.shard_depth[shard].fetch_add(1, Ordering::Relaxed);
            self.shard_tx[shard]
                .send(ShardMsg::Query {
                    epoch: self.epoch,
                    query,
                    reply: tx.clone(),
                })
                .map_err(|_| ServeError::Closed)?;
        }
        drop(tx);
        let mut returns: Vec<ShardReturn<ShardReply>> = Vec::with_capacity(expected);
        for _ in 0..expected {
            returns.push(rx.recv().map_err(|_| ServeError::Closed)?);
        }
        returns.sort_by_key(|r| r.shard);
        let mut out = Vec::with_capacity(returns.len());
        for ret in returns {
            if ret.epoch != self.epoch {
                return Err(ServeError::Protocol("fan-out reply from a different epoch"));
            }
            out.push((ret.shard, ret.payload?));
        }
        Ok(out)
    }

    fn all_shards(&self, query: impl Fn() -> ShardQuery) -> Vec<(usize, ShardQuery)> {
        (0..self.shard_tx.len()).map(|i| (i, query())).collect()
    }

    fn posterior(&mut self, j: u32) -> Result<Response, ServeError> {
        let m = self.tracker.assertion_count();
        if j >= m {
            return Err(ServeError::Sense(SenseError::DimensionMismatch {
                what: "query assertion id vs m",
                expected: m as usize,
                actual: j as usize,
            }));
        }
        let Some(key) = self.tracker.cluster_key_of(j) else {
            // Never claimed: no cluster owns it, the posterior is the
            // neutral prior.
            return Ok(Response::Posterior(0.5));
        };
        let shard = self.owning_shard(key)?;
        let replies = self.scatter(vec![(shard, ShardQuery::Posterior { key, assertion: j })])?;
        match replies.into_iter().next() {
            Some((_, ShardReply::Posterior(p))) => Ok(Response::Posterior(p)),
            _ => Err(ServeError::Protocol("expected shard Posterior")),
        }
    }

    fn posteriors(&mut self) -> Result<Response, ServeError> {
        let m = self.tracker.assertion_count() as usize;
        let mut out = vec![0.5; m];
        for (_, reply) in self.scatter(self.all_shards(|| ShardQuery::Posteriors))? {
            let ShardReply::Posteriors(list) = reply else {
                return Err(ServeError::Protocol("expected shard Posteriors"));
            };
            for (j, p) in list {
                out[j as usize] = p;
            }
        }
        Ok(Response::Posteriors(out))
    }

    fn top_sources(&mut self, k: usize) -> Result<Response, ServeError> {
        let n = self.tracker.source_count();
        let mut ranks: Vec<SourceRank> = Vec::with_capacity(n as usize);
        for (_, reply) in self.scatter(self.all_shards(|| ShardQuery::TopSources))? {
            let ShardReply::TopSources(list) = reply else {
                return Err(ServeError::Protocol("expected shard TopSources"));
            };
            ranks.extend(list);
        }
        // Sources in no cluster rank with neutral behaviour parameters,
        // exactly the prior a fit has nothing to move away from.
        for i in 0..n {
            if !self.tracker.is_active_source(i) {
                ranks.push(SourceRank {
                    source: i,
                    precision: 0.5,
                    params: SourceParams {
                        a: 0.5,
                        b: 0.5,
                        f: 0.5,
                        g: 0.5,
                    },
                });
            }
        }
        ranks.sort_by(|x, y| {
            y.precision
                .partial_cmp(&x.precision)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.source.cmp(&y.source))
        });
        ranks.truncate(k);
        Ok(Response::TopSources(ranks))
    }

    fn bound(
        &mut self,
        assertions: Vec<u32>,
        method: Option<socsense_core::BoundMethod>,
    ) -> Result<Response, ServeError> {
        let m = self.tracker.assertion_count();
        let assertions: Vec<u32> = if assertions.is_empty() {
            (0..m).collect()
        } else {
            assertions
        };
        for &j in &assertions {
            if j >= m {
                return Err(ServeError::Sense(SenseError::DimensionMismatch {
                    what: "bound assertion id vs m",
                    expected: m as usize,
                    actual: j as usize,
                }));
            }
        }
        let method = method.unwrap_or_else(|| self.cfg.bound.clone());
        let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut unowned = 0usize;
        for &j in &assertions {
            match self.tracker.cluster_key_of(j) {
                Some(key) => groups.entry(key).or_default().push(j),
                None => unowned += 1,
            }
        }
        // Single-group fast path: return the shard's result verbatim,
        // avoiding even the `(mean·k)/k` rounding of the merge below.
        if unowned == 0 {
            if let Some((&key, js)) = (groups.len() == 1).then(|| groups.iter().next()).flatten() {
                let shard = self.owning_shard(key)?;
                let replies = self.scatter(vec![(
                    shard,
                    ShardQuery::Bound {
                        groups: vec![(key, js.clone())],
                        method,
                    },
                )])?;
                return match replies.into_iter().next() {
                    Some((_, ShardReply::Bound(mut list))) if list.len() == 1 => match list.pop() {
                        Some((_, result, _)) => Ok(Response::Bound(result)),
                        None => Err(ServeError::Protocol("expected one shard Bound group")),
                    },
                    _ => Err(ServeError::Protocol("expected one shard Bound group")),
                };
            }
        }
        let mut per_shard: BTreeMap<usize, Vec<(u32, Vec<u32>)>> = BTreeMap::new();
        for (key, js) in groups {
            per_shard
                .entry(self.owning_shard(key)?)
                .or_default()
                .push((key, js));
        }
        let targets: Vec<(usize, ShardQuery)> = per_shard
            .into_iter()
            .map(|(shard, groups)| {
                (
                    shard,
                    ShardQuery::Bound {
                        groups,
                        method: method.clone(),
                    },
                )
            })
            .collect();
        let mut parts: BTreeMap<u32, (BoundResult, usize)> = BTreeMap::new();
        for (_, reply) in self.scatter(targets)? {
            let ShardReply::Bound(list) = reply else {
                return Err(ServeError::Protocol("expected shard Bound"));
            };
            for (key, bound, count) in list {
                parts.insert(key, (bound, count));
            }
        }
        // Fixed-order weighted merge: ascending cluster key, then the
        // never-claimed block. The fold order is shard-count-invariant.
        let mut error = 0.0;
        let mut false_positive = 0.0;
        let mut false_negative = 0.0;
        let mut total = 0usize;
        for (bound, count) in parts.into_values() {
            error += bound.error * count as f64;
            false_positive += bound.false_positive * count as f64;
            false_negative += bound.false_negative * count as f64;
            total += count;
        }
        if unowned > 0 {
            let neutral = neutral_bound();
            error += neutral.error * unowned as f64;
            false_positive += neutral.false_positive * unowned as f64;
            false_negative += neutral.false_negative * unowned as f64;
            total += unowned;
        }
        Ok(Response::Bound(BoundResult {
            error: error / total as f64,
            false_positive: false_positive / total as f64,
            false_negative: false_negative / total as f64,
        }))
    }

    fn stats_snapshot(&mut self) -> Result<ServeStats, ServeError> {
        let mut stats = ServeStats {
            total_claims: self.total_claims,
            requests_served: self.requests_served,
            ..ServeStats::default()
        };
        let mut last: Option<LastRefit> = None;
        for (_, reply) in self.scatter(self.all_shards(|| ShardQuery::Stats))? {
            let ShardReply::Stats(p) = reply else {
                return Err(ServeError::Protocol("expected shard Stats"));
            };
            stats.pending_claims += p.pending;
            stats.chain_refits += p.chain_refits;
            stats.probe_refits += p.probe_refits;
            stats.probe_cache_hits += p.probe_cache_hits;
            stats.failed_refits += p.failed_refits;
            stats.warm_refits += p.warm_refits;
            stats.delta_refits += p.delta_refits;
            stats.fallback_refits += p.fallback_refits;
            last = last.max(p.last_refit);
        }
        if let Some(last) = last {
            stats.last_refit_iterations = Some(last.iterations);
            stats.last_touched_assertions = Some(last.touched_assertions);
            stats.last_touched_sources = Some(last.touched_sources);
            stats.last_ll_exact = Some(last.ll_exact);
        }
        Ok(stats)
    }

    fn topology(&self) -> ShardTopology {
        ShardTopology {
            shards: self.shard_tx.len(),
            epoch: self.epoch,
            clusters: self
                .recorded
                .iter()
                .map(|(&key, rc)| ClusterAssignment {
                    key,
                    shard: rc.shard,
                    sources: rc.n_sources,
                    assertions: rc.n_assertions,
                })
                .collect(),
        }
    }

    fn owning_shard(&self, key: u32) -> Result<usize, ServeError> {
        self.recorded
            .get(&key)
            .map(|rc| rc.shard)
            .ok_or(ServeError::Protocol("tracked cluster is not recorded"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_deterministic_and_balanced_enough() {
        for key in 0..64u32 {
            assert_eq!(rendezvous_shard(key, 1), 0, "one shard owns everything");
            let s4 = rendezvous_shard(key, 4);
            assert!(s4 < 4);
            assert_eq!(
                s4,
                rendezvous_shard(key, 4),
                "assignment is a pure function"
            );
        }
        // Sanity: with 256 keys over 4 shards, no shard is starved.
        let mut counts = [0usize; 4];
        for key in 0..256u32 {
            counts[rendezvous_shard(key, 4)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 16),
            "gross imbalance: {counts:?}"
        );
    }

    #[test]
    fn history_batches_preserve_epoch_boundaries() {
        let c = |t: u64| TimedClaim::new(0, 0, t);
        let history = vec![(1, 0, c(1)), (1, 1, c(2)), (3, 0, c(3)), (7, 2, c(4))];
        let batches = history_batches(&history);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[1].len(), 1);
        assert_eq!(batches[2].len(), 1);
    }

    #[test]
    fn neutral_bound_is_the_prior_coin_flip() {
        let b = neutral_bound();
        assert!((b.error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn router_panic_surfaces_from_shutdown() {
        let svc =
            ShardedService::spawn(2, 2, FollowerGraph::new(2), ServeConfig::default(), 2).unwrap();
        let client = svc.handle();
        let rx = client.raw_send(Request::InjectPanic);
        // The router died mid-request: the reply channel just closes.
        assert!(rx.recv().is_err());
        match svc.shutdown() {
            Err(ServeError::WorkerPanicked(what)) => {
                assert!(what.contains("injected router panic"), "payload: {what}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn sharded_tier_sheds_over_limit_requests() {
        let svc = ShardedService::spawn(
            2,
            2,
            FollowerGraph::new(2),
            ServeConfig {
                max_queue_depth: 1,
                ..ServeConfig::default()
            },
            2,
        )
        .unwrap();
        let client = svc.handle();
        let (ack_tx, ack_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let parked = client.raw_send(Request::Park {
            ack: ack_tx,
            release: release_rx,
        });
        ack_rx.recv().unwrap();
        let held = client.raw_send(Request::Stats);
        assert!(matches!(client.stats(), Err(ServeError::Overloaded)));
        release_tx.send(()).unwrap();
        assert!(held.recv().unwrap().is_ok());
        assert!(parked.recv().unwrap().is_ok());
        svc.shutdown().unwrap();
    }
}
