//! Public request/response types of the query service.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use socsense_core::{BoundMethod, EmConfig, RefitMode, SenseError, SourceParams};
use socsense_matrix::Parallelism;
use socsense_persist::PersistError;

/// Durability configuration of a service (see DESIGN.md §12).
///
/// When attached to a [`ServeConfig`], every ingest batch is appended to
/// a CRC-guarded write-ahead log under `data_dir` and the full serving
/// state is checkpointed every [`snapshot_every`](Self::snapshot_every)
/// batches. A service spawned over a `data_dir` holding prior state
/// recovers it first — replaying the WAL tail since the newest snapshot
/// — and then answers every query `f64::to_bits`-identically to a
/// worker that was never interrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Root directory of the service's durable state. One directory
    /// belongs to one service at a time (single writer).
    pub data_dir: PathBuf,
    /// WAL batched-fsync policy: issue an `fsync` every this many
    /// appended batches. `1` (the default) syncs every batch — an acked
    /// batch is always on disk; larger values trade the latest
    /// un-synced batches on power loss for throughput; `0` never syncs
    /// implicitly.
    pub fsync_every: usize,
    /// Checkpoint cadence: write a full snapshot every this many ingest
    /// batches (`0` disables periodic snapshots; recovery then replays
    /// the whole WAL).
    pub snapshot_every: usize,
}

impl PersistConfig {
    /// Durability rooted at `data_dir` with the default policy:
    /// fsync every batch, snapshot every 8 batches.
    pub fn at(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            fsync_every: 1,
            snapshot_every: 8,
        }
    }
}

/// Configuration for a [`QueryService`](crate::QueryService).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// EM configuration for every refit (cold and warm).
    pub em: EmConfig,
    /// Warm-start blend forwarded to the backing
    /// [`StreamingEstimator`](socsense_core::StreamingEstimator): how
    /// strongly chain refits lean on the previous `θ̂` versus the
    /// data-driven anchor. Must lie in `[0, 1]`.
    pub warm_blend: f64,
    /// Ingest-driven refit debounce: after a batch is ingested, the
    /// warm-start chain advances (a full refit runs and its `θ̂` becomes
    /// the next warm start) only once at least this many claims are
    /// pending. `1` refits on every batch — the lowest-latency setting,
    /// and the one whose refit trajectory a serial
    /// `StreamingEstimator` replay reproduces exactly. Larger values
    /// debounce high-rate streams: between chain refits, queries are
    /// answered from cached *probe* refits (see the crate docs). `0`
    /// never advances the chain on ingest; every query probes from the
    /// initial cold fit.
    pub refit_pending_claims: usize,
    /// Worker threads for bound evaluation
    /// ([`bound_for_assertions_with`](socsense_core::bound_for_assertions_with))
    /// inside the service worker. Never changes the numbers — only
    /// wall-clock time.
    pub parallelism: Parallelism,
    /// Bound method used when a [`Bound`](crate::ServeHandle::bound)
    /// request does not carry its own.
    pub bound: BoundMethod,
    /// How ingest-driven refits run: [`RefitMode::Full`] re-runs warm EM
    /// over the whole log every time; [`RefitMode::Delta`] scopes each
    /// E-step to the assertions the batch touched, falling back to a
    /// full warm refit when the configured drift/staleness thresholds
    /// trip (see [`socsense_core::DeltaConfig`]).
    pub refit_mode: RefitMode,
    /// Backpressure: the most requests allowed to sit unserved in the
    /// service queue. A request arriving at a full queue is shed
    /// immediately with [`ServeError::Overloaded`] instead of queuing
    /// behind a slow worker without bound. `0` (the default) disables
    /// the limit. Shutdown requests are always admitted.
    pub max_queue_depth: usize,
    /// Durability: when set, ingest batches are write-ahead logged and
    /// serving state is periodically checkpointed under
    /// [`PersistConfig::data_dir`], and spawning over existing state
    /// recovers it bit-identically. `None` (the default) keeps the
    /// service purely in-memory.
    pub persist: Option<PersistConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            em: EmConfig::default(),
            warm_blend: 0.5,
            refit_pending_claims: 1,
            parallelism: Parallelism::Auto,
            bound: BoundMethod::default(),
            refit_mode: RefitMode::Full,
            max_queue_depth: 0,
            persist: None,
        }
    }
}

/// Errors surfaced to service clients.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The service has shut down (or its worker died) — the request was
    /// not, or may not have been, processed.
    Closed,
    /// The estimator or bound computation rejected the request.
    Sense(SenseError),
    /// The worker answered with an unexpected response variant. This
    /// indicates a bug in the service itself, never in the caller.
    Protocol(&'static str),
    /// The request was shed at the door: the service queue already held
    /// [`ServeConfig::max_queue_depth`] unserved requests. The request
    /// was never enqueued — retrying later is safe.
    Overloaded,
    /// The worker (or the sharded tier's router or a shard) panicked.
    /// Carries the panic payload when it was a string. Surfaced by
    /// `shutdown()`; in-flight requests observe [`Closed`](Self::Closed).
    WorkerPanicked(String),
    /// The durability layer failed (WAL append, fsync, snapshot, or
    /// recovery). Carries the storage error's description. In-memory
    /// state may be ahead of disk once this is returned; treat the
    /// `data_dir` as suspect.
    Persist(String),
    /// A sharded ingest epoch failed after the WAL append but before
    /// the shard fan-out completed (for example over a corrupt
    /// per-cluster history segment), so the shards are missing that
    /// epoch's operations. The router refuses every further request
    /// with the original failure rather than serve from silently
    /// incomplete state; restart the service to rebuild from the WAL.
    Wedged(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Closed => write!(f, "query service is shut down"),
            ServeError::Sense(e) => write!(f, "{e}"),
            ServeError::Protocol(what) => write!(f, "protocol mismatch: {what}"),
            ServeError::Overloaded => write!(f, "query service queue is full"),
            ServeError::WorkerPanicked(what) => write!(f, "service worker panicked: {what}"),
            ServeError::Persist(what) => write!(f, "durability failure: {what}"),
            ServeError::Wedged(what) => write!(
                f,
                "service is wedged by an earlier ingest failure ({what}); \
                 restart to rebuild from the WAL"
            ),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sense(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SenseError> for ServeError {
    fn from(e: SenseError) -> Self {
        ServeError::Sense(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e.to_string())
    }
}

/// Acknowledgement of one ingested batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestAck {
    /// Claims in the log after the batch.
    pub total_claims: usize,
    /// Claims not yet covered by a chain refit.
    pub pending_claims: usize,
    /// Whether this batch tripped the pending-claims threshold and
    /// advanced the warm-start chain.
    pub refitted: bool,
}

/// One entry of a source-reliability ranking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceRank {
    /// Source id.
    pub source: u32,
    /// Ranking key: the source's independent-claim precision
    /// `P(C = 1 | source claims independently) = z·a / (z·a + (1−z)·b)`
    /// under the fitted `θ̂` — the posterior that an assertion is true
    /// given only that this source asserted it on its own.
    pub precision: f64,
    /// The fitted behaviour parameters `(a, b, f, g)`.
    pub params: SourceParams,
}

/// The partition map of a sharded service: which shard hosts each
/// assertion cluster, at which ingest epoch the map was read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTopology {
    /// Configured shard (worker) count.
    pub shards: usize,
    /// Ingest batches processed when the map was snapshot.
    pub epoch: u64,
    /// One entry per live cluster, ascending by key.
    pub clusters: Vec<ClusterAssignment>,
}

/// One cluster's placement in a [`ShardTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterAssignment {
    /// Cluster key: the smallest member assertion id.
    pub key: u32,
    /// Owning shard index.
    pub shard: usize,
    /// Member sources: claimants plus followers linked by dependency
    /// cells — every source whose behaviour the cluster's fit
    /// estimates.
    pub sources: usize,
    /// Member assertions.
    pub assertions: usize,
}

/// Operating statistics of a running (or just-shut-down) service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Claims ingested over the service's lifetime.
    pub total_claims: usize,
    /// Claims not yet covered by a chain refit.
    pub pending_claims: usize,
    /// Requests answered (including the one reporting these stats).
    pub requests_served: u64,
    /// Warm-start-chain refits (ingest-driven, threshold-tripped).
    pub chain_refits: u64,
    /// Query-driven probe refits (fresh fits that leave the chain
    /// untouched).
    pub probe_refits: u64,
    /// Queries answered from the cached probe fit without refitting.
    pub probe_cache_hits: u64,
    /// Refits that returned an error. The warm-start state survives
    /// these (see `StreamingEstimator::estimate_with_stats`).
    pub failed_refits: u64,
    /// Refits (chain or probe) that warm-started from a previous `θ̂`.
    pub warm_refits: u64,
    /// Refits the delta engine answered with a scoped, `O(touched)`
    /// E-step (only in [`RefitMode::Delta`](socsense_core::RefitMode)).
    pub delta_refits: u64,
    /// Delta-mode refits that tripped a threshold and fell back to a
    /// full warm refit (bit-identical to what `RefitMode::Full` would
    /// have produced).
    pub fallback_refits: u64,
    /// EM iterations of the most recent successful refit.
    pub last_refit_iterations: Option<usize>,
    /// Assertions the most recent successful refit re-evaluated (`m`
    /// for full and fallback refits, the touched-set size for delta
    /// refits).
    pub last_touched_assertions: Option<usize>,
    /// Sources whose M-step rows the most recent successful refit
    /// re-derived (`n` for full and fallback refits).
    pub last_touched_sources: Option<usize>,
    /// Whether the most recent successful refit reported an exact
    /// log-likelihood (always true for full and fallback refits; true
    /// for scoped delta refits only under
    /// [`DeltaConfig::exact_ll`](socsense_core::DeltaConfig)).
    #[serde(default)]
    pub last_ll_exact: Option<bool>,
}
