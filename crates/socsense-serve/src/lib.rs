//! Warm-state-safe serving: a channel-based query service over one
//! shared [`EmFit`](socsense_core::EmFit).
//!
//! During a live event many consumers want the *current* truth
//! posterior, the source-reliability ranking, and the Bayes-risk bound —
//! without each of them refitting EM from scratch. [`QueryService`]
//! owns a single [`StreamingEstimator`](socsense_core::StreamingEstimator)
//! on a dedicated worker thread and serves typed requests — ingest,
//! posterior, top-sources, bound, stats, shutdown — to any number of
//! concurrent [`ServeHandle`] clients over a std `mpsc` channel. No
//! async runtime, no locks, no network dependency: the same std-only
//! discipline as the repo's parallel layer.
//!
//! # Why a channel worker instead of a lock around the fit
//!
//! A refit *mutates* warm-start state, and which state it reads must not
//! depend on which client happened to grab a lock first. Funnelling
//! every request through one owner serializes refits by construction,
//! removes lock-poisoning from the failure model, and gives shutdown a
//! natural semantics (drain the queue, then join). Clients pay one
//! channel round trip — negligible next to an EM iteration.
//!
//! # Refit policy: chain vs. probe
//!
//! Refits are demand-driven and debounced, and split into two kinds:
//!
//! * **Chain refits** advance the warm-start chain: the refit's `θ̂`
//!   becomes the next warm start. They run only while processing an
//!   `Ingest`, when at least [`ServeConfig::refit_pending_claims`]
//!   claims are pending — so the chain is a pure function of the ingest
//!   sequence.
//! * **Probe refits** answer queries that arrive while claims are
//!   pending below the threshold: a full, fresh fit over the whole log
//!   that leaves the chain untouched
//!   ([`StreamingEstimator::peek_estimate`](socsense_core::StreamingEstimator::peek_estimate)),
//!   cached until the next batch lands.
//!
//! Because probes never mutate the chain, **every served number is a
//! pure function of the ingest sequence and the query parameters** —
//! byte-identical no matter how many clients query concurrently, or
//! when. The service integration tests pin exactly this.
//!
//! # Scaling out: the sharded tier
//!
//! [`ShardedService`] serves the same request surface from a router
//! thread over `N` worker shards, partitioned by *assertion cluster*
//! (connected components of claim co-occurrence — the granularity at
//! which the dependency model factorizes). Each cluster runs its own
//! compacted [`StreamingEstimator`](socsense_core::StreamingEstimator);
//! cross-shard answers merge in fixed order, so results are
//! `f64::to_bits`-identical at every shard count. See the
//! [`router`](ShardedService) docs for the epoch/drain protocol and
//! the determinism argument.
//!
//! # Example
//!
//! ```
//! use socsense_graph::{FollowerGraph, TimedClaim};
//! use socsense_serve::{QueryService, ServeConfig};
//!
//! let service = QueryService::spawn(3, 2, FollowerGraph::new(3), ServeConfig::default())?;
//! let client = service.handle(); // cloneable, Send
//! client.ingest(vec![TimedClaim::new(0, 0, 1), TimedClaim::new(1, 0, 2)])?;
//! let p = client.posterior(0)?;
//! assert!((0.0..=1.0).contains(&p));
//! let top = client.top_sources(2)?;
//! assert_eq!(top.len(), 2);
//! let stats = service.shutdown()?;
//! assert_eq!(stats.total_claims, 2);
//! # Ok::<(), socsense_serve::ServeError>(())
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod durable;
mod router;
mod service;
mod shard;

pub use api::{
    ClusterAssignment, IngestAck, PersistConfig, ServeConfig, ServeError, ServeStats,
    ShardTopology, SourceRank,
};
pub use router::{ShardedHandle, ShardedService};
pub use service::{QueryService, ServeHandle};

// Re-exported so clients can name bound methods and read metrics
// snapshots without depending on socsense-core directly.
pub use socsense_core::{BoundMethod, BoundResult, GibbsConfig, MetricsSnapshot, Obs};
