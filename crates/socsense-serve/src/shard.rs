//! One worker shard of the sharded serving tier: a FIFO of cluster
//! operations and queries over per-cluster [`StreamingEstimator`]s.
//!
//! A shard owns the clusters the router's rendezvous hash assigned to
//! it, each as an independent compacted sub-problem
//! ([`ClusterWorld`]). All per-cluster serving state — the warm-start
//! chain fit, the query-driven probe fit and its cache, the delta
//! engine inside the estimator — mirrors the single-worker
//! `QueryService` exactly, so a cluster's answers are a pure function
//! of its membership and its batch history, never of which shard hosts
//! it or when it was (re)built.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use socsense_core::{
    bound_for_assertions_traced, BoundMethod, BoundResult, ClusterWorld, EmFit, EmFitBits,
    RefitOutcome, RefitStats, SenseError, StreamingEstimator,
};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_obs::Obs;

use crate::api::{ServeConfig, ServeError, SourceRank};
use crate::durable::ClusterSnapshot;

/// A message from the router to one shard. FIFO delivery per shard is
/// the consistency mechanism: an epoch marker or ingest enqueued before
/// a query is always applied before it.
// detlint: protocol
pub(crate) enum ShardMsg {
    /// Epoch advance with no work for this shard.
    Epoch(u64),
    /// Apply cluster operations for one ingest batch, then ack.
    Ingest {
        epoch: u64,
        ops: Vec<ClusterOp>,
        reply: Sender<ShardReturn<Vec<ClusterAck>>>,
    },
    /// Answer a query at the given expected epoch.
    Query {
        epoch: u64,
        query: ShardQuery,
        reply: Sender<ShardReturn<ShardReply>>,
    },
    /// Exit the worker loop.
    Shutdown,
}

/// A shard's reply, stamped with its identity and current epoch.
pub(crate) struct ShardReturn<T> {
    pub shard: usize,
    pub epoch: u64,
    pub payload: Result<T, ServeError>,
}

/// One cluster operation within an ingest batch.
// detlint: protocol
pub(crate) enum ClusterOp {
    /// Create — or rebuild after membership growth / a merge — the
    /// cluster's full state by replaying its batch history (global-id
    /// claims; the final batch is the one just ingested).
    Build {
        key: u32,
        sources: Vec<u32>,
        assertions: Vec<u32>,
        batches: Vec<Vec<TimedClaim>>,
    },
    /// Append one sub-batch to an existing cluster whose membership did
    /// not change.
    Append { key: u32, claims: Vec<TimedClaim> },
    /// Remove a cluster merged away to another key.
    Drop { key: u32 },
    /// Install a cluster from a checkpoint (recovery): rebuild the
    /// compacted world and restore the estimator, cached chain fit, and
    /// counters bit-identically — no history replay.
    Restore(Box<ClusterSnapshot>),
}

/// Per-cluster acknowledgement of one ingest operation.
pub(crate) struct ClusterAck {
    pub key: u32,
    /// Claims not yet covered by the cluster's chain refit.
    pub pending: usize,
    /// Whether the final (current) batch advanced the chain.
    pub refitted: bool,
    /// First refit error hit while applying the operation; the claims
    /// stay ingested either way.
    pub error: Option<SenseError>,
}

/// A query forwarded to one shard.
// detlint: protocol
pub(crate) enum ShardQuery {
    /// Posterior of one global assertion owned by cluster `key`.
    Posterior { key: u32, assertion: u32 },
    /// Posteriors of every assertion owned by this shard.
    Posteriors,
    /// Precision ranks of every source owned by this shard.
    TopSources,
    /// Per-cluster bounds: `(key, global assertion ids)` groups.
    Bound {
        groups: Vec<(u32, Vec<u32>)>,
        method: BoundMethod,
    },
    /// Counter partials of every cluster on this shard.
    Stats,
    /// Checkpoint export: every hosted cluster's full state.
    Export,
}

/// A shard's answer to one [`ShardQuery`].
pub(crate) enum ShardReply {
    Posterior(f64),
    /// `(global assertion, posterior)` pairs for owned assertions.
    Posteriors(Vec<(u32, f64)>),
    /// Per-source entries (global ids), unranked; the router sorts.
    TopSources(Vec<SourceRank>),
    /// `(key, bound, assertion count)` per requested group.
    Bound(Vec<(u32, BoundResult, usize)>),
    Stats(ShardStatsPartial),
    /// Checkpoint slices of every hosted cluster, ascending by key.
    Export(Vec<ClusterSnapshot>),
}

/// The most recent successful refit on a shard, ordered by
/// `(epoch, key)` — within one ingest epoch clusters refit in key
/// order, so the lexicographic maximum is "most recent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub(crate) struct LastRefit {
    pub epoch: u64,
    pub key: u32,
    pub iterations: usize,
    pub touched_assertions: usize,
    pub touched_sources: usize,
    /// Whether the refit reported an exact log-likelihood. Last field
    /// so the `(epoch, key)`-first lexicographic order is untouched.
    pub ll_exact: bool,
}

/// Summable per-shard counter partials; the router folds them in shard
/// order into one [`ServeStats`](crate::ServeStats).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardStatsPartial {
    pub pending: usize,
    pub chain_refits: u64,
    pub probe_refits: u64,
    pub probe_cache_hits: u64,
    pub failed_refits: u64,
    pub warm_refits: u64,
    pub delta_refits: u64,
    pub fallback_refits: u64,
    pub last_refit: Option<LastRefit>,
}

/// Refit counters of one cluster. The replay-scoped half is reset by a
/// `Build` (replaying history reconstructs it, keeping every counter a
/// pure function of the cluster's batch history); the query-scoped half
/// survives rebuilds, because queries are not replayed.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub(crate) struct SlotCounters {
    chain_refits: u64,
    warm_refits: u64,
    delta_refits: u64,
    fallback_refits: u64,
    failed_refits: u64,
    probe_refits: u64,
    probe_cache_hits: u64,
}

/// One hosted cluster: compacted world, estimator, and cached fits.
struct ClusterSlot {
    world: ClusterWorld,
    est: StreamingEstimator,
    /// Fit of the last warm-start-chain refit.
    chain_fit: Option<Arc<EmFit>>,
    /// Query-driven probe fit, keyed on the claim count it covered.
    probe_fit: Option<(usize, Arc<EmFit>)>,
    counters: SlotCounters,
    last_refit: Option<LastRefit>,
}

/// The single-threaded owner of one shard's clusters.
pub(crate) struct ShardWorker {
    idx: usize,
    cfg: ServeConfig,
    /// The full follow relation; cluster worlds induce their subgraphs
    /// from it.
    graph: FollowerGraph,
    clusters: BTreeMap<u32, ClusterSlot>,
    epoch: u64,
    obs: Obs,
    /// Messages sent but not yet picked up (router increments).
    depth: Arc<AtomicUsize>,
}

impl ShardWorker {
    pub(crate) fn new(
        idx: usize,
        cfg: ServeConfig,
        graph: FollowerGraph,
        obs: Obs,
        depth: Arc<AtomicUsize>,
    ) -> Self {
        Self {
            idx,
            cfg,
            graph,
            clusters: BTreeMap::new(),
            epoch: 0,
            obs,
            depth,
        }
    }

    pub(crate) fn run(mut self, rx: Receiver<ShardMsg>) {
        while let Ok(msg) = rx.recv() {
            let waiting = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
            self.obs.gauge(
                &format!("serve.shard.{}.queue.depth", self.idx),
                waiting as f64,
            );
            match msg {
                ShardMsg::Epoch(e) => self.epoch = e,
                ShardMsg::Ingest { epoch, ops, reply } => {
                    self.epoch = epoch;
                    self.obs
                        .counter(&format!("serve.shard.{}.requests_total", self.idx), 1);
                    let acks = self.apply_ops(ops);
                    let _ = reply.send(ShardReturn {
                        shard: self.idx,
                        epoch: self.epoch,
                        payload: Ok(acks),
                    });
                }
                ShardMsg::Query {
                    epoch,
                    query,
                    reply,
                } => {
                    self.obs
                        .counter(&format!("serve.shard.{}.requests_total", self.idx), 1);
                    let payload = if epoch == self.epoch {
                        self.answer(query)
                    } else {
                        // FIFO delivery makes this unreachable: every
                        // epoch advance is enqueued before any query
                        // stamped with it.
                        Err(ServeError::Protocol("shard epoch behind query epoch"))
                    };
                    let _ = reply.send(ShardReturn {
                        shard: self.idx,
                        epoch: self.epoch,
                        payload,
                    });
                }
                ShardMsg::Shutdown => return,
            }
        }
    }

    fn apply_ops(&mut self, ops: Vec<ClusterOp>) -> Vec<ClusterAck> {
        let mut acks = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                ClusterOp::Drop { key } => {
                    self.clusters.remove(&key);
                }
                ClusterOp::Append { key, claims } => acks.push(self.append(key, &claims)),
                ClusterOp::Build {
                    key,
                    sources,
                    assertions,
                    batches,
                } => acks.push(self.build(key, &sources, &assertions, &batches)),
                ClusterOp::Restore(snap) => acks.push(self.restore(*snap)),
            }
        }
        acks
    }

    /// Installs a cluster from its checkpoint slice: same construction
    /// path as [`build`](Self::build), but the estimator state, chain
    /// fit, and counters come bit-exact from the snapshot instead of a
    /// history replay.
    fn restore(&mut self, snap: ClusterSnapshot) -> ClusterAck {
        let key = snap.key;
        let fail = |e: SenseError| ClusterAck {
            key,
            pending: 0,
            refitted: false,
            error: Some(e),
        };
        let world = match ClusterWorld::new(&snap.sources, &snap.assertions, &self.graph) {
            Ok(w) => w,
            Err(e) => return fail(e),
        };
        let mut est = match world.estimator(self.cfg.em) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        if let Err(e) = est.set_warm_blend(self.cfg.warm_blend) {
            return fail(e);
        }
        if let Err(e) = est.set_refit_mode(self.cfg.refit_mode) {
            return fail(e);
        }
        est.set_obs(self.obs.clone());
        if let Err(e) = est.restore_state(&snap.stream) {
            return fail(e);
        }
        let chain_fit = match &snap.chain_fit {
            Some(bits) => match bits.to_fit() {
                Ok(fit) => Some(Arc::new(fit)),
                Err(e) => return fail(e),
            },
            None => None,
        };
        let pending = est.pending();
        self.clusters.insert(
            key,
            ClusterSlot {
                world,
                est,
                chain_fit,
                probe_fit: None,
                counters: snap.counters,
                last_refit: snap.last_refit,
            },
        );
        ClusterAck {
            key,
            pending,
            refitted: false,
            error: None,
        }
    }

    /// Creates or rebuilds a cluster by replaying its batch history
    /// under the live refit policy, making the resulting state — fits,
    /// warm-start chain, pending count, and replay-scoped counters — a
    /// pure function of `(membership, batch history)` regardless of
    /// when the cluster landed on this shard.
    fn build(
        &mut self,
        key: u32,
        sources: &[u32],
        assertions: &[u32],
        batches: &[Vec<TimedClaim>],
    ) -> ClusterAck {
        let preserved = self.clusters.remove(&key).map(|s| s.counters);
        let fail = |e: SenseError| ClusterAck {
            key,
            pending: 0,
            refitted: false,
            error: Some(e),
        };
        let world = match ClusterWorld::new(sources, assertions, &self.graph) {
            Ok(w) => w,
            Err(e) => return fail(e),
        };
        let mut est = match world.estimator(self.cfg.em) {
            Ok(e) => e,
            Err(e) => return fail(e),
        };
        if let Err(e) = est.set_warm_blend(self.cfg.warm_blend) {
            return fail(e);
        }
        if let Err(e) = est.set_refit_mode(self.cfg.refit_mode) {
            return fail(e);
        }
        est.set_obs(self.obs.clone());
        let mut slot = ClusterSlot {
            world,
            est,
            chain_fit: None,
            probe_fit: None,
            counters: SlotCounters {
                probe_refits: preserved.map_or(0, |c| c.probe_refits),
                probe_cache_hits: preserved.map_or(0, |c| c.probe_cache_hits),
                ..SlotCounters::default()
            },
            last_refit: None,
        };
        let mut first_error = None;
        let mut last_refitted = false;
        for batch in batches {
            let (refitted, err) = ingest_batch(
                &mut slot,
                batch,
                self.cfg.refit_pending_claims,
                key,
                self.epoch,
                &self.obs,
            );
            last_refitted = refitted;
            if first_error.is_none() {
                first_error = err;
            }
        }
        let pending = slot.est.pending();
        self.clusters.insert(key, slot);
        ClusterAck {
            key,
            pending,
            refitted: last_refitted,
            error: first_error,
        }
    }

    fn append(&mut self, key: u32, claims: &[TimedClaim]) -> ClusterAck {
        let epoch = self.epoch;
        let Some(slot) = self.clusters.get_mut(&key) else {
            return ClusterAck {
                key,
                pending: 0,
                refitted: false,
                error: Some(SenseError::EmptyData),
            };
        };
        let (refitted, error) = ingest_batch(
            slot,
            claims,
            self.cfg.refit_pending_claims,
            key,
            epoch,
            &self.obs,
        );
        ClusterAck {
            key,
            pending: slot.est.pending(),
            refitted,
            error,
        }
    }

    fn answer(&mut self, query: ShardQuery) -> Result<ShardReply, ServeError> {
        match query {
            ShardQuery::Posterior { key, assertion } => {
                let epoch = self.epoch;
                let slot = self
                    .clusters
                    .get_mut(&key)
                    .ok_or(ServeError::Protocol("cluster not hosted on this shard"))?;
                let local = slot
                    .world
                    .local_assertion(assertion)
                    .ok_or(ServeError::Protocol("assertion not in routed cluster"))?;
                let fit = fresh_fit(slot, key, epoch, &self.obs)?;
                Ok(ShardReply::Posterior(fit.posterior[local as usize]))
            }
            ShardQuery::Posteriors => {
                let epoch = self.epoch;
                let mut out = Vec::new();
                for (&key, slot) in &mut self.clusters {
                    let fit = fresh_fit(slot, key, epoch, &self.obs)?;
                    for (local, p) in fit.posterior.iter().enumerate() {
                        out.push((slot.world.global_assertion(local as u32), *p));
                    }
                }
                Ok(ShardReply::Posteriors(out))
            }
            ShardQuery::TopSources => {
                let epoch = self.epoch;
                let mut out = Vec::new();
                for (&key, slot) in &mut self.clusters {
                    let fit = fresh_fit(slot, key, epoch, &self.obs)?;
                    let z = fit.theta.z();
                    for (local, s) in fit.theta.sources().iter().enumerate() {
                        out.push(SourceRank {
                            source: slot.world.global_sources()[local],
                            precision: z * s.a / (z * s.a + (1.0 - z) * s.b),
                            params: *s,
                        });
                    }
                }
                Ok(ShardReply::TopSources(out))
            }
            ShardQuery::Bound { groups, method } => {
                let epoch = self.epoch;
                let mut out = Vec::with_capacity(groups.len());
                for (key, assertions) in groups {
                    let slot = self
                        .clusters
                        .get_mut(&key)
                        .ok_or(ServeError::Protocol("cluster not hosted on this shard"))?;
                    let locals: Vec<u32> = assertions
                        .iter()
                        .map(|&j| {
                            slot.world
                                .local_assertion(j)
                                .ok_or(ServeError::Protocol("assertion not in routed cluster"))
                        })
                        .collect::<Result<_, _>>()?;
                    let fit = fresh_fit(slot, key, epoch, &self.obs)?;
                    let data = slot.est.snapshot();
                    let bound = bound_for_assertions_traced(
                        &data,
                        &fit.theta,
                        &method,
                        &locals,
                        self.cfg.parallelism,
                        &self.obs,
                    )?;
                    out.push((key, bound, locals.len()));
                }
                Ok(ShardReply::Bound(out))
            }
            ShardQuery::Stats => {
                let mut p = ShardStatsPartial::default();
                for slot in self.clusters.values() {
                    p.pending += slot.est.pending();
                    p.chain_refits += slot.counters.chain_refits;
                    p.probe_refits += slot.counters.probe_refits;
                    p.probe_cache_hits += slot.counters.probe_cache_hits;
                    p.failed_refits += slot.counters.failed_refits;
                    p.warm_refits += slot.counters.warm_refits;
                    p.delta_refits += slot.counters.delta_refits;
                    p.fallback_refits += slot.counters.fallback_refits;
                    p.last_refit = p.last_refit.max(slot.last_refit);
                }
                Ok(ShardReply::Stats(p))
            }
            ShardQuery::Export => {
                let mut out = Vec::with_capacity(self.clusters.len());
                for (&key, slot) in &self.clusters {
                    out.push(ClusterSnapshot {
                        key,
                        sources: slot.world.global_sources().to_vec(),
                        assertions: slot.world.global_assertions().to_vec(),
                        pending: slot.est.pending(),
                        stream: slot.est.export_state(),
                        chain_fit: slot.chain_fit.as_deref().map(EmFitBits::from_fit),
                        counters: slot.counters,
                        last_refit: slot.last_refit,
                    });
                }
                Ok(ShardReply::Export(out))
            }
        }
    }
}

/// Ingests one sub-batch into a cluster and applies the ingest-time
/// refit policy — the exact `QueryService` worker behaviour scoped to
/// one cluster (the pending-claims debounce counts this cluster's
/// pending claims only).
fn ingest_batch(
    slot: &mut ClusterSlot,
    claims: &[TimedClaim],
    refit_pending_claims: usize,
    key: u32,
    epoch: u64,
    obs: &Obs,
) -> (bool, Option<SenseError>) {
    let local = match slot.world.localize_batch(claims) {
        Ok(l) => l,
        Err(e) => return (false, Some(e)),
    };
    if let Err(e) = slot.est.ingest(&local) {
        return (false, Some(e));
    }
    // The log changed: any cached probe is stale.
    slot.probe_fit = None;
    if refit_pending_claims > 0 && slot.est.pending() >= refit_pending_claims {
        match slot.est.estimate_with_stats() {
            Ok((fit, stats)) => {
                slot.counters.chain_refits += 1;
                obs.counter("serve.refit.chain_total", 1);
                note_refit(slot, &stats, key, epoch, obs);
                slot.chain_fit = Some(Arc::new(fit));
                (true, None)
            }
            Err(e) => {
                slot.counters.failed_refits += 1;
                obs.counter("serve.refit.failed_total", 1);
                (false, Some(e))
            }
        }
    } else {
        (false, None)
    }
}

/// Per-refit bookkeeping shared by chain and probe refits.
fn note_refit(slot: &mut ClusterSlot, stats: &RefitStats, key: u32, epoch: u64, obs: &Obs) {
    if stats.warm {
        slot.counters.warm_refits += 1;
        obs.counter("serve.refit.warm_total", 1);
    }
    match stats.mode {
        RefitOutcome::Full => {}
        RefitOutcome::Delta => {
            slot.counters.delta_refits += 1;
            obs.counter("serve.refit.delta_total", 1);
        }
        RefitOutcome::Fallback => {
            slot.counters.fallback_refits += 1;
            obs.counter("serve.refit.fallback_total", 1);
        }
    }
    slot.last_refit = Some(LastRefit {
        epoch,
        key,
        iterations: stats.iterations,
        touched_assertions: stats.touched_assertions,
        touched_sources: stats.touched_sources,
        ll_exact: stats.ll_exact,
    });
}

/// The fit covering the cluster's full current log: the chain fit when
/// nothing is pending, else a cached probe refit.
fn fresh_fit(
    slot: &mut ClusterSlot,
    key: u32,
    epoch: u64,
    obs: &Obs,
) -> Result<Arc<EmFit>, ServeError> {
    if slot.est.pending() == 0 {
        if let Some(fit) = &slot.chain_fit {
            return Ok(Arc::clone(fit));
        }
    }
    if let Some((at, fit)) = &slot.probe_fit {
        if *at == slot.est.claim_count() {
            slot.counters.probe_cache_hits += 1;
            obs.counter("serve.cache.probe_hits_total", 1);
            return Ok(Arc::clone(fit));
        }
    }
    match slot.est.peek_estimate() {
        Ok((fit, stats)) => {
            slot.counters.probe_refits += 1;
            obs.counter("serve.refit.probe_total", 1);
            note_refit(slot, &stats, key, epoch, obs);
            let fit = Arc::new(fit);
            slot.probe_fit = Some((slot.est.claim_count(), Arc::clone(&fit)));
            Ok(fit)
        }
        Err(e) => {
            slot.counters.failed_refits += 1;
            obs.counter("serve.refit.failed_total", 1);
            Err(ServeError::Sense(e))
        }
    }
}
