//! Crash-recovery torture tests: a killed-and-restarted service must
//! answer every query type `f64::to_bits`-identically to a control
//! service that never died — including after a torn WAL tail, in delta
//! refit mode, and across a shard-count change (cluster handoff).
//!
//! Probe/request counters are deliberately *not* compared: a recovered
//! service resumes them from the checkpoint, not from the control's
//! full query history. Served numbers are the contract.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use socsense_core::{DeltaConfig, RefitMode};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_serve::{
    PersistConfig, QueryService, ServeConfig, ServeHandle, ShardedService, SourceRank,
};

const N: u32 = 6;
const M: u32 = 8;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("socsense-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A follow relation with a few dependency chains, so `D` cells and
/// silent-follower cluster links are exercised.
fn follow_graph() -> FollowerGraph {
    let mut g = FollowerGraph::new(N);
    g.add_follow(1, 0);
    g.add_follow(2, 0);
    g.add_follow(3, 1);
    g.add_follow(5, 4);
    g
}

/// Source 0 claims every assertion and every source claims something:
/// one cluster covering the whole world from batch one on.
fn bootstrap_batch() -> Vec<TimedClaim> {
    let mut t = 0u64;
    let mut batch = Vec::new();
    for j in 0..M {
        t += 1;
        batch.push(TimedClaim::new(0, j, t));
    }
    for s in 1..N {
        t += 1;
        batch.push(TimedClaim::new(s, s % M, t));
    }
    batch
}

fn random_batches(
    batches: usize,
    per_batch: usize,
    seed: u64,
    start_t: u64,
) -> Vec<Vec<TimedClaim>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = start_t;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    t += 1;
                    TimedClaim::new(rng.gen_range(0..N), rng.gen_range(0..M), t)
                })
                .collect()
        })
        .collect()
}

fn bits(posterior: &[f64]) -> Vec<u64> {
    posterior.iter().map(|p| p.to_bits()).collect()
}

fn rank_bits(ranks: &[SourceRank]) -> Vec<(u32, u64, [u64; 4])> {
    ranks
        .iter()
        .map(|r| {
            (
                r.source,
                r.precision.to_bits(),
                [
                    r.params.a.to_bits(),
                    r.params.b.to_bits(),
                    r.params.f.to_bits(),
                    r.params.g.to_bits(),
                ],
            )
        })
        .collect()
}

/// Every query type's answer, as bits.
type Fingerprint = (Vec<u64>, Vec<(u32, u64, [u64; 4])>, [u64; 3], u64);

fn fingerprint(client: &ServeHandle) -> Fingerprint {
    let posteriors = bits(&client.posteriors().unwrap());
    let top = rank_bits(&client.top_sources(N as usize).unwrap());
    let b = client.bound(vec![], None).unwrap();
    let bound = [
        b.error.to_bits(),
        b.false_positive.to_bits(),
        b.false_negative.to_bits(),
    ];
    let one = client.posterior(3).unwrap().to_bits();
    (posteriors, top, bound, one)
}

fn persisted(cfg: &ServeConfig, dir: &Path, snapshot_every: usize) -> ServeConfig {
    ServeConfig {
        persist: Some(PersistConfig {
            data_dir: dir.to_path_buf(),
            fsync_every: 1,
            snapshot_every,
        }),
        ..cfg.clone()
    }
}

/// The core torture loop, shared by the full- and delta-mode variants:
/// run service A over `dir`, kill it, restart as B, and check B against
/// a never-persisted control — both right after recovery and after both
/// ingest further batches (the recovered warm-start chain must keep
/// advancing identically).
fn restart_round_trip(base: ServeConfig, tag: &str) {
    let dir = tmp_dir(tag);
    let mut batches = vec![bootstrap_batch()];
    batches.extend(random_batches(5, 12, 42, 1000));
    let more = random_batches(2, 12, 43, 5000);

    // Snapshot cadence 4 over 6 batches: recovery exercises both the
    // checkpoint (seq 4) and a non-empty WAL tail (batches 5, 6).
    let a = QueryService::spawn(N, M, follow_graph(), persisted(&base, &dir, 4)).unwrap();
    let client = a.handle();
    for batch in &batches {
        client.ingest(batch.clone()).unwrap();
    }
    a.shutdown().unwrap();

    let control = QueryService::spawn(N, M, follow_graph(), base.clone()).unwrap();
    let control_client = control.handle();
    for batch in &batches {
        control_client.ingest(batch.clone()).unwrap();
    }

    let b = QueryService::spawn(N, M, follow_graph(), persisted(&base, &dir, 4)).unwrap();
    let b_client = b.handle();
    assert_eq!(
        fingerprint(&b_client),
        fingerprint(&control_client),
        "recovered service must answer like one that never died"
    );

    for batch in &more {
        let want = control_client.ingest(batch.clone()).unwrap();
        let got = b_client.ingest(batch.clone()).unwrap();
        assert_eq!(want, got, "post-recovery ingest acks must match");
        assert_eq!(fingerprint(&b_client), fingerprint(&control_client));
    }

    // One more death: B's own appends and checkpoints must recover too.
    b.shutdown().unwrap();
    let c = QueryService::spawn(N, M, follow_graph(), persisted(&base, &dir, 4)).unwrap();
    assert_eq!(fingerprint(&c.handle()), fingerprint(&control_client));
    c.shutdown().unwrap();
    control.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serial_restart_is_bit_identical() {
    restart_round_trip(ServeConfig::default(), "serial");
}

#[test]
fn delta_mode_restart_is_bit_identical() {
    restart_round_trip(
        ServeConfig {
            refit_mode: RefitMode::Delta(DeltaConfig::default()),
            ..ServeConfig::default()
        },
        "delta",
    );
}

/// A crash mid-append leaves a torn final WAL line. Recovery must drop
/// exactly the torn record (the client never got its ack) and serve the
/// surviving prefix; re-ingesting the lost batch reconverges with the
/// control.
#[test]
fn torn_wal_tail_recovers_the_acked_prefix() {
    use std::io::Write;

    let dir = tmp_dir("torn");
    let mut batches = vec![bootstrap_batch()];
    batches.extend(random_batches(2, 10, 7, 1000));

    // Snapshot cadence 0: the WAL alone is the recovery source, so the
    // torn record is guaranteed to sit in the replayed region.
    let a = QueryService::spawn(
        N,
        M,
        follow_graph(),
        persisted(&ServeConfig::default(), &dir, 0),
    )
    .unwrap();
    let client = a.handle();
    for batch in &batches {
        client.ingest(batch.clone()).unwrap();
    }
    a.shutdown().unwrap();

    // Tear the final record mid-line, as a crash between `write` and
    // the blocks reaching disk would.
    let wal = dir.join("wal.jsonl");
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 7).unwrap();
    drop(file);
    // And a few garbage bytes after it, as a partially flushed block.
    let mut file = OpenOptions::new().append(true).open(&wal).unwrap();
    file.write_all(b"\x00\xffgarbage").unwrap();
    drop(file);

    let control = QueryService::spawn(N, M, follow_graph(), ServeConfig::default()).unwrap();
    let control_client = control.handle();
    for batch in &batches[..batches.len() - 1] {
        control_client.ingest(batch.clone()).unwrap();
    }

    let b = QueryService::spawn(
        N,
        M,
        follow_graph(),
        persisted(&ServeConfig::default(), &dir, 0),
    )
    .unwrap();
    let b_client = b.handle();
    assert_eq!(
        fingerprint(&b_client),
        fingerprint(&control_client),
        "torn tail must roll back to the last intact record"
    );

    // The lost batch is re-ingested (the client retries an un-acked
    // send) and both worlds reconverge.
    let last = batches.last().unwrap().clone();
    control_client.ingest(last.clone()).unwrap();
    b_client.ingest(last).unwrap();
    assert_eq!(fingerprint(&b_client), fingerprint(&control_client));

    b.shutdown().unwrap();
    control.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sharded tier: kill a 2-shard service, restart it as a 3-shard
/// service over the same data directory (every cluster re-placed by the
/// new rendezvous hash = cluster handoff via snapshot ship + tail
/// replay), and compare against an unsharded-layout 1-shard control.
#[test]
fn sharded_restart_with_different_shard_count_is_bit_identical() {
    let base = ServeConfig::default();
    let dir = tmp_dir("sharded");
    // No bootstrap batch: the world stays multi-cluster, so recovery
    // moves several independent clusters, not one.
    let batches = random_batches(6, 10, 11, 0);
    let more = random_batches(2, 10, 13, 5000);

    let a = ShardedService::spawn(N, M, follow_graph(), persisted(&base, &dir, 4), 2).unwrap();
    let client = a.handle();
    for batch in &batches {
        client.ingest(batch.clone()).unwrap();
    }
    a.shutdown().unwrap();

    let control = ShardedService::spawn(N, M, follow_graph(), base.clone(), 1).unwrap();
    let control_client = control.handle();
    for batch in &batches {
        control_client.ingest(batch.clone()).unwrap();
    }

    let b = ShardedService::spawn(N, M, follow_graph(), persisted(&base, &dir, 4), 3).unwrap();
    let b_client = b.handle();
    assert_eq!(
        fingerprint(&b_client),
        fingerprint(&control_client),
        "recovery across a shard-count change must not move a bit"
    );

    for batch in &more {
        let want = control_client.ingest(batch.clone()).unwrap();
        let got = b_client.ingest(batch.clone()).unwrap();
        assert_eq!(want, got, "post-recovery ingest acks must match");
        assert_eq!(fingerprint(&b_client), fingerprint(&control_client));
    }
    let topo = b_client.topology().unwrap();
    assert_eq!(topo.shards, 3, "the restart re-partitioned the clusters");

    b.shutdown().unwrap();
    control.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
