//! Concurrency tests: determinism under concurrent querying, and
//! graceful shutdown while clients are busy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use socsense_core::{EmConfig, StreamingEstimator};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_serve::{QueryService, ServeConfig, ServeError};

const N: u32 = 10;
const M: u32 = 20;

/// A reliable/unreliable two-camp world streamed in batches (the same
/// construction the core streaming tests use).
fn stream_batches(batches: usize, per_batch: usize, seed: u64) -> Vec<Vec<TimedClaim>> {
    let truth: Vec<bool> = (0..M).map(|j| j < 12).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    let s = rng.gen_range(0..N);
                    let honest = s < 8;
                    let j = loop {
                        let j = rng.gen_range(0..M);
                        if truth[j as usize] == honest {
                            break j;
                        }
                    };
                    t += 1;
                    TimedClaim::new(s, j, t)
                })
                .collect()
        })
        .collect()
}

fn bits(posterior: &[f64]) -> Vec<u64> {
    posterior.iter().map(|p| p.to_bits()).collect()
}

/// Acceptance criterion: ≥4 client threads querying one service while it
/// ingests produce posteriors byte-identical to a serial replay of the
/// same ingest sequence.
#[test]
fn concurrent_queries_never_perturb_the_posterior() {
    let batches = stream_batches(5, 30, 31);

    // Serial baseline: the raw streaming estimator replays the same
    // batches with one refit per batch — exactly the trajectory the
    // service's default `refit_pending_claims = 1` policy walks.
    let mut est =
        StreamingEstimator::new(N, M, FollowerGraph::new(N), EmConfig::default()).unwrap();
    let mut serial = Vec::new();
    for batch in &batches {
        est.ingest(batch).unwrap();
        serial = est.estimate().unwrap().posterior;
    }

    let svc = QueryService::spawn(N, M, FollowerGraph::new(N), ServeConfig::default()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let queriers: Vec<_> = (0..4)
        .map(|q| {
            let client = svc.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Interleave every query kind; assert nothing ever
                    // reports the service closed or a protocol error.
                    let r: Result<(), ServeError> = match served % 4 {
                        0 => client.posterior(q as u32 % M).map(drop),
                        1 => client.posteriors().map(drop),
                        2 => client.top_sources(3).map(drop),
                        _ => client.stats().map(drop),
                    };
                    match r {
                        Ok(()) | Err(ServeError::Sense(_)) => {}
                        Err(e) => panic!("unexpected client error: {e}"),
                    }
                    served += 1;
                }
                served
            })
        })
        .collect();

    let client = svc.handle();
    for batch in &batches {
        let ack = client.ingest(batch.clone()).unwrap();
        assert!(ack.refitted, "threshold 1 refits on every batch");
    }
    let concurrent = client.posteriors().unwrap();
    stop.store(true, Ordering::Relaxed);
    let total_queries: u64 = queriers.into_iter().map(|q| q.join().unwrap()).sum();
    assert!(total_queries > 0, "queriers actually ran");

    assert_eq!(
        bits(&serial),
        bits(&concurrent),
        "concurrent querying must not change a single bit of the posterior"
    );

    let stats = svc.shutdown().unwrap();
    assert_eq!(stats.chain_refits, batches.len() as u64);
    assert_eq!(stats.total_claims, batches.len() * 30);
    assert_eq!(stats.pending_claims, 0);
}

/// In debounced mode the chain never advances mid-test, so the final
/// posterior is a pure function of the ingested claim *multiset*: even
/// ingests racing from several threads land on the same bits as a
/// single-threaded replay of the same batches.
#[test]
fn interleaved_multi_client_ingest_matches_serial_replay() {
    let batches = stream_batches(6, 20, 77);
    let debounced = || ServeConfig {
        refit_pending_claims: 0, // never advance on ingest; queries probe
        ..ServeConfig::default()
    };

    // Single-threaded replay of the same batches through the same policy.
    let svc = QueryService::spawn(N, M, FollowerGraph::new(N), debounced()).unwrap();
    let client = svc.handle();
    for batch in &batches {
        client.ingest(batch.clone()).unwrap();
    }
    let serial = client.posteriors().unwrap();
    svc.shutdown().unwrap();

    // Concurrent run: two ingesters splitting the batches interleave
    // arbitrarily with two query threads.
    let svc = QueryService::spawn(N, M, FollowerGraph::new(N), debounced()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let queriers: Vec<_> = (0..2)
        .map(|_| {
            let client = svc.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match client.posteriors() {
                        Ok(_) | Err(ServeError::Sense(_)) => {}
                        Err(e) => panic!("unexpected client error: {e}"),
                    }
                }
            })
        })
        .collect();
    let ingesters: Vec<_> = [0usize, 1]
        .into_iter()
        .map(|half| {
            let client = svc.handle();
            let mine: Vec<Vec<TimedClaim>> =
                batches.iter().skip(half).step_by(2).cloned().collect();
            std::thread::spawn(move || {
                for batch in mine {
                    client.ingest(batch).unwrap();
                }
            })
        })
        .collect();
    for i in ingesters {
        i.join().unwrap();
    }
    let concurrent = svc.handle().posteriors().unwrap();
    stop.store(true, Ordering::Relaxed);
    for q in queriers {
        q.join().unwrap();
    }
    svc.shutdown().unwrap();

    assert_eq!(
        bits(&serial),
        bits(&concurrent),
        "final posterior must depend only on the claim multiset"
    );
}

/// Shutdown while clients are mid-flood: queued requests drain, late
/// requests get `Closed`, everything joins cleanly.
#[test]
fn shutdown_while_busy_joins_cleanly() {
    let batches = stream_batches(2, 25, 5);
    let svc = QueryService::spawn(N, M, FollowerGraph::new(N), ServeConfig::default()).unwrap();
    let client = svc.handle();
    for batch in &batches {
        client.ingest(batch.clone()).unwrap();
    }

    let floods: Vec<_> = (0..4)
        .map(|_| {
            let client = svc.handle();
            std::thread::spawn(move || {
                let (mut answered, mut closed) = (0u32, 0u32);
                for j in 0..500 {
                    match client.posterior(j % M) {
                        Ok(_) => answered += 1,
                        Err(ServeError::Closed) => closed += 1,
                        Err(e) => panic!("unexpected client error: {e}"),
                    }
                }
                (answered, closed)
            })
        })
        .collect();

    // Shut down with the flood in flight.
    let stats = svc.shutdown().unwrap();
    assert!(stats.requests_served > 0);

    for f in floods {
        let (answered, closed) = f.join().unwrap();
        assert_eq!(
            answered + closed,
            500,
            "every request either answered or cleanly refused"
        );
    }
}

/// The `Metrics` request reflects prior traffic (request counters,
/// per-request-type latency histograms, ≥1 warm chain refit after
/// repeated ingests, streamed `em.*`/`stream.*` families), and the
/// always-on recorder never changes a bit of any served posterior
/// relative to a plain no-op-sink estimator replay.
#[test]
fn metrics_reflect_traffic_without_perturbing_posteriors() {
    let batches = stream_batches(3, 30, 13);

    // No-op-sink baseline: the raw estimator with metrics disabled.
    let mut est =
        StreamingEstimator::new(N, M, FollowerGraph::new(N), EmConfig::default()).unwrap();
    let mut baseline = Vec::new();
    for batch in &batches {
        est.ingest(batch).unwrap();
        baseline = est.estimate().unwrap().posterior;
    }

    // Service run: the worker's recorder is always on, plus an extra
    // teed recorder a caller might attach for export.
    let (extra, extra_rec) = socsense_serve::Obs::recorder();
    let svc =
        QueryService::spawn_with_obs(N, M, FollowerGraph::new(N), ServeConfig::default(), extra)
            .unwrap();
    let client = svc.handle();
    for batch in &batches {
        client.ingest(batch.clone()).unwrap();
    }
    let served = client.posteriors().unwrap();
    let p = client.posterior(0).unwrap();
    assert_eq!(p.to_bits(), served[0].to_bits());

    assert_eq!(
        bits(&baseline),
        bits(&served),
        "the metrics recorder must be observation-only"
    );

    let m = client.metrics().unwrap();
    // Traffic so far: 3 ingests, 1 posteriors, 1 posterior, plus the
    // in-flight metrics request itself (counted before dispatch).
    assert_eq!(m.counter("serve.requests_total"), 6);
    assert_eq!(m.counter("serve.refit.chain_total"), 3);
    assert!(
        m.counter("serve.refit.warm_total") >= 1,
        "repeated ingest must warm-start the chain"
    );
    assert_eq!(m.counter("serve.refit.failed_total"), 0);
    assert_eq!(m.counter("stream.ingest.claims_total"), 90);
    assert!(m.counter("em.runs_total") >= 3, "refits run EM");
    let ingest_lat = m
        .histogram("serve.request.ingest.seconds")
        .expect("ingest latency histogram present");
    assert_eq!(ingest_lat.count, 3);
    assert_eq!(
        m.histogram("serve.request.posteriors.seconds")
            .expect("posteriors latency histogram present")
            .count,
        1
    );
    assert!(
        m.histogram("serve.queue.wait_seconds")
            .expect("queue wait histogram present")
            .count
            >= 5
    );

    // The metrics request itself is traffic: a second snapshot counts
    // the first one.
    let m2 = client.metrics().unwrap();
    assert_eq!(m2.counter("serve.requests_total"), 7);
    assert_eq!(
        m2.histogram("serve.request.metrics.seconds")
            .expect("metrics latency histogram present")
            .count,
        1
    );

    svc.shutdown().unwrap();

    // The teed extra sink saw the same counters as the internal one.
    let teed = extra_rec.snapshot();
    assert_eq!(
        teed.counter("serve.refit.chain_total"),
        m2.counter("serve.refit.chain_total")
    );
    assert_eq!(teed.counter("stream.ingest.claims_total"), 90);
}
