//! Interior corruption of a router history segment
//! (`<data_dir>/clusters/cluster-<key>.jsonl`) must surface as a loud
//! `Corrupt` error on the live serve path — never as a silent
//! truncation that rebuilds a cluster from a partial claim history.
//!
//! The segments are a cache of the WAL (recovery wipes and re-derives
//! them), so the second half of the contract is that a *restart* over
//! the same data directory heals: the corrupt segment is discarded,
//! the history is rebuilt from the WAL, and the recovered service is
//! bit-identical to a control that never saw the corruption.

use std::path::{Path, PathBuf};

use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_serve::{PersistConfig, ServeConfig, ShardedService};

const N: u32 = 4;
const M: u32 = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("socsense-histcor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persisted(dir: &Path) -> ServeConfig {
    ServeConfig {
        persist: Some(PersistConfig {
            data_dir: dir.to_path_buf(),
            fsync_every: 1,
            snapshot_every: 0,
        }),
        ..ServeConfig::default()
    }
}

/// Three claims by source 0 on assertion 0: one cluster, three history
/// lines in its segment.
fn seed_batch() -> Vec<TimedClaim> {
    (0..3).map(|t| TimedClaim::new(0, 0, t + 1)).collect()
}

/// Source 1 joins the cluster: membership grows, so the router must
/// rebuild the cluster's estimator from its full claim history.
fn growth_batch() -> Vec<TimedClaim> {
    vec![TimedClaim::new(1, 0, 10)]
}

/// Corrupts the middle line of the single cluster segment under `dir`
/// and returns the segment path.
fn corrupt_only_segment(dir: &Path) -> PathBuf {
    let clusters = dir.join("clusters");
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&clusters)
        .expect("clusters dir exists after first ingest")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    segments.sort();
    assert_eq!(
        segments.len(),
        1,
        "seed batch forms one cluster: {segments:?}"
    );
    let path = segments.remove(0);
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 3,
        "expected 3 history lines, got {}",
        lines.len()
    );
    lines[1] = "{\"epoch\":not-json";
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    path
}

#[test]
fn corrupt_segment_fails_the_rebuild_loudly_and_restart_heals_it() {
    let dir = tmp_dir("live");
    let graph = FollowerGraph::new(N);

    let service = ShardedService::spawn(N, M, graph.clone(), persisted(&dir), 2).unwrap();
    let client = service.handle();
    client.ingest(seed_batch()).unwrap();
    let segment = corrupt_only_segment(&dir);

    // The growth batch forces a rebuild of the corrupted cluster; the
    // router reads the segment, hits the garbage line, and must refuse
    // rather than rebuild from the readable prefix.
    let err = client.ingest(growth_batch()).unwrap_err().to_string();
    assert!(
        err.contains("corrupt"),
        "rebuild over a corrupt segment is loud: {err}"
    );
    assert!(
        err.contains("line 2"),
        "the error pinpoints the corrupt line: {err}"
    );
    assert!(
        segment.exists(),
        "the failed read leaves the corrupt segment as evidence"
    );

    // The router is now wedged: the failed epoch's cluster operations
    // never reached the shards, so every further request fails fast
    // with the original error instead of serving incomplete state.
    let err = client.posteriors().unwrap_err().to_string();
    assert!(
        err.contains("wedged"),
        "queries fail fast when wedged: {err}"
    );
    assert!(err.contains("corrupt"), "the wedge names its cause: {err}");
    let err = client.ingest(growth_batch()).unwrap_err().to_string();
    assert!(
        err.contains("wedged"),
        "ingests fail fast when wedged: {err}"
    );

    // Graceful shutdown still drains and joins the shards.
    service.shutdown().unwrap();

    // Restart over the same directory: recovery wipes the segments and
    // replays the WAL — which logged the growth batch before the
    // rebuild failed — so the recovered service matches a control that
    // ingested both batches without ever touching disk.
    let recovered = ShardedService::spawn(N, M, graph.clone(), persisted(&dir), 2).unwrap();
    let control = ShardedService::spawn(N, M, graph, ServeConfig::default(), 2).unwrap();
    let control_client = control.handle();
    control_client.ingest(seed_batch()).unwrap();
    control_client.ingest(growth_batch()).unwrap();

    let recovered_client = recovered.handle();
    let got: Vec<u64> = recovered_client
        .posteriors()
        .unwrap()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let want: Vec<u64> = control_client
        .posteriors()
        .unwrap()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    assert_eq!(got, want, "recovery rebuilt the history from the WAL");

    // And the healed service keeps serving: another growth ingest now
    // reads a freshly rebuilt segment.
    recovered_client
        .ingest(vec![TimedClaim::new(2, 0, 20)])
        .unwrap();
    control_client
        .ingest(vec![TimedClaim::new(2, 0, 20)])
        .unwrap();
    assert_eq!(
        recovered_client.posterior(0).unwrap().to_bits(),
        control_client.posterior(0).unwrap().to_bits()
    );

    recovered.shutdown().unwrap();
    control.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
