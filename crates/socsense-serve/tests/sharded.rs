//! Sharded-tier equivalence tests: every served number must be
//! `f64::to_bits`-identical across shard counts, match the unsharded
//! service on single-cluster workloads, and stay epoch-consistent under
//! racing clients.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use socsense_core::{DeltaConfig, RefitMode};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_serve::{
    QueryService, ServeConfig, ServeError, ServeStats, ShardedService, SourceRank,
};

const N: u32 = 6;
const M: u32 = 8;

/// A follow relation with a few dependency chains, so `D` cells and
/// silent-follower cluster links are exercised.
fn follow_graph() -> FollowerGraph {
    let mut g = FollowerGraph::new(N);
    g.add_follow(1, 0);
    g.add_follow(2, 0);
    g.add_follow(3, 1);
    g.add_follow(5, 4);
    g
}

/// First batch of the single-cluster world: source 0 claims every
/// assertion and every source claims something, so from batch one on
/// there is exactly one cluster covering all `N` sources and `M`
/// assertions — the identity remap under which the per-cluster
/// estimator is the global estimator.
fn bootstrap_batch() -> Vec<TimedClaim> {
    let mut t = 0u64;
    let mut batch = Vec::new();
    for j in 0..M {
        t += 1;
        batch.push(TimedClaim::new(0, j, t));
    }
    for s in 1..N {
        t += 1;
        batch.push(TimedClaim::new(s, s % M, t));
    }
    batch
}

fn random_batches(
    batches: usize,
    per_batch: usize,
    seed: u64,
    start_t: u64,
) -> Vec<Vec<TimedClaim>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = start_t;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    t += 1;
                    TimedClaim::new(rng.gen_range(0..N), rng.gen_range(0..M), t)
                })
                .collect()
        })
        .collect()
}

fn bits(posterior: &[f64]) -> Vec<u64> {
    posterior.iter().map(|p| p.to_bits()).collect()
}

fn rank_bits(ranks: &[SourceRank]) -> Vec<(u32, u64, [u64; 4])> {
    ranks
        .iter()
        .map(|r| {
            (
                r.source,
                r.precision.to_bits(),
                [
                    r.params.a.to_bits(),
                    r.params.b.to_bits(),
                    r.params.f.to_bits(),
                    r.params.g.to_bits(),
                ],
            )
        })
        .collect()
}

/// On a world that is one cluster covering every source and assertion,
/// the sharded tier at shard counts 1, 2, and 4 reproduces the
/// unsharded `QueryService` bit for bit — acks, posteriors, source
/// ranks, bounds, and operating statistics — in both full and delta
/// refit modes.
#[test]
fn single_cluster_world_matches_unsharded_service_bit_for_bit() {
    let configs = [
        ServeConfig::default(),
        ServeConfig {
            refit_mode: RefitMode::Delta(DeltaConfig::default()),
            ..ServeConfig::default()
        },
    ];
    for cfg in configs {
        let mut batches = vec![bootstrap_batch()];
        batches.extend(random_batches(5, 18, 42, 1000));

        let legacy = QueryService::spawn(N, M, follow_graph(), cfg.clone()).unwrap();
        let sharded: Vec<ShardedService> = [1, 2, 4]
            .into_iter()
            .map(|s| ShardedService::spawn(N, M, follow_graph(), cfg.clone(), s).unwrap())
            .collect();

        let legacy_client = legacy.handle();
        let shard_clients: Vec<_> = sharded.iter().map(|s| s.handle()).collect();

        for batch in &batches {
            let ack = legacy_client.ingest(batch.clone()).unwrap();
            let reference = bits(&legacy_client.posteriors().unwrap());
            for (client, svc) in shard_clients.iter().zip(&sharded) {
                let shard_ack = client.ingest(batch.clone()).unwrap();
                assert_eq!(ack, shard_ack, "ingest ack at shards={}", svc.shards());
                assert_eq!(
                    reference,
                    bits(&client.posteriors().unwrap()),
                    "posteriors at shards={}",
                    svc.shards()
                );
            }
        }

        let top = rank_bits(&legacy_client.top_sources(N as usize).unwrap());
        let bound = legacy_client.bound(vec![], None).unwrap();
        let one = legacy_client.posterior(3).unwrap().to_bits();
        let stats = legacy_client.stats().unwrap();
        for (client, svc) in shard_clients.iter().zip(&sharded) {
            let s = svc.shards();
            assert_eq!(
                top,
                rank_bits(&client.top_sources(N as usize).unwrap()),
                "top sources at shards={s}"
            );
            let b = client.bound(vec![], None).unwrap();
            assert_eq!(
                bound.error.to_bits(),
                b.error.to_bits(),
                "bound at shards={s}"
            );
            assert_eq!(bound.false_positive.to_bits(), b.false_positive.to_bits());
            assert_eq!(bound.false_negative.to_bits(), b.false_negative.to_bits());
            assert_eq!(one, client.posterior(3).unwrap().to_bits());
            assert_eq!(stats, client.stats().unwrap(), "stats at shards={s}");
        }

        legacy.shutdown().unwrap();
        for svc in sharded {
            svc.shutdown().unwrap();
        }
    }
}

/// Cold-start symmetry (the satellite regression): a cluster whose
/// first claim arrives mid-stream — landing on a shard that was idle
/// until that moment — serves posteriors bit-identical to a
/// single-shard replay of the same interleaved sequence.
#[test]
fn mid_stream_cluster_birth_is_bit_identical_to_single_shard_replay() {
    const CN: u32 = 8;
    const CM: u32 = 16;
    // Cluster c lives on assertions {2c, 2c+1} with claimant source c:
    // disjoint by construction, so each batch below births cluster k
    // while appending to every previously-born cluster.
    let claim = |c: u32, second: bool, t: u64| TimedClaim::new(c, 2 * c + u32::from(second), t);
    let mut t = 0u64;
    let batches: Vec<Vec<TimedClaim>> = (0..CN)
        .map(|k| {
            let mut batch = Vec::new();
            t += 1;
            batch.push(claim(k, false, t)); // birth of cluster k
            for older in 0..k {
                t += 1;
                batch.push(claim(older, (t + older as u64).is_multiple_of(2), t));
            }
            batch
        })
        .collect();

    let spawn = |shards| {
        ShardedService::spawn(
            CN,
            CM,
            FollowerGraph::new(CN),
            ServeConfig::default(),
            shards,
        )
        .unwrap()
    };
    let single = spawn(1);
    let wide = spawn(4);
    let single_client = single.handle();
    let wide_client = wide.handle();
    for batch in &batches {
        single_client.ingest(batch.clone()).unwrap();
        wide_client.ingest(batch.clone()).unwrap();
        assert_eq!(
            bits(&single_client.posteriors().unwrap()),
            bits(&wide_client.posteriors().unwrap()),
            "posteriors must agree right after each cluster birth"
        );
    }
    assert_eq!(
        single_client.stats().unwrap(),
        wide_client.stats().unwrap(),
        "whole operating history must match, not just the last answer"
    );
    // Topology is sharded-only and counts as a request, so it comes
    // after the stats comparison.
    let topo = wide_client.topology().unwrap();
    assert_eq!(topo.shards, 4);
    assert_eq!(topo.epoch, batches.len() as u64);
    assert_eq!(topo.clusters.len(), CN as usize, "one cluster per camp");
    single.shutdown().unwrap();
    wide.shutdown().unwrap();
}

/// With ingest refits debounced off, the final answers are a pure
/// function of the claim multiset — so two ingesters racing against a
/// four-shard tier must land on the same bits as a serial single-shard
/// replay.
#[test]
fn racing_ingesters_match_serial_single_shard_replay() {
    let debounced = || ServeConfig {
        refit_pending_claims: 0,
        ..ServeConfig::default()
    };
    let batches = random_batches(6, 15, 7, 0);

    let serial = ShardedService::spawn(N, M, follow_graph(), debounced(), 1).unwrap();
    let serial_client = serial.handle();
    for batch in &batches {
        serial_client.ingest(batch.clone()).unwrap();
    }
    let want_posteriors = bits(&serial_client.posteriors().unwrap());
    let want_top = rank_bits(&serial_client.top_sources(N as usize).unwrap());
    serial.shutdown().unwrap();

    let racing = ShardedService::spawn(N, M, follow_graph(), debounced(), 4).unwrap();
    let ingesters: Vec<_> = [0usize, 1]
        .into_iter()
        .map(|half| {
            let client = racing.handle();
            let mine: Vec<Vec<TimedClaim>> =
                batches.iter().skip(half).step_by(2).cloned().collect();
            std::thread::spawn(move || {
                for batch in mine {
                    client.ingest(batch).unwrap();
                }
            })
        })
        .collect();
    for i in ingesters {
        i.join().unwrap();
    }
    let client = racing.handle();
    assert_eq!(want_posteriors, bits(&client.posteriors().unwrap()));
    assert_eq!(
        want_top,
        rank_bits(&client.top_sources(N as usize).unwrap())
    );
    racing.shutdown().unwrap();
}

/// Epoch consistency: fan-out queries racing hard against ingests never
/// observe a torn epoch (no protocol errors, no closed errors while the
/// service is up).
#[test]
fn fanout_queries_never_mix_epochs_under_racing_ingest() {
    let svc = ShardedService::spawn(N, M, follow_graph(), ServeConfig::default(), 4).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let queriers: Vec<_> = (0..3)
        .map(|q| {
            let client = svc.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let r: Result<(), ServeError> = match served % 4 {
                        0 => client.posteriors().map(drop),
                        1 => client.top_sources(3).map(drop),
                        2 => client.stats().map(drop),
                        _ => client.posterior(q % M).map(drop),
                    };
                    match r {
                        Ok(()) | Err(ServeError::Sense(_)) => {}
                        Err(e) => panic!("epoch consistency violated: {e}"),
                    }
                    served += 1;
                }
                served
            })
        })
        .collect();
    let batches = random_batches(8, 12, 99, 0);
    let ingesters: Vec<_> = [0usize, 1]
        .into_iter()
        .map(|half| {
            let client = svc.handle();
            let mine: Vec<Vec<TimedClaim>> =
                batches.iter().skip(half).step_by(2).cloned().collect();
            std::thread::spawn(move || {
                for batch in mine {
                    client.ingest(batch).unwrap();
                }
            })
        })
        .collect();
    for i in ingesters {
        i.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = queriers.into_iter().map(|q| q.join().unwrap()).sum();
    assert!(total > 0, "queriers actually ran");
    let stats = svc.shutdown().unwrap();
    assert_eq!(stats.total_claims, 8 * 12);
}

mod properties {
    use super::*;
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;

    const PN: u32 = 7;
    const PM: u32 = 9;

    /// `(follow edges, batched claim stream, refit_pending_claims)`.
    type World = (Vec<(u32, u32)>, Vec<Vec<(u32, u32)>>, usize);

    /// All served numbers of one replay, as bits: posteriors,
    /// top-sources rows, a bound triple, and the final stats.
    type Fingerprint = (Vec<u64>, Vec<(u32, u64, [u64; 4])>, [u64; 3], ServeStats);

    /// Random follow edges + a random batched claim stream.
    fn world() -> impl Strategy<Value = World> {
        (
            pvec((0..PN, 0..PN), 0..8),
            pvec(pvec((0..PN, 0..PM), 1..10), 1..5),
            0usize..3,
        )
    }

    fn run(
        follows: &[(u32, u32)],
        batches: &[Vec<(u32, u32)>],
        refit_pending_claims: usize,
        shards: usize,
    ) -> Fingerprint {
        let mut g = FollowerGraph::new(PN);
        for &(f, a) in follows {
            if f != a {
                g.add_follow(f, a);
            }
        }
        let cfg = ServeConfig {
            refit_pending_claims,
            ..ServeConfig::default()
        };
        let svc = ShardedService::spawn(PN, PM, g, cfg, shards).unwrap();
        let client = svc.handle();
        let mut t = 0u64;
        for batch in batches {
            let timed: Vec<TimedClaim> = batch
                .iter()
                .map(|&(s, j)| {
                    t += 1;
                    TimedClaim::new(s, j, t)
                })
                .collect();
            client.ingest(timed).unwrap();
        }
        let posteriors = bits(&client.posteriors().unwrap());
        let top = rank_bits(&client.top_sources(PN as usize).unwrap());
        let b = client.bound(vec![], None).unwrap();
        let bound = [
            b.error.to_bits(),
            b.false_positive.to_bits(),
            b.false_negative.to_bits(),
        ];
        let stats = client.stats().unwrap();
        svc.shutdown().unwrap();
        (posteriors, top, bound, stats)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The acceptance pin: `Shards(1) ≡ Shards(2) ≡ Shards(4)` down
        /// to the bit for every query kind, on arbitrary worlds
        /// (multi-cluster, cluster merges, silent followers, any refit
        /// debounce).
        #[test]
        fn shard_count_never_changes_a_bit((follows, batches, threshold) in world()) {
            let reference = run(&follows, &batches, threshold, 1);
            for shards in [2usize, 4] {
                let got = run(&follows, &batches, threshold, shards);
                prop_assert_eq!(&reference.0, &got.0, "posteriors, shards={}", shards);
                prop_assert_eq!(&reference.1, &got.1, "top sources, shards={}", shards);
                prop_assert_eq!(&reference.2, &got.2, "bound, shards={}", shards);
                prop_assert_eq!(&reference.3, &got.3, "stats, shards={}", shards);
            }
        }
    }
}
