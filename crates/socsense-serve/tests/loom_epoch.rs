//! Exhaustive-interleaving model of the router's epoch/drain handshake
//! (`socsense-serve::router`), in the style of a loom test. The real
//! loom crate is not vendored, so this harness does what loom does for
//! our protocol by hand: it models the router and its shards as
//! explicit state machines with FIFO channels and runs a depth-first
//! search over every scheduler choice, asserting the protocol
//! invariant in every reachable state.
//!
//! ## The protocol under test
//!
//! One ingest epoch: the router sends every *involved* shard an
//! `Ingest { epoch, reply }` and every uninvolved shard a bare
//! `Epoch(epoch)` marker, then blocks until the involved shards ack
//! (the drain barrier). Queries are sent afterwards, stamped with the
//! router's epoch; a shard replies with its own epoch, and the router
//! rejects any mismatch as "fan-out reply from a different epoch".
//!
//! ## The property
//!
//! **No lost epoch marker**: in every interleaving, by the time a
//! shard processes a query stamped with epoch `E`, the shard's own
//! epoch is `E`. The barrier only waits for *involved* shards, so the
//! property rides entirely on channel FIFO order for the uninvolved
//! ones — which is exactly the kind of reasoning that deserves
//! exhaustive checking rather than a few lucky schedules.
//!
//! A negative control removes the markers (uninvolved shards receive
//! nothing) and asserts the search *finds* the stale-epoch violation,
//! proving the harness can catch the bug class it exists for.
//!
//! ## Bounds
//!
//! Under plain `cargo test` the model runs small bounds (2 shards, all
//! involved-set plans over 2 epochs). Under `RUSTFLAGS=--cfg loom` it
//! runs the deep bounds (3 shards, 3 epochs) — the CI loom lane.

use std::collections::{HashSet, VecDeque};

#[cfg(loom)]
const SHARDS: usize = 3;
#[cfg(not(loom))]
const SHARDS: usize = 2;

#[cfg(loom)]
const EPOCHS: u64 = 3;
#[cfg(not(loom))]
const EPOCHS: u64 = 2;

/// A message in a shard's FIFO inbox.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Msg {
    /// Cluster operations for `epoch`; the shard acks after applying.
    Ingest { epoch: u64 },
    /// Bare epoch marker for an uninvolved shard; no ack.
    Epoch(u64),
    /// Query stamped with the router's epoch at send time.
    Query { epoch: u64 },
}

/// One shard: its inbox and the last epoch it observed.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Shard {
    inbox: VecDeque<Msg>,
    epoch: u64,
}

/// One step of the router's (sequential) program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum RouterStep {
    Send {
        shard: usize,
        msg: Msg,
    },
    /// The drain barrier: block until `acks` acks for `epoch` arrived.
    AwaitAcks {
        epoch: u64,
        acks: usize,
    },
}

/// The whole model state. `Hash`/`Eq` let the DFS memoize states so
/// diamond-shaped interleavings are explored once.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State {
    shards: Vec<Shard>,
    /// Remaining router program, executed front to back.
    program: VecDeque<RouterStep>,
    /// `(epoch, count)` acks the router has received.
    acks: Vec<u64>,
}

/// A stale-epoch observation: `(shard, query_epoch, shard_epoch)`.
type Violation = (usize, u64, u64);

/// Compiles a router program from a plan: for each epoch, the set of
/// involved shards. After the last epoch, every shard is queried.
/// `send_markers = false` is the planted bug for the negative control.
fn compile(plan: &[Vec<usize>], shards: usize, send_markers: bool) -> VecDeque<RouterStep> {
    let mut program = VecDeque::new();
    for (i, involved) in plan.iter().enumerate() {
        let epoch = i as u64 + 1;
        for shard in 0..shards {
            if involved.contains(&shard) {
                program.push_back(RouterStep::Send {
                    shard,
                    msg: Msg::Ingest { epoch },
                });
            } else if send_markers {
                program.push_back(RouterStep::Send {
                    shard,
                    msg: Msg::Epoch(epoch),
                });
            }
        }
        program.push_back(RouterStep::AwaitAcks {
            epoch,
            acks: involved.len(),
        });
    }
    let final_epoch = plan.len() as u64;
    for shard in 0..shards {
        program.push_back(RouterStep::Send {
            shard,
            msg: Msg::Query { epoch: final_epoch },
        });
    }
    program
}

/// Explores every interleaving from `state` by DFS, returning the
/// first property violation found (`None` = the property holds in all
/// reachable states). `explored` counts newly visited states.
fn search(state: State, seen: &mut HashSet<State>, explored: &mut u64) -> Option<Violation> {
    if !seen.insert(state.clone()) {
        return None;
    }
    *explored += 1;

    let mut progressed = false;

    // Scheduler choice 1: the router takes its next step (if enabled).
    if let Some(&step) = state.program.front() {
        let enabled = match step {
            RouterStep::Send { .. } => true,
            RouterStep::AwaitAcks { epoch, acks } => {
                state.acks.iter().filter(|&&e| e == epoch).count() >= acks
            }
        };
        if enabled {
            progressed = true;
            let mut next = state.clone();
            next.program.pop_front();
            if let RouterStep::Send { shard, msg } = step {
                next.shards[shard].inbox.push_back(msg);
            }
            if let Some(v) = search(next, seen, explored) {
                return Some(v);
            }
        }
    }

    // Scheduler choice 2..n: any shard with a queued message runs.
    for i in 0..state.shards.len() {
        let Some(&msg) = state.shards[i].inbox.front() else {
            continue;
        };
        progressed = true;
        let mut next = state.clone();
        next.shards[i].inbox.pop_front();
        match msg {
            Msg::Ingest { epoch } => {
                next.shards[i].epoch = epoch;
                next.acks.push(epoch);
            }
            Msg::Epoch(epoch) => next.shards[i].epoch = epoch,
            Msg::Query { epoch } => {
                // The property: a query stamped `epoch` must find the
                // shard already at `epoch` — the marker (or ingest)
                // sent before it on the same FIFO channel arrived.
                if next.shards[i].epoch != epoch {
                    return Some((i, epoch, next.shards[i].epoch));
                }
            }
        }
        if let Some(v) = search(next, seen, explored) {
            return Some(v);
        }
    }

    // A state with work left but no enabled step would be a deadlock —
    // e.g. an AwaitAcks that can never be satisfied.
    assert!(
        progressed || state.program.is_empty(),
        "deadlock: router blocked with idle shards in {state:?}"
    );
    None
}

/// All involved-set plans: the cartesian product of the subsets of
/// `0..shards` over `epochs` epochs (the empty set included — that is
/// the wedge path's bare marker broadcast).
fn all_plans(shards: usize, epochs: u64) -> Vec<Vec<Vec<usize>>> {
    let subsets: Vec<Vec<usize>> = (0u32..(1 << shards))
        .map(|mask| (0..shards).filter(|&s| mask & (1 << s) != 0).collect())
        .collect();
    let mut plans: Vec<Vec<Vec<usize>>> = vec![Vec::new()];
    for _ in 0..epochs {
        plans = plans
            .iter()
            .flat_map(|p| {
                subsets.iter().map(move |s| {
                    let mut q = p.clone();
                    q.push(s.clone());
                    q
                })
            })
            .collect();
    }
    plans
}

fn run_plan(plan: &[Vec<usize>], send_markers: bool) -> (Option<Violation>, u64) {
    let state = State {
        shards: vec![
            Shard {
                inbox: VecDeque::new(),
                epoch: 0,
            };
            SHARDS
        ],
        program: compile(plan, SHARDS, send_markers),
        acks: Vec::new(),
    };
    let mut seen = HashSet::new();
    let mut explored = 0;
    (search(state, &mut seen, &mut explored), explored)
}

#[test]
fn no_interleaving_loses_an_epoch_marker() {
    let mut total_states = 0u64;
    let plans = all_plans(SHARDS, EPOCHS);
    for plan in &plans {
        let (violation, explored) = run_plan(plan, true);
        assert_eq!(
            violation, None,
            "stale epoch reached a query under plan {plan:?}"
        );
        total_states += explored;
    }
    // The run must be an actual exploration, not a vacuous pass: each
    // plan's interleaving graph has dozens of memoized states even at
    // the small bounds.
    assert!(
        total_states > plans.len() as u64 * 25,
        "suspiciously small state space: {total_states} states over {} plans",
        plans.len()
    );
}

#[test]
fn negative_control_dropping_markers_is_caught() {
    // Uninvolved shards receive no marker: shard 1 sits at epoch 0
    // while the router queries at the final epoch. The search must
    // find that schedule.
    let plan: Vec<Vec<usize>> = (0..EPOCHS).map(|_| vec![0]).collect();
    let (violation, _) = run_plan(&plan, false);
    let (shard, query_epoch, shard_epoch) =
        violation.expect("the search must catch the dropped marker");
    assert_ne!(shard, 0, "the involved shard is never stale");
    assert_eq!(query_epoch, EPOCHS);
    assert_eq!(shard_epoch, 0, "the uninvolved shard never advanced");

    // And a subtler drop: the shard is involved early (so it has
    // *some* epoch) but misses only the final marker.
    let mut plan: Vec<Vec<usize>> = (0..EPOCHS - 1).map(|_| (0..SHARDS).collect()).collect();
    plan.push(vec![0]);
    let (violation, _) = run_plan(&plan, false);
    let (_, query_epoch, shard_epoch) =
        violation.expect("a single missing final marker must also be caught");
    assert_eq!(shard_epoch, query_epoch - 1, "stale by exactly one epoch");
}

/// The wedge path (see `Router::ingest_impl`): an epoch whose cluster
/// operations failed to build is still epoch-marked on every channel,
/// so the fleet stays drainable. Modeled as an all-uninvolved epoch
/// between ordinary ones.
#[test]
fn bare_marker_broadcast_keeps_the_fleet_aligned() {
    let mut plan: Vec<Vec<usize>> = vec![(0..SHARDS).collect()];
    plan.push(Vec::new()); // the failed epoch: markers only
    while (plan.len() as u64) < EPOCHS {
        plan.push(vec![0]);
    }
    let (violation, explored) = run_plan(&plan, true);
    assert_eq!(violation, None, "the marker broadcast epoch must drain");
    assert!(explored > 0);
}
