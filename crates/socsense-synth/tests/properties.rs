//! Property-based tests: the generator must respect its own contract for
//! every valid configuration.

use proptest::prelude::*;
use socsense_synth::{empirical_theta, GeneratorConfig, IntInterval, Interval, SyntheticDataset};

fn arbitrary_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        3u32..25,    // n
        4u32..40,    // m
        1u32..6,     // tau lo
        0.2f64..0.8, // d
        0.2f64..0.9, // p_on
        0.1f64..0.9, // p_dep
        0.3f64..0.9, // p_indep_t
        0.2f64..0.8, // p_dep_t
        5u32..60,    // opportunities
    )
        .prop_map(
            |(n, m, tau_lo, d, p_on, p_dep, p_it, p_dt, opportunities)| GeneratorConfig {
                n,
                m,
                tau: IntInterval {
                    lo: tau_lo.min(n),
                    hi: tau_lo.min(n),
                },
                d: Interval::fixed(d),
                p_on: Interval::fixed(p_on),
                p_dep: Interval::fixed(p_dep),
                p_indep_t: Interval::fixed(p_it),
                p_dep_t: Interval::fixed(p_dt),
                opportunities,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated datasets are internally consistent for any valid config.
    #[test]
    fn generator_respects_its_contract(cfg in arbitrary_config(), seed in 0u64..500) {
        let ds = SyntheticDataset::generate(&cfg, seed).unwrap();
        // Shapes.
        prop_assert_eq!(ds.source_count(), cfg.n as usize);
        prop_assert_eq!(ds.assertion_count(), cfg.m as usize);
        prop_assert_eq!(ds.profiles.len(), cfg.n as usize);
        prop_assert_eq!(ds.forest.tree_count(), ds.tau);
        // Truth ratio equals the (fixed) d up to rounding.
        let expected_true = (ds.d * cfg.m as f64).round();
        let actual_true = ds.truth.iter().filter(|&&t| t).count() as f64;
        prop_assert!((expected_true - actual_true).abs() < 1.0 + 1e-9);
        // Claim ids are in range and timestamps strictly increase.
        for w in ds.claims.windows(2) {
            prop_assert!(w[0].time < w[1].time);
        }
        for c in &ds.claims {
            prop_assert!(c.source < cfg.n && c.assertion < cfg.m);
        }
        // Roots never make dependent claims; leaves' dependent claims
        // match exactly "my root claimed this".
        for &root in ds.forest.roots() {
            for &j in ds.data.sc().row(root) {
                prop_assert!(!ds.data.dependent(root, j));
            }
        }
        for leaf in ds.forest.leaves() {
            let root = ds.forest.root_of(leaf);
            for &j in ds.data.sc().row(leaf) {
                prop_assert_eq!(ds.data.dependent(leaf, j), ds.data.claimed(root, j));
            }
        }
        // Profiles stay inside the configured (degenerate) intervals.
        for p in &ds.profiles {
            prop_assert!((p.p_on - cfg.p_on.lo).abs() < 1e-12);
            prop_assert!((p.p_dep_t - cfg.p_dep_t.lo).abs() < 1e-12);
        }
    }

    /// The measured θ is always a valid parameter set whose z equals the
    /// truth ratio.
    #[test]
    fn empirical_theta_is_valid(cfg in arbitrary_config(), seed in 0u64..500) {
        let ds = SyntheticDataset::generate(&cfg, seed).unwrap();
        let theta = empirical_theta(&ds);
        prop_assert_eq!(theta.source_count(), ds.source_count());
        prop_assert!((theta.z() - ds.truth_ratio()).abs() < 1e-12);
        for s in theta.sources() {
            for v in [s.a, s.b, s.f, s.g] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    /// Same seed, same dataset — for any configuration.
    #[test]
    fn generation_is_deterministic(cfg in arbitrary_config(), seed in 0u64..500) {
        let a = SyntheticDataset::generate(&cfg, seed).unwrap();
        let b = SyntheticDataset::generate(&cfg, seed).unwrap();
        prop_assert_eq!(a.claims, b.claims);
        prop_assert_eq!(a.truth, b.truth);
        prop_assert_eq!(a.data, b.data);
    }
}
