//! Generator configuration: the parameter intervals of Sec. V-A.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A closed interval `[lo, hi]` sampled uniformly; `lo == hi` pins the
/// value (used by the figure sweeps that fix one knob).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::BadInterval`] when `lo > hi` or either
    /// endpoint is not finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, SynthError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(SynthError::BadInterval { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// A degenerate interval pinning the value.
    pub fn fixed(v: f64) -> Self {
        Self { lo: v, hi: v }
    }

    /// Uniform sample from the interval.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Whether the whole interval lies within `[0, 1]`.
    pub fn is_probability(&self) -> bool {
        (0.0..=1.0).contains(&self.lo) && (0.0..=1.0).contains(&self.hi)
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// An inclusive integer interval, used for the tree count `τ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntInterval {
    /// Lower endpoint.
    pub lo: u32,
    /// Upper endpoint.
    pub hi: u32,
}

impl IntInterval {
    /// Creates `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::BadIntInterval`] when `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Result<Self, SynthError> {
        if lo > hi {
            return Err(SynthError::BadIntInterval { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// A degenerate interval pinning the value.
    pub fn fixed(v: u32) -> Self {
        Self { lo: v, hi: v }
    }

    /// Uniform sample from the interval.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Full generator configuration (defaults = the paper's Sec. V-A values).
///
/// Per run, `d` and `τ` are drawn once; the four behavioural
/// probabilities are drawn once **per source**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of sources `n`.
    pub n: u32,
    /// Number of assertions `m`.
    pub m: u32,
    /// Dependency-tree count `τ` (clamped to `[1, n]` after sampling).
    pub tau: IntInterval,
    /// Ratio of true assertions `d`.
    pub d: Interval,
    /// Participation probability `p_on` per source.
    pub p_on: Interval,
    /// Probability a leaf's claim opportunity goes to the dependent
    /// candidate set, `p_dep`.
    pub p_dep: Interval,
    /// Probability an independent claim is about a true assertion,
    /// `p_indepT`.
    pub p_indep_t: Interval,
    /// Probability a dependent claim is about a true assertion, `p_depT`.
    pub p_dep_t: Interval,
    /// Claim opportunities per source (the paper does not fix this; we
    /// default to `m`, i.e. one potential claim per assertion slot).
    pub opportunities: u32,
}

impl GeneratorConfig {
    /// The paper's default parameterisation for the bound simulations:
    /// `n = 20`, `m = 50`, `p_on ∈ [0.5, 0.7]`, `τ ∈ [8, 10]`,
    /// `p_dep ∈ [0.4, 0.6]`, `d ∈ [0.55, 0.75]`,
    /// `p_indepT ∈ [7/12, 3/4]`, `p_depT ∈ [0.4, 0.6]`.
    pub fn paper_defaults() -> Self {
        Self {
            n: 20,
            m: 50,
            tau: IntInterval { lo: 8, hi: 10 },
            d: Interval { lo: 0.55, hi: 0.75 },
            p_on: Interval { lo: 0.5, hi: 0.7 },
            p_dep: Interval { lo: 0.4, hi: 0.6 },
            p_indep_t: Interval {
                lo: 7.0 / 12.0,
                hi: 3.0 / 4.0,
            },
            p_dep_t: Interval { lo: 0.4, hi: 0.6 },
            opportunities: 50,
        }
    }

    /// The estimator-simulation defaults (Sec. V-B): as
    /// [`paper_defaults`](Self::paper_defaults) but `n = 50`.
    pub fn estimator_defaults() -> Self {
        Self {
            n: 50,
            ..Self::paper_defaults()
        }
    }

    /// Validates interval sanity and probability ranges.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SynthError`].
    pub fn validate(&self) -> Result<(), SynthError> {
        if self.n == 0 || self.m == 0 {
            return Err(SynthError::EmptyShape {
                n: self.n,
                m: self.m,
            });
        }
        if self.opportunities == 0 {
            return Err(SynthError::NoOpportunities);
        }
        for (name, iv) in [
            ("d", &self.d),
            ("p_on", &self.p_on),
            ("p_dep", &self.p_dep),
            ("p_indep_t", &self.p_indep_t),
            ("p_dep_t", &self.p_dep_t),
        ] {
            if iv.lo > iv.hi || !iv.is_probability() {
                return Err(SynthError::BadProbabilityInterval {
                    name,
                    lo: iv.lo,
                    hi: iv.hi,
                });
            }
        }
        if self.tau.lo > self.tau.hi || self.tau.lo == 0 {
            return Err(SynthError::BadIntInterval {
                lo: self.tau.lo,
                hi: self.tau.hi,
            });
        }
        Ok(())
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Errors from configuring or running the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthError {
    /// `lo > hi` or non-finite endpoints.
    BadInterval {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// `lo > hi` (or zero lower bound for τ).
    BadIntInterval {
        /// Lower endpoint.
        lo: u32,
        /// Upper endpoint.
        hi: u32,
    },
    /// A probability interval escapes `[0, 1]`.
    BadProbabilityInterval {
        /// Parameter name.
        name: &'static str,
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// `n == 0` or `m == 0`.
    EmptyShape {
        /// Sources.
        n: u32,
        /// Assertions.
        m: u32,
    },
    /// `opportunities == 0` — no source could ever claim.
    NoOpportunities,
    /// A planted-copy-world constraint is violated.
    BadPlantedConfig {
        /// Which constraint was violated.
        what: &'static str,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::BadInterval { lo, hi } => write!(f, "invalid interval [{lo}, {hi}]"),
            SynthError::BadIntInterval { lo, hi } => {
                write!(f, "invalid integer interval [{lo}, {hi}]")
            }
            SynthError::BadProbabilityInterval { name, lo, hi } => {
                write!(f, "{name} interval [{lo}, {hi}] is not within [0, 1]")
            }
            SynthError::EmptyShape { n, m } => {
                write!(
                    f,
                    "need at least one source and assertion, got n={n}, m={m}"
                )
            }
            SynthError::NoOpportunities => write!(f, "opportunities must be positive"),
            SynthError::BadPlantedConfig { what } => {
                write!(f, "bad planted-world config: {what}")
            }
        }
    }
}

impl Error for SynthError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interval_sampling_stays_inside() {
        let iv = Interval::new(0.2, 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = iv.sample(&mut rng);
            assert!((0.2..=0.4).contains(&v));
        }
        assert_eq!(Interval::fixed(0.3).sample(&mut rng), 0.3);
        assert!((iv.mid() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn interval_rejects_inverted() {
        assert!(Interval::new(0.5, 0.4).is_err());
        assert!(Interval::new(f64::NAN, 0.4).is_err());
        assert!(IntInterval::new(5, 4).is_err());
    }

    #[test]
    fn paper_defaults_validate() {
        GeneratorConfig::paper_defaults().validate().unwrap();
        GeneratorConfig::estimator_defaults().validate().unwrap();
        assert_eq!(GeneratorConfig::estimator_defaults().n, 50);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = GeneratorConfig::paper_defaults();
        c.n = 0;
        assert!(matches!(c.validate(), Err(SynthError::EmptyShape { .. })));

        let mut c = GeneratorConfig::paper_defaults();
        c.p_on = Interval { lo: 0.5, hi: 1.5 };
        assert!(matches!(
            c.validate(),
            Err(SynthError::BadProbabilityInterval { name: "p_on", .. })
        ));

        let mut c = GeneratorConfig::paper_defaults();
        c.tau = IntInterval { lo: 0, hi: 3 };
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::paper_defaults();
        c.opportunities = 0;
        assert!(matches!(c.validate(), Err(SynthError::NoOpportunities)));
    }
}
