//! Planted copy worlds: synthetic claim logs with *known, recoverable*
//! dependency edges, used to measure (and CI-gate) dependency discovery.
//!
//! Unlike the Sec. V-A generator — whose globally sequential ticks carry
//! no per-pair timing signature — this world plants a genuine copy
//! process: each leaf re-asserts each of its root's claims with
//! probability `copy_prob` at a short per-claim lag, on a timeline where
//! all sources interleave. Copy-lag, co-occurrence, and error-correlation
//! signals are therefore all present, and the true edge set is exactly
//! the planted leaf→root pairs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use socsense_core::ClaimData;
use socsense_graph::{FollowerGraph, TimedClaim};

use crate::config::SynthError;

/// Configuration for a planted copy world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantedConfig {
    /// Independent root sources.
    pub roots: u32,
    /// Copying leaves per root; every leaf copies exactly one root.
    pub leaves_per_root: u32,
    /// Total assertions `m`.
    pub assertions: u32,
    /// Distinct assertions each root claims.
    pub claims_per_root: u32,
    /// Probability a leaf re-asserts any given root claim.
    pub copy_prob: f64,
    /// Copies land `1..=max_lag` ticks after the root's claim.
    pub max_lag: u64,
    /// Independent (noise) claims per leaf, drawn uniformly over all
    /// assertions and the whole timeline.
    pub noise_claims_per_leaf: u32,
    /// Fraction of assertions labelled true (for end-to-end runs).
    pub true_ratio: f64,
    /// Probability each root claim targets a true assertion. Makes root
    /// behaviour truth-correlated so end-to-end estimators have signal:
    /// leaf copies then inflate the apparent support of whatever their
    /// root said — which is exactly the distortion a recovered `D̂`
    /// should undo.
    pub root_reliability: f64,
    /// When set, roots claim disjoint assertion pools (requires
    /// `roots * claims_per_root <= assertions`); cross-root confounding
    /// vanishes and recovery should be exact at zero noise.
    pub disjoint_root_pools: bool,
}

impl PlantedConfig {
    /// The fixed world behind the `discover-edge-f1` CI gate: 64 sources
    /// (8 roots × 7 leaves + the roots), overlapping root pools, noisy
    /// leaves — recoverable but not trivial.
    pub fn default_world() -> Self {
        Self {
            roots: 8,
            leaves_per_root: 7,
            assertions: 600,
            claims_per_root: 40,
            copy_prob: 0.8,
            max_lag: 5,
            noise_claims_per_leaf: 10,
            true_ratio: 0.5,
            root_reliability: 0.75,
            disjoint_root_pools: false,
        }
    }

    /// Zero-noise copy chains with disjoint root pools — discovery must
    /// recover the planted edges *exactly* here (proptest-pinned).
    pub fn noiseless() -> Self {
        Self {
            copy_prob: 1.0,
            noise_claims_per_leaf: 0,
            disjoint_root_pools: true,
            ..Self::default_world()
        }
    }

    /// Total sources `n = roots * (1 + leaves_per_root)`.
    pub fn source_count(&self) -> u32 {
        self.roots * (1 + self.leaves_per_root)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::BadPlantedConfig`] naming the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SynthError> {
        if self.roots == 0 {
            return Err(SynthError::BadPlantedConfig {
                what: "roots must be at least 1",
            });
        }
        if self.assertions == 0 {
            return Err(SynthError::BadPlantedConfig {
                what: "assertions must be at least 1",
            });
        }
        if self.claims_per_root == 0 || self.claims_per_root > self.assertions {
            return Err(SynthError::BadPlantedConfig {
                what: "claims_per_root must lie in [1, assertions]",
            });
        }
        if !(0.0..=1.0).contains(&self.copy_prob) {
            return Err(SynthError::BadPlantedConfig {
                what: "copy_prob must lie in [0, 1]",
            });
        }
        if self.max_lag == 0 {
            return Err(SynthError::BadPlantedConfig {
                what: "max_lag must be at least 1 tick",
            });
        }
        if !(0.0..=1.0).contains(&self.true_ratio) {
            return Err(SynthError::BadPlantedConfig {
                what: "true_ratio must lie in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.root_reliability) {
            return Err(SynthError::BadPlantedConfig {
                what: "root_reliability must lie in [0, 1]",
            });
        }
        if self.disjoint_root_pools && self.roots * self.claims_per_root > self.assertions {
            return Err(SynthError::BadPlantedConfig {
                what: "disjoint pools need roots * claims_per_root <= assertions",
            });
        }
        Ok(())
    }
}

/// A generated planted copy world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedDataset {
    /// Sources (`roots * (1 + leaves_per_root)`; roots come first).
    pub n: u32,
    /// Assertions.
    pub m: u32,
    /// The timestamped claim log, sorted by `(time, source, assertion)`.
    pub claims: Vec<TimedClaim>,
    /// The planted truth: each leaf follows exactly its root.
    pub graph: FollowerGraph,
    /// Ground-truth assertion labels.
    pub truth: Vec<bool>,
}

impl PlantedDataset {
    /// Generates a planted world.
    ///
    /// Sources `0..roots` are roots; leaf `r * leaves_per_root + l`
    /// (offset by `roots`) copies root `r`. Root claims land at uniform
    /// ticks over an interleaved horizon; each copy lands `1..=max_lag`
    /// ticks after the copied claim.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::BadPlantedConfig`] when validation fails.
    pub fn generate(config: &PlantedConfig, seed: u64) -> Result<Self, SynthError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.source_count();
        let m = config.assertions;

        let mut truth = vec![false; m as usize];
        let m_true = ((config.true_ratio * m as f64).round() as u32).clamp(0, m);
        for t in truth.iter_mut().take(m_true as usize) {
            *t = true;
        }
        truth.shuffle(&mut rng);

        // Interleaved horizon: several ticks of slack per root claim so
        // distinct sources' activity periods overlap heavily.
        let horizon = (config.roots as u64 * config.claims_per_root as u64 * 8).max(16);

        // Root pools and claim times. Each pool draw targets a true
        // assertion with probability `root_reliability`, falling back to
        // the other stratum when the preferred one runs dry. Disjoint
        // mode pops from shared stratified lists (pools cannot collide);
        // overlapping mode reshuffles fresh per-root copies.
        let mut true_ids: Vec<u32> = (0..m).filter(|&a| truth[a as usize]).collect();
        let mut false_ids: Vec<u32> = (0..m).filter(|&a| !truth[a as usize]).collect();
        true_ids.shuffle(&mut rng);
        false_ids.shuffle(&mut rng);

        let mut root_claims: Vec<Vec<(u32, u64)>> = Vec::with_capacity(config.roots as usize);
        for _ in 0..config.roots {
            let (mut own_true, mut own_false);
            let (tlist, flist): (&mut Vec<u32>, &mut Vec<u32>) = if config.disjoint_root_pools {
                (&mut true_ids, &mut false_ids)
            } else {
                own_true = true_ids.clone();
                own_false = false_ids.clone();
                own_true.shuffle(&mut rng);
                own_false.shuffle(&mut rng);
                (&mut own_true, &mut own_false)
            };
            let mut pool = Vec::with_capacity(config.claims_per_root as usize);
            for _ in 0..config.claims_per_root {
                let a = if rng.gen_bool(config.root_reliability) {
                    tlist.pop().or_else(|| flist.pop())
                } else {
                    flist.pop().or_else(|| tlist.pop())
                };
                pool.push(a.expect("claims_per_root <= assertions"));
            }
            root_claims.push(
                pool.into_iter()
                    .map(|a| (a, rng.gen_range(0..horizon)))
                    .collect(),
            );
        }

        let mut claims: Vec<TimedClaim> = Vec::new();
        for (r, rc) in root_claims.iter().enumerate() {
            for &(a, t) in rc {
                claims.push(TimedClaim::new(r as u32, a, t));
            }
        }

        let mut graph = FollowerGraph::new(n);
        for r in 0..config.roots {
            for l in 0..config.leaves_per_root {
                let leaf = config.roots + r * config.leaves_per_root + l;
                graph.add_follow(leaf, r);
                for &(a, t) in &root_claims[r as usize] {
                    if rng.gen_bool(config.copy_prob) {
                        let lag = rng.gen_range(1..=config.max_lag);
                        claims.push(TimedClaim::new(leaf, a, t + lag));
                    }
                }
                for _ in 0..config.noise_claims_per_leaf {
                    let a = rng.gen_range(0..m);
                    let t = rng.gen_range(0..horizon + config.max_lag);
                    claims.push(TimedClaim::new(leaf, a, t));
                }
            }
        }
        claims.sort_unstable_by_key(|c| (c.time, c.source, c.assertion));

        Ok(Self {
            n,
            m,
            claims,
            graph,
            truth,
        })
    }

    /// The planted `(follower, followee)` edges.
    pub fn true_edges(&self) -> Vec<(u32, u32)> {
        self.graph.edges().collect()
    }

    /// `SC`/`D` built from the claim log and the *true* planted graph.
    pub fn claim_data(&self) -> ClaimData {
        ClaimData::from_claims(self.n, self.m, &self.claims, &self.graph)
    }
}
