//! Synthetic claim generation — the paper's Sec. V-A evaluation substrate.
//!
//! The generator produces "fictional events": `m` assertions split into a
//! true and a false pool (ratio `d`), sensed by `n` sources arranged in a
//! forest of `τ` two-level dependency trees. Each source is personalised
//! by four probabilities drawn from configured intervals:
//!
//! * `p_on` — participation: whether a claim opportunity is used;
//! * `p_dep` — for leaf sources, whether the claim repeats something the
//!   root already asserted (a *dependent* claim);
//! * `p_indepT` / `p_depT` — whether an independent / dependent claim
//!   lands in the true pool.
//!
//! Roots claim first, leaves afterwards, so the who-spoke-first rule of
//! `socsense-graph` reproduces the intended dependency labels exactly.
//!
//! Besides the dataset itself ([`SyntheticDataset`]), the crate maps
//! generator parameters to the model's `θ`: [`empirical_theta`] measures
//! it from the generated data and ground truth (what an oracle would
//! observe — used by the figure harnesses to feed the error bound), and
//! [`analytic_theta`] derives a closed-form approximation from the
//! configuration (documented assumptions in [`theta`]).
//!
//! # Example
//!
//! ```
//! use socsense_synth::{GeneratorConfig, SyntheticDataset};
//!
//! let config = GeneratorConfig::paper_defaults();
//! let ds = SyntheticDataset::generate(&config, 42)?;
//! assert_eq!(ds.data.source_count(), 20);
//! assert_eq!(ds.truth.len(), 50);
//! # Ok::<(), socsense_synth::SynthError>(())
//! ```

// detlint: contract = deterministic
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod generate;
pub mod planted;
pub mod theta;

pub use config::{GeneratorConfig, IntInterval, Interval, SynthError};
pub use generate::{SourceProfile, SyntheticDataset};
pub use planted::{PlantedConfig, PlantedDataset};
pub use theta::{analytic_theta, empirical_theta};
