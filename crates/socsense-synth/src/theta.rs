//! Mapping generator parameters to the model's `θ`.
//!
//! The error bound (Sec. III) is defined for the *true* `θ`. When data
//! comes from the Sec. V-A generator there are two ways to obtain it:
//!
//! * [`empirical_theta`] — measure each rate as a smoothed frequency
//!   against the generator's ground truth. This is what the figure
//!   harnesses use: it is exact up to sampling noise and makes no
//!   modelling assumption.
//! * [`analytic_theta`] — closed-form approximation from the drawn
//!   [`SourceProfile`](crate::SourceProfile)s, treating each of the `K`
//!   claim opportunities as
//!   an independent Bernoulli trial over a uniformly chosen pool member
//!   and replacing the root's random claim set by its expected distinct
//!   size. Documented here because the approximation degrades when pools
//!   are small or `K·p_on` approaches the pool size.

use socsense_core::{SourceParams, Theta};

use crate::generate::SyntheticDataset;

/// Laplace smoothing used by [`empirical_theta`].
const SMOOTHING: f64 = 0.5;

/// Frequency-estimates `θ` from a generated dataset and its ground truth.
///
/// For each source, every cell `(i, j)` is binned by `(D_ij, truth_j)`;
/// the four rates are the smoothed claim frequencies per bin and `z` is
/// the true-assertion share. Bins a source never visits (e.g. dependent
/// cells of a root) fall back to `0.5`, which is inert because the
/// likelihood never consults them.
pub fn empirical_theta(ds: &SyntheticDataset) -> Theta {
    let n = ds.source_count();
    let m = ds.assertion_count();
    let total_true = ds.truth.iter().filter(|&&t| t).count() as f64;
    let total_false = m as f64 - total_true;

    let mut sources = Vec::with_capacity(n);
    for i in 0..n as u32 {
        // Cells with D = 1, split by truth.
        let (mut dep_true_cells, mut dep_false_cells) = (0.0, 0.0);
        for &j in ds.data.d().row(i) {
            if ds.truth[j as usize] {
                dep_true_cells += 1.0;
            } else {
                dep_false_cells += 1.0;
            }
        }
        let indep_true_cells = total_true - dep_true_cells;
        let indep_false_cells = total_false - dep_false_cells;

        // Claims, split by (D, truth).
        let (mut ca, mut cb, mut cf, mut cg) = (0.0, 0.0, 0.0, 0.0);
        for &j in ds.data.sc().row(i) {
            let dep = ds.data.dependent(i, j);
            match (ds.truth[j as usize], dep) {
                (true, false) => ca += 1.0,
                (false, false) => cb += 1.0,
                (true, true) => cf += 1.0,
                (false, true) => cg += 1.0,
            }
        }

        let rate = |claims: f64, cells: f64| {
            if cells <= 0.0 {
                0.5
            } else {
                ((claims + SMOOTHING) / (cells + 2.0 * SMOOTHING)).clamp(0.0, 1.0)
            }
        };
        sources.push(
            SourceParams::new(
                rate(ca, indep_true_cells),
                rate(cb, indep_false_cells),
                rate(cf, dep_true_cells),
                rate(cg, dep_false_cells),
            )
            .expect("rates are clamped probabilities"),
        );
    }
    let z = (total_true / m as f64).clamp(0.0, 1.0);
    Theta::new(sources, z).expect("n >= 1 by construction")
}

/// Closed-form approximation of `θ` from the generator's drawn profiles.
///
/// Under the acceptance scheme (see
/// [`SyntheticDataset::generate`]), a specific candidate assertion is
/// claimed in one opportunity with probability
/// `p_on · P(branch) · acceptance / |candidates|`; over `K` independent
/// opportunities the claim rate is `1 - (1 - q)^K`. For a root,
/// `|candidates| = m` and acceptance is `p_indepT` (true) or
/// `1 - p_indepT` (false). Leaf rates split by `p_dep` and use the
/// root's **expected distinct claim count** as the dependent candidate
/// size — the one approximation here, exact only in expectation.
pub fn analytic_theta(ds: &SyntheticDataset, opportunities: u32) -> Theta {
    let m = ds.assertion_count() as f64;
    let m_true = (ds.truth_ratio() * m).max(1.0);
    let m_false = (m - m_true).max(1.0);
    let k = opportunities as f64;
    let hit = |q: f64| 1.0 - (1.0 - q.clamp(0.0, 1.0)).powf(k);

    let n = ds.source_count();
    let mut sources = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let prof = &ds.profiles[i as usize];
        let params = if ds.forest.is_root(i) {
            SourceParams {
                a: hit(prof.p_on * prof.p_indep_t / m),
                b: hit(prof.p_on * (1.0 - prof.p_indep_t) / m),
                f: 0.5,
                g: 0.5,
            }
        } else {
            let root = ds.forest.root_of(i);
            let rp = &ds.profiles[root as usize];
            // Expected distinct true/false assertions the root claims.
            let rt = m_true * hit(rp.p_on * rp.p_indep_t / m);
            let rf = m_false * hit(rp.p_on * (1.0 - rp.p_indep_t) / m);
            let r = (rt + rf).max(1e-9);
            let indep = (m - rt - rf).max(1e-9);
            SourceParams {
                a: hit(prof.p_on * (1.0 - prof.p_dep) * prof.p_indep_t / indep),
                b: hit(prof.p_on * (1.0 - prof.p_dep) * (1.0 - prof.p_indep_t) / indep),
                f: hit(prof.p_on * prof.p_dep * prof.p_dep_t / r),
                g: hit(prof.p_on * prof.p_dep * (1.0 - prof.p_dep_t) / r),
            }
        };
        sources.push(
            SourceParams::new(
                params.a.clamp(0.0, 1.0),
                params.b.clamp(0.0, 1.0),
                params.f.clamp(0.0, 1.0),
                params.g.clamp(0.0, 1.0),
            )
            .expect("clamped"),
        );
    }
    Theta::new(sources, ds.truth_ratio()).expect("n >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GeneratorConfig, IntInterval, Interval};
    use crate::generate::SyntheticDataset;

    fn big_run() -> SyntheticDataset {
        let mut cfg = GeneratorConfig::paper_defaults();
        cfg.m = 200;
        cfg.opportunities = 200;
        SyntheticDataset::generate(&cfg, 77).unwrap()
    }

    #[test]
    fn empirical_theta_is_valid_and_matches_z() {
        let ds = big_run();
        let theta = empirical_theta(&ds);
        assert_eq!(theta.source_count(), ds.source_count());
        assert!((theta.z() - ds.truth_ratio()).abs() < 1e-12);
        for s in theta.sources() {
            for v in [s.a, s.b, s.f, s.g] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn reliable_sources_show_a_above_b() {
        // p_indepT in the paper's default range exceeds 1/2, and the true
        // pool is larger than the false pool, partially offsetting; pin d
        // to 0.5 so a > b is clean.
        let mut cfg = GeneratorConfig::paper_defaults();
        cfg.d = Interval::fixed(0.5);
        cfg.p_indep_t = Interval::fixed(0.75);
        cfg.m = 100;
        cfg.opportunities = 100;
        let ds = SyntheticDataset::generate(&cfg, 8).unwrap();
        let theta = empirical_theta(&ds);
        let mut wins = 0;
        for &r in ds.forest.roots() {
            if theta.source(r as usize).a > theta.source(r as usize).b {
                wins += 1;
            }
        }
        assert!(
            wins * 10 >= ds.forest.roots().len() * 8,
            "only {wins}/{} roots had a > b",
            ds.forest.roots().len()
        );
    }

    #[test]
    fn analytic_tracks_empirical_for_roots() {
        let mut cfg = GeneratorConfig::paper_defaults();
        cfg.m = 100;
        cfg.opportunities = 100;
        cfg.tau = IntInterval::fixed(20); // all roots: cleanest regime
        let ds = SyntheticDataset::generate(&cfg, 31).unwrap();
        let emp = empirical_theta(&ds);
        let ana = analytic_theta(&ds, cfg.opportunities);
        let mut total_diff = 0.0;
        for i in 0..ds.source_count() {
            total_diff += (emp.source(i).a - ana.source(i).a).abs()
                + (emp.source(i).b - ana.source(i).b).abs();
        }
        let mean = total_diff / (2.0 * ds.source_count() as f64);
        assert!(mean < 0.1, "mean |emp - analytic| = {mean}");
    }

    #[test]
    fn unused_bins_fall_back_to_half() {
        // Roots never have dependent cells -> f = g = 0.5 exactly.
        let ds = big_run();
        let theta = empirical_theta(&ds);
        for &r in ds.forest.roots() {
            assert_eq!(theta.source(r as usize).f, 0.5);
            assert_eq!(theta.source(r as usize).g, 0.5);
        }
    }
}
