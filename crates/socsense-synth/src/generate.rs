//! The claim-generation procedure of Sec. V-A.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use socsense_core::ClaimData;
use socsense_graph::{DependencyForest, FollowerGraph, TimedClaim};

use crate::config::{GeneratorConfig, SynthError};

/// The per-source behavioural probabilities drawn from the configured
/// intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceProfile {
    /// Participation probability per opportunity.
    pub p_on: f64,
    /// Probability a leaf opportunity targets the dependent candidate set.
    pub p_dep: f64,
    /// `P(true pool | independent claim)`.
    pub p_indep_t: f64,
    /// `P(true pool | dependent claim)`.
    pub p_dep_t: f64,
}

/// One generated dataset: claims, matrices, ground truth, and the
/// structures that produced them.
///
/// Serialisable: persist a run with any serde format to replay an
/// experiment on the identical data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticDataset {
    /// The `SC`/`D` pair ready for any fact-finder.
    pub data: ClaimData,
    /// Ground truth per assertion (`true` = the assertion is true).
    pub truth: Vec<bool>,
    /// The raw timestamped claim log.
    pub claims: Vec<TimedClaim>,
    /// The dependency forest used.
    pub forest: DependencyForest,
    /// The induced follower graph (leaves follow their roots).
    pub graph: FollowerGraph,
    /// Per-source drawn probabilities.
    pub profiles: Vec<SourceProfile>,
    /// The τ drawn for this run.
    pub tau: u32,
    /// The true-assertion ratio drawn for this run.
    pub d: f64,
}

impl SyntheticDataset {
    /// Runs the Sec. V-A generator with the given seed.
    ///
    /// The procedure:
    /// 1. draw `d` and assign true/false labels to the `m` assertions;
    /// 2. draw `τ` and build a random forest of two-level trees;
    /// 3. draw one [`SourceProfile`] per source;
    /// 4. **roots** take `opportunities` rounds each: with probability
    ///    `p_on`, draw a uniform candidate assertion and *claim it* with
    ///    probability `p_indepT` if the candidate is true, `1 - p_indepT`
    ///    if false — so each root's per-assertion claim odds `a/b` equal
    ///    `p_indepT/(1 - p_indepT)` exactly;
    /// 5. **leaves** do the same afterwards, but each used opportunity
    ///    first picks the *dependent* candidate set (assertions its root
    ///    already claimed, acceptance `p_depT`) with probability `p_dep`,
    ///    else the independent remainder (acceptance `p_indepT`). An
    ///    empty candidate set skips the opportunity.
    ///
    /// Roots claim at earlier ticks than leaves, so dependency labels from
    /// [`socsense_graph::build_matrices`] match the generator's intent.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError`] when the configuration fails validation.
    pub fn generate(config: &GeneratorConfig, seed: u64) -> Result<Self, SynthError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.n;
        let m = config.m;

        // 1. Ground truth.
        let d = config.d.sample(&mut rng);
        let m_true = ((d * m as f64).round() as u32).clamp(0, m);
        let mut truth = vec![false; m as usize];
        for t in truth.iter_mut().take(m_true as usize) {
            *t = true;
        }
        truth.shuffle(&mut rng);

        // 2. Dependency structure.
        let tau = config.tau.sample(&mut rng).clamp(1, n);
        let forest = DependencyForest::random(n, tau, &mut rng).expect("tau clamped to [1, n]");
        let graph = forest.to_follower_graph();

        // 3. Profiles.
        let profiles: Vec<SourceProfile> = (0..n)
            .map(|_| SourceProfile {
                p_on: config.p_on.sample(&mut rng),
                p_dep: config.p_dep.sample(&mut rng),
                p_indep_t: config.p_indep_t.sample(&mut rng),
                p_dep_t: config.p_dep_t.sample(&mut rng),
            })
            .collect();

        // 4. Root phase. Each used opportunity draws a uniform candidate
        // assertion and *accepts* it with the truth-matched reliability
        // (`p_indepT` for true candidates, `1 - p_indepT` for false).
        // Acceptance — rather than "choose the pool first, then a member"
        // — keeps the per-assertion claim odds `a_i/b_i` equal to
        // `p_indepT/(1-p_indepT)` regardless of pool sizes, which is the
        // reading under which the paper's Figs. 5 and 10 knobs measure
        // discriminative power (see DESIGN.md §4).
        let mut claims: Vec<TimedClaim> = Vec::new();
        let mut tick: u64 = 0;
        let mut root_claimed: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        let all_assertions: Vec<u32> = (0..m).collect();
        for &root in forest.roots() {
            let prof = &profiles[root as usize];
            for _ in 0..config.opportunities {
                if !rng.gen_bool(prof.p_on) {
                    continue;
                }
                let &j = all_assertions.choose(&mut rng).expect("m >= 1");
                let accept = if truth[j as usize] {
                    prof.p_indep_t
                } else {
                    1.0 - prof.p_indep_t
                };
                if rng.gen_bool(accept) {
                    claims.push(TimedClaim::new(root, j, tick));
                    tick += 1;
                    root_claimed[root as usize].push(j);
                }
            }
            let rc = &mut root_claimed[root as usize];
            rc.sort_unstable();
            rc.dedup();
        }
        // 5. Leaf phase: same acceptance scheme, but each opportunity
        // first chooses between the dependent candidate set (assertions
        // the root already claimed, reliability `p_depT`) and the
        // independent remainder (reliability `p_indepT`).
        for leaf in forest.leaves() {
            let prof = &profiles[leaf as usize];
            let root = forest.root_of(leaf);
            let dep_candidates = &root_claimed[root as usize];
            let indep_candidates: Vec<u32> = (0..m)
                .filter(|j| dep_candidates.binary_search(j).is_err())
                .collect();
            for _ in 0..config.opportunities {
                if !rng.gen_bool(prof.p_on) {
                    continue;
                }
                let dependent = rng.gen_bool(prof.p_dep);
                let (candidates, p_true) = if dependent {
                    (dep_candidates, prof.p_dep_t)
                } else {
                    (&indep_candidates, prof.p_indep_t)
                };
                let Some(&j) = candidates.choose(&mut rng) else {
                    continue;
                };
                let accept = if truth[j as usize] {
                    p_true
                } else {
                    1.0 - p_true
                };
                if rng.gen_bool(accept) {
                    claims.push(TimedClaim::new(leaf, j, tick));
                    tick += 1;
                }
            }
        }

        let data = ClaimData::from_claims(n, m, &claims, &graph);
        Ok(Self {
            data,
            truth,
            claims,
            forest,
            graph,
            profiles,
            tau,
            d,
        })
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.data.source_count()
    }

    /// Number of assertions.
    pub fn assertion_count(&self) -> usize {
        self.data.assertion_count()
    }

    /// Fraction of assertions that are true.
    pub fn truth_ratio(&self) -> f64 {
        self.truth.iter().filter(|&&t| t).count() as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IntInterval, Interval};

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::paper_defaults();
        let a = SyntheticDataset::generate(&cfg, 5).unwrap();
        let b = SyntheticDataset::generate(&cfg, 5).unwrap();
        assert_eq!(a.claims, b.claims);
        assert_eq!(a.truth, b.truth);
        let c = SyntheticDataset::generate(&cfg, 6).unwrap();
        assert_ne!(a.claims, c.claims);
    }

    #[test]
    fn truth_ratio_tracks_d() {
        let mut cfg = GeneratorConfig::paper_defaults();
        cfg.d = Interval::fixed(0.6);
        cfg.m = 100;
        let ds = SyntheticDataset::generate(&cfg, 3).unwrap();
        assert!((ds.truth_ratio() - 0.6).abs() < 1e-9);
        assert!((ds.d - 0.6).abs() < 1e-12);
    }

    #[test]
    fn tau_controls_forest_width() {
        let mut cfg = GeneratorConfig::paper_defaults();
        cfg.tau = IntInterval::fixed(4);
        let ds = SyntheticDataset::generate(&cfg, 1).unwrap();
        assert_eq!(ds.tau, 4);
        assert_eq!(ds.forest.tree_count(), 4);
        assert_eq!(ds.graph.edge_count(), (cfg.n - 4) as usize);
    }

    #[test]
    fn root_claims_are_never_dependent() {
        let ds = SyntheticDataset::generate(&GeneratorConfig::paper_defaults(), 11).unwrap();
        for &root in ds.forest.roots() {
            for &j in ds.data.sc().row(root) {
                assert!(
                    !ds.data.dependent(root, j),
                    "root {root} claim on {j} flagged dependent"
                );
            }
        }
    }

    #[test]
    fn dependent_labels_match_root_claims() {
        let ds = SyntheticDataset::generate(&GeneratorConfig::paper_defaults(), 13).unwrap();
        for leaf in ds.forest.leaves() {
            let root = ds.forest.root_of(leaf);
            for &j in ds.data.sc().row(leaf) {
                let root_claimed = ds.data.claimed(root, j);
                if ds.data.dependent(leaf, j) {
                    assert!(root_claimed, "dependent claim without root claim");
                }
                // The converse (root claimed but leaf independent) is
                // impossible here because all root ticks precede leaf ticks.
                if root_claimed {
                    assert!(ds.data.dependent(leaf, j));
                }
            }
        }
    }

    #[test]
    fn p_on_scales_claim_volume() {
        let mut lo = GeneratorConfig::paper_defaults();
        lo.p_on = Interval::fixed(0.1);
        let mut hi = GeneratorConfig::paper_defaults();
        hi.p_on = Interval::fixed(0.9);
        let ds_lo = SyntheticDataset::generate(&lo, 21).unwrap();
        let ds_hi = SyntheticDataset::generate(&hi, 21).unwrap();
        assert!(
            ds_hi.claims.len() > 3 * ds_lo.claims.len(),
            "claims {} vs {}",
            ds_hi.claims.len(),
            ds_lo.claims.len()
        );
    }

    #[test]
    fn all_independent_when_tau_equals_n() {
        let mut cfg = GeneratorConfig::paper_defaults();
        cfg.tau = IntInterval::fixed(cfg.n);
        let ds = SyntheticDataset::generate(&cfg, 2).unwrap();
        assert_eq!(ds.data.d().nnz(), 0);
        assert_eq!(ds.data.dependent_claim_count(), 0);
    }

    #[test]
    fn reliable_sources_favor_true_assertions() {
        let mut cfg = GeneratorConfig::paper_defaults();
        cfg.p_indep_t = Interval::fixed(0.9);
        cfg.d = Interval::fixed(0.5);
        cfg.n = 10;
        cfg.tau = IntInterval::fixed(10); // all roots
        let ds = SyntheticDataset::generate(&cfg, 7).unwrap();
        let (mut on_true, mut on_false) = (0usize, 0usize);
        for c in &ds.claims {
            if ds.truth[c.assertion as usize] {
                on_true += 1;
            } else {
                on_false += 1;
            }
        }
        assert!(
            on_true as f64 > 3.0 * on_false as f64,
            "true {on_true} vs false {on_false}"
        );
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn dataset_round_trips_through_json() {
        let ds = SyntheticDataset::generate(&GeneratorConfig::paper_defaults(), 4).unwrap();
        let json = serde_json::to_string(&ds).unwrap();
        let back: SyntheticDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds.data, back.data, "data");
        assert_eq!(ds.truth, back.truth, "truth");
        assert_eq!(ds.claims, back.claims, "claims");
        assert_eq!(ds.forest, back.forest, "forest");
        assert_eq!(ds.graph, back.graph, "graph");
        assert_eq!(ds.tau, back.tau, "tau");
        assert_eq!(ds.d.to_bits(), back.d.to_bits(), "d");
        for (i, (a, b)) in ds.profiles.iter().zip(&back.profiles).enumerate() {
            assert_eq!(a, b, "profile {i}");
        }
    }
}
