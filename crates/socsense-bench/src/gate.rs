//! Performance-regression gates: declarative floors/ceilings over the
//! JSON the bench harnesses emit.
//!
//! CI's `perf-gate` job regenerates `BENCH_*.json` and then runs the
//! `perf_gate` binary, which reads `scripts/perf_gates.toml`, looks up
//! one number per gate in the emitted JSON, and fails the job when a
//! floor (`min`) or ceiling (`max`) is violated. Keeping the thresholds
//! in a checked-in file makes a regression a reviewable diff: loosening
//! a gate is a code change, not a CI-config tweak.
//!
//! The gate file is a small TOML subset parsed by hand (the container
//! carries no TOML crate): `[[gate]]` array-of-tables, string and
//! number values, full-line `#` comments.
//!
//! ```toml
//! [[gate]]
//! name = "ingest-index-speedup"
//! file = "BENCH_ingest.json"
//! path = "cluster_texts.single_core_speedup"
//! min = 1.5
//! ```

use serde_json::Value;

/// One threshold over one number in one emitted JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Human-readable gate id, unique within the file.
    pub name: String,
    /// JSON file the number lives in (relative to the results dir).
    pub file: String,
    /// Dot-separated object path to the number, e.g.
    /// `cluster_texts.single_core_speedup`.
    pub path: String,
    /// Inclusive floor: the value must be `>= min`.
    pub min: Option<f64>,
    /// Inclusive ceiling: the value must be `<= max`.
    pub max: Option<f64>,
}

/// The verdict for one gate against one measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// The gate that was checked.
    pub gate: Gate,
    /// The number found at [`Gate::path`].
    pub value: f64,
    /// Whether the value respects both bounds.
    pub pass: bool,
}

/// Parses the `[[gate]]` TOML subset described in the module docs.
///
/// # Errors
///
/// A human-readable message naming the offending line for anything
/// outside the subset: unknown keys, non-`[[gate]]` tables, bad
/// literals, or a gate missing `name`/`file`/`path` or both bounds.
pub fn parse_gates(text: &str) -> Result<Vec<Gate>, String> {
    let mut gates: Vec<Gate> = Vec::new();
    let mut open = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[gate]]" {
            gates.push(Gate {
                name: String::new(),
                file: String::new(),
                path: String::new(),
                min: None,
                max: None,
            });
            open = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: only [[gate]] tables are supported"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        if !open {
            return Err(format!("line {lineno}: key before the first [[gate]]"));
        }
        let gate = gates.last_mut().expect("open implies a gate exists");
        let (key, value) = (key.trim(), value.trim());
        match key {
            "name" | "file" | "path" => {
                let s = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: {key} takes a quoted string"))?;
                match key {
                    "name" => gate.name = s.to_string(),
                    "file" => gate.file = s.to_string(),
                    _ => gate.path = s.to_string(),
                }
            }
            "min" | "max" => {
                let n: f64 = value
                    .parse()
                    .map_err(|_| format!("line {lineno}: {key} takes a number"))?;
                if key == "min" {
                    gate.min = Some(n);
                } else {
                    gate.max = Some(n);
                }
            }
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    for gate in &gates {
        if gate.name.is_empty() || gate.file.is_empty() || gate.path.is_empty() {
            return Err(format!(
                "gate `{}` needs name, file, and path",
                if gate.name.is_empty() {
                    "?"
                } else {
                    &gate.name
                }
            ));
        }
        if gate.min.is_none() && gate.max.is_none() {
            return Err(format!("gate `{}` needs a min or a max", gate.name));
        }
    }
    Ok(gates)
}

/// Walks a dot-separated path into a JSON value; numeric segments index
/// arrays (`rows.0.tweets_per_sec`), everything else keys objects.
pub fn lookup<'v>(root: &'v Value, path: &str) -> Option<&'v Value> {
    let mut cur = root;
    for segment in path.split('.') {
        cur = match cur.as_array() {
            Some(items) => items.get(segment.parse::<usize>().ok()?)?,
            None => cur.as_object()?.get(segment)?,
        };
    }
    Some(cur)
}

/// Checks every gate, loading each referenced JSON file at most once
/// through `load` (file name → file contents).
///
/// # Errors
///
/// A message naming the gate for an unreadable/unparseable file or a
/// path that does not resolve to a number — a *missing* measurement is
/// a failure, not a silent pass.
pub fn evaluate(
    gates: &[Gate],
    mut load: impl FnMut(&str) -> Result<String, String>,
) -> Result<Vec<GateOutcome>, String> {
    let mut cache: Vec<(String, Value)> = Vec::new();
    let mut out = Vec::with_capacity(gates.len());
    for gate in gates {
        if !cache.iter().any(|(f, _)| f == &gate.file) {
            let text = load(&gate.file).map_err(|e| format!("gate `{}`: {e}", gate.name))?;
            let value: Value = serde_json::from_str(&text)
                .map_err(|e| format!("gate `{}`: parsing {}: {e}", gate.name, gate.file))?;
            cache.push((gate.file.clone(), value));
        }
        let root = &cache.iter().find(|(f, _)| f == &gate.file).unwrap().1;
        let value = lookup(root, &gate.path)
            .and_then(Value::as_f64)
            .ok_or_else(|| {
                format!(
                    "gate `{}`: no number at `{}` in {}",
                    gate.name, gate.path, gate.file
                )
            })?;
        let pass = gate.min.is_none_or(|m| value >= m) && gate.max.is_none_or(|m| value <= m);
        out.push(GateOutcome {
            gate: gate.clone(),
            value,
            pass,
        });
    }
    Ok(out)
}

/// One formatted report line per outcome, `PASS`/`FAIL` first.
pub fn render(outcomes: &[GateOutcome]) -> String {
    outcomes
        .iter()
        .map(|o| {
            let bounds = match (o.gate.min, o.gate.max) {
                (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
                (Some(lo), None) => format!(">= {lo}"),
                (None, Some(hi)) => format!("<= {hi}"),
                (None, None) => unreachable!("parse_gates requires a bound"),
            };
            format!(
                "{} {:<28} {}:{} = {:.6} (want {bounds})\n",
                if o.pass { "PASS" } else { "FAIL" },
                o.gate.name,
                o.gate.file,
                o.gate.path,
                o.value
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GATES: &str = r#"
# floors for CI
[[gate]]
name = "speedup"
file = "a.json"
path = "cluster.speedup"
min = 1.5

[[gate]]
name = "p99"
file = "b.json"
path = "latency.p99_secs"
max = 0.25
"#;

    fn load(file: &str) -> Result<String, String> {
        Ok(match file {
            "a.json" => r#"{"cluster": {"speedup": 2.0}}"#.into(),
            "b.json" => r#"{"latency": {"p99_secs": 0.1}}"#.into(),
            other => return Err(format!("no such file {other}")),
        })
    }

    #[test]
    fn parses_the_subset() {
        let gates = parse_gates(GATES).unwrap();
        assert_eq!(gates.len(), 2);
        assert_eq!(gates[0].name, "speedup");
        assert_eq!(gates[0].min, Some(1.5));
        assert_eq!(gates[1].max, Some(0.25));
    }

    #[test]
    fn rejects_out_of_subset_input() {
        assert!(parse_gates("[gate]\nname = \"x\"").is_err());
        assert!(parse_gates("name = \"orphan\"").is_err());
        assert!(parse_gates("[[gate]]\nname = \"x\"\nfile = \"f\"\npath = \"p\"").is_err());
        assert!(parse_gates("[[gate]]\nwat = 3").is_err());
        assert!(parse_gates("[[gate]]\nmin = \"nope\"").is_err());
    }

    #[test]
    fn passing_and_failing_gates() {
        let gates = parse_gates(GATES).unwrap();
        let outcomes = evaluate(&gates, load).unwrap();
        assert!(outcomes.iter().all(|o| o.pass));

        // Raise the floor above the measurement: the gate must fail.
        let mut raised = gates.clone();
        raised[0].min = Some(10.0);
        let outcomes = evaluate(&raised, load).unwrap();
        assert!(!outcomes[0].pass);
        assert!(outcomes[1].pass);
        let report = render(&outcomes);
        assert!(report.contains("FAIL speedup"), "{report}");
    }

    #[test]
    fn lookup_walks_objects_and_arrays() {
        let v: Value = serde_json::from_str(r#"{"rows": [{"x": 1.0}, {"x": 2.5}]}"#).unwrap();
        assert_eq!(lookup(&v, "rows.1.x").and_then(Value::as_f64), Some(2.5));
        assert_eq!(lookup(&v, "rows.7.x"), None);
        assert_eq!(lookup(&v, "rows.nope"), None);
    }

    #[test]
    fn missing_measurement_is_an_error_not_a_pass() {
        let mut gates = parse_gates(GATES).unwrap();
        gates[0].path = "cluster.gone".into();
        assert!(evaluate(&gates, load).is_err());
        gates[0].file = "missing.json".into();
        assert!(evaluate(&gates, load).is_err());
    }
}
