//! Delta-refit harness: full warm refits vs delta-scoped E-steps on the
//! streaming path.
//!
//! For each history size, a seeded claim stream is ingested into two
//! [`StreamingEstimator`]s — one in [`RefitMode::Full`], one in
//! [`RefitMode::Delta`] — both primed with one refit over the whole
//! history. The harness then ingests identical small batches into each
//! and times the per-batch refit with `median_timed`. Full mode re-runs
//! warm EM over the entire log every batch; delta mode re-evaluates only
//! the assertions the batch touched, so its latency should stay roughly
//! flat as the history grows while the full path scales linearly.
//! Writes `BENCH_delta.json` (repo root, or the path given as the first
//! argument); CI's perf-gate checks the 50k-history speedup floor and
//! that the measured window saw no fallback storm against
//! `scripts/perf_gates.toml`.
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_delta [OUT.json]
//! ```

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socsense_core::{DeltaConfig, EmConfig, Obs, RefitMode, RefitOutcome, StreamingEstimator};
use socsense_graph::{FollowerGraph, TimedClaim};

const N: u32 = 800;
const M: u32 = 8000;
const HISTORIES: [usize; 3] = [5_000, 15_000, 50_000];
const BATCH: usize = 8;
const REPS: usize = 5;
const SEED: u64 = 2016;

/// A reliable/unreliable two-camp claim stream, long enough to cover
/// the largest history plus every measured batch (and the warm-up one).
fn claim_stream(total: usize) -> Vec<TimedClaim> {
    let truth: Vec<bool> = (0..M).map(|j| j < M / 2).collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut t = 0u64;
    (0..total)
        .map(|_| {
            let s = rng.gen_range(0..N);
            let honest = s < (N * 3) / 4;
            let j = loop {
                let j = rng.gen_range(0..M);
                if truth[j as usize] == honest {
                    break j;
                }
            };
            t += 1;
            TimedClaim::new(s, j, t)
        })
        .collect()
}

/// A sparse follow relation so the dependency matrix is non-trivial.
fn graph() -> FollowerGraph {
    let mut g = FollowerGraph::new(N);
    for i in 1..N {
        if i % 7 == 0 {
            g.add_follow(i, i - 1);
        }
    }
    g
}

struct ModeRun {
    median_secs: f64,
    prime_iterations: usize,
    refits: Vec<RefitOutcome>,
    last_touched_assertions: usize,
    last_touched_sources: usize,
}

/// Primes one estimator over `prefix`, then times `REPS` batch refits
/// (plus one untimed warm-up batch, consumed by `median_timed`).
fn run_mode(
    obs: &Obs,
    timer_name: &str,
    mode: RefitMode,
    prefix: &[TimedClaim],
    measured: &[Vec<TimedClaim>],
) -> ModeRun {
    let mut est =
        StreamingEstimator::new(N, M, graph(), EmConfig::default()).expect("estimator spawns");
    est.set_refit_mode(mode).expect("valid refit mode");
    est.ingest(prefix).expect("prefix ingests");
    let (_, prime) = est.estimate_with_stats().expect("priming refit");
    let mut batches = measured.iter();
    let mut stats = Vec::new();
    let median_secs = socsense_obs::median_timed(obs, timer_name, REPS, || {
        let batch = batches.next().expect("enough measured batches");
        est.ingest(batch).expect("batch ingests");
        let (_, s) = est.estimate_with_stats().expect("batch refit");
        stats.push(s);
    });
    let last = stats.last().expect("at least one refit");
    ModeRun {
        median_secs,
        prime_iterations: prime.iterations,
        refits: stats.iter().map(|s| s.mode).collect(),
        last_touched_assertions: last.touched_assertions,
        last_touched_sources: last.touched_sources,
    }
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        socsense_bench::workspace_root()
            .join("BENCH_delta.json")
            .display()
            .to_string()
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (obs, rec) = Obs::recorder();

    let biggest = HISTORIES[HISTORIES.len() - 1];
    let stream = claim_stream(biggest + (REPS + 1) * BATCH);
    let mut rows = Vec::new();
    let mut delta_medians = Vec::new();
    for history in HISTORIES {
        let prefix = &stream[..history];
        // Both modes see the exact same post-history batches.
        let measured: Vec<Vec<TimedClaim>> = stream[history..history + (REPS + 1) * BATCH]
            .chunks(BATCH)
            .map(<[TimedClaim]>::to_vec)
            .collect();
        let full = run_mode(
            &obs,
            &format!("bench.delta.full.{history}.seconds"),
            RefitMode::Full,
            prefix,
            &measured,
        );
        let delta = run_mode(
            &obs,
            &format!("bench.delta.delta.{history}.seconds"),
            RefitMode::Delta(DeltaConfig::default()),
            prefix,
            &measured,
        );
        let fallbacks = delta
            .refits
            .iter()
            .filter(|&&m| m == RefitOutcome::Fallback)
            .count();
        let scoped = delta
            .refits
            .iter()
            .filter(|&&m| m == RefitOutcome::Delta)
            .count();
        let speedup = full.median_secs / delta.median_secs;
        eprintln!(
            "history {history}: full {:.6}s, delta {:.6}s ({speedup:.1}x, \
             {scoped} scoped / {fallbacks} fallback refits, touched {}/{})",
            full.median_secs,
            delta.median_secs,
            delta.last_touched_assertions,
            delta.last_touched_sources,
        );
        delta_medians.push(delta.median_secs);
        rows.push(serde_json::json!({
            "history_claims": history,
            "batch_claims": BATCH,
            "full_median_secs": full.median_secs,
            "delta_median_secs": delta.median_secs,
            "speedup": speedup,
            "delta_refits": scoped,
            "fallback_refits": fallbacks,
            "prime_iterations_full": full.prime_iterations,
            "prime_iterations_delta": delta.prime_iterations,
            "touched_assertions": delta.last_touched_assertions,
            "touched_sources": delta.last_touched_sources,
        }));
    }

    let delta_small = delta_medians[0];
    let delta_big = delta_medians[delta_medians.len() - 1];
    let mut payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": "single-process medians over identical seeded batches; \
                     delta and full modes serve bit-identical numbers at \
                     every fallback point (see DESIGN.md \u{00a7}10)",
        }),
        "workload": serde_json::json!({
            "sources": N,
            "assertions": M,
            "histories": HISTORIES,
            "claims_per_batch": BATCH,
            "timed_refits_per_row": REPS,
            "seed": SEED,
        }),
        "delta": serde_json::json!({
            "rows": rows,
            // History grows 10x between the first and last row; a
            // sub-linear delta path keeps this ratio well under 10.
            "scaling": serde_json::json!({
                "history_ratio": HISTORIES[HISTORIES.len() - 1] as f64 / HISTORIES[0] as f64,
                "delta_time_ratio": delta_big / delta_small,
            }),
        }),
        "metrics": rec.snapshot(),
    });
    // The comparison itself is single-core-honest (both sides run the
    // same default parallelism on the same host), but absolute
    // latencies from a starved runner are not representative.
    if cores < 4 {
        if let serde_json::Value::Object(map) = &mut payload {
            map.insert(
                "warning".into(),
                serde_json::json!(format!(
                    "LOW-CORE HOST ({cores} < 4 cores): absolute refit \
                     latencies are inflated by oversubscription; the \
                     full-vs-delta speedup ratio remains meaningful, but \
                     re-run on a >=4-core machine for representative \
                     numbers."
                )),
            );
        }
    }
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
