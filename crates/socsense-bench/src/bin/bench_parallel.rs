//! Regression harness for the deterministic parallel layer.
//!
//! Times the two hot paths — an EM-Ext fit and a Gibbs bound sweep — at
//! `Serial` vs 2/4/8 worker threads and writes the medians to
//! `BENCH_parallel.json` (repo root, or the path given as the first
//! argument). The JSON records the host's core count alongside the
//! timings because the expected scaling depends entirely on it: on a
//! single-core host the threaded rows pay queue/spawn overhead and a
//! speedup cannot materialise, while the numbers stay bit-identical by
//! the `socsense_matrix::parallel` contract. Timing runs through the
//! `socsense-obs` recorder (`bench.*` histograms), whose snapshot is
//! embedded in the JSON under `"metrics"` — the same schema every other
//! instrumented layer exports.
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_parallel [OUT.json]
//! ```

use std::process::ExitCode;

use socsense_bench::{bound_fixture, synth_fixture};
use socsense_core::{
    bound_for_assertions_with, BoundMethod, EmConfig, EmExt, GibbsConfig, Obs, Parallelism,
};
use socsense_obs::median_timed;

const LEVELS: [(&str, Parallelism); 4] = [
    ("serial", Parallelism::Serial),
    ("threads-2", Parallelism::Threads(2)),
    ("threads-4", Parallelism::Threads(4)),
    ("threads-8", Parallelism::Threads(8)),
];

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        socsense_bench::workspace_root()
            .join("BENCH_parallel.json")
            .display()
            .to_string()
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reps = 5;
    let (obs, rec) = Obs::recorder();

    // EM-Ext fit on a paper-defaults synthetic problem.
    let ds = synth_fixture(150, 11);
    let em_times: Vec<(&str, f64)> = LEVELS
        .iter()
        .map(|&(name, par)| {
            let em = EmExt::new(EmConfig {
                parallelism: par,
                ..EmConfig::default()
            });
            let secs = median_timed(
                &obs,
                &format!("bench.em_ext_fit.{name}.seconds"),
                reps,
                || {
                    em.fit(&ds.data).expect("fit succeeds");
                },
            );
            eprintln!("em-ext/{name}: {secs:.4}s");
            (name, secs)
        })
        .collect();

    // Gibbs bound sweep across every assertion of a smaller problem.
    let (data, theta) = bound_fixture(40, 7);
    let assertions: Vec<u32> = (0..data.assertion_count() as u32).collect();
    let method = BoundMethod::Gibbs(GibbsConfig {
        min_samples: 1000,
        max_samples: 4000,
        ..GibbsConfig::default()
    });
    let gibbs_times: Vec<(&str, f64)> = LEVELS
        .iter()
        .map(|&(name, par)| {
            let secs = median_timed(
                &obs,
                &format!("bench.gibbs_bound.{name}.seconds"),
                reps,
                || {
                    bound_for_assertions_with(&data, &theta, &method, &assertions, par)
                        .expect("bound succeeds");
                },
            );
            eprintln!("gibbs-bound/{name}: {secs:.4}s");
            (name, secs)
        })
        .collect();

    let rows = |times: &[(&str, f64)]| -> Vec<serde_json::Value> {
        times
            .iter()
            .map(|&(name, secs)| serde_json::json!({ "parallelism": name, "median_secs": secs }))
            .collect()
    };
    let serial_em = em_times[0].1;
    let serial_gibbs = gibbs_times[0].1;
    let mut payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": if cores < 4 {
                "host has fewer cores than the widest measured ladder rung: \
                 oversubscribed rows measure queue/spawn overhead, not \
                 speedup; results are bit-identical at every level"
            } else {
                "results are bit-identical at every level; only wall-clock varies"
            },
        }),
        "reps_per_row": reps,
        "em_ext_fit": serde_json::json!({
            "fixture": serde_json::json!({
                "sources": 150,
                "generator": "paper_defaults",
                "seed": 11,
            }),
            "serial_secs": serial_em,
            "rows": rows(&em_times),
        }),
        "gibbs_bound_sweep": serde_json::json!({
            "fixture": serde_json::json!({
                "sources": 40,
                "assertions": assertions.len(),
                "min_samples": 1000,
                "max_samples": 4000,
            }),
            "serial_secs": serial_gibbs,
            "rows": rows(&gibbs_times),
        }),
        "metrics": rec.snapshot(),
    });
    // The ladder tops out at 8 workers; below 4 cores even the mid rungs
    // oversubscribe, so flag the whole scaling curve as untrustworthy.
    if cores < 4 {
        if let serde_json::Value::Object(map) = &mut payload {
            map.insert(
                "warning".into(),
                serde_json::json!(format!(
                    "LOW-CORE HOST ({cores} < 4 cores): threaded rows measure \
                     queue/spawn overhead, not speedup — re-run on a >=4-core \
                     machine for the scaling curve."
                )),
            );
        }
    }
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
