//! Regression harness for the sharded, index-accelerated ingest stage.
//!
//! Runs three measurements on a synthetic ≥10k-tweet corpus and writes
//! the medians to `BENCH_ingest.json` (repo root, or the path given as
//! the first argument):
//!
//! 1. `cluster_texts` — the naive all-pairs scan vs the inverted-index
//!    fast path, recording wall-clock *and* the exact-Jaccard
//!    comparison counts before/after candidate pruning (the algorithmic
//!    win, visible even on one core);
//! 2. the fast path across the worker-count ladder (the sharding win,
//!    host-dependent);
//! 3. chunked JSONL parsing throughput in tweets/sec per worker count.
//!
//! Every row is bit-identical in output by the
//! `socsense_matrix::parallel` contract; the JSON carries a prominent
//! `warning` key when the host cannot demonstrate threaded speedups
//! (fewer than 4 cores). Timing runs through the `socsense-obs`
//! recorder (`bench.*` histograms), whose snapshot — including the
//! `ingest.cluster.*` / `ingest.parse.*` counters the traced stages
//! emit — is embedded in the JSON under `"metrics"`.
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_ingest [OUT.json]
//! ```

use std::process::ExitCode;

use socsense_apollo::{
    cluster_texts_naive, cluster_texts_traced, cluster_texts_with_stats, parse_tweets_jsonl_traced,
    ClusterConfig, IngestConfig,
};
use socsense_bench::{jsonl_corpus, tweet_corpus};
use socsense_core::Obs;
use socsense_matrix::Parallelism;
use socsense_obs::median_timed;

const CORPUS_SIZE: usize = 10_000;
const SEED: u64 = 42;

const LEVELS: [(&str, Parallelism); 4] = [
    ("serial", Parallelism::Serial),
    ("threads-2", Parallelism::Threads(2)),
    ("threads-4", Parallelism::Threads(4)),
    ("threads-8", Parallelism::Threads(8)),
];

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        socsense_bench::workspace_root()
            .join("BENCH_ingest.json")
            .display()
            .to_string()
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reps = 3;
    let cfg = ClusterConfig::default();
    let (obs, rec) = Obs::recorder();

    let texts = tweet_corpus(CORPUS_SIZE, SEED);

    // Naive all-pairs baseline (wall-clock + implied comparison count).
    let naive_secs = median_timed(&obs, "bench.cluster_naive.seconds", reps, || {
        cluster_texts_naive(&texts, &cfg);
    });
    let naive_clusters = cluster_texts_naive(&texts, &cfg);
    eprintln!("cluster-naive: {naive_secs:.4}s");

    // Indexed fast path, serial first (the algorithmic win), then the
    // worker ladder (the sharding win).
    let (indexed_clusters, stats) = cluster_texts_with_stats(&texts, &cfg, Parallelism::Serial);
    assert_eq!(
        naive_clusters, indexed_clusters,
        "fast path must be byte-identical to the naive oracle"
    );
    let cluster_times: Vec<(&str, f64)> = LEVELS
        .iter()
        .map(|&(name, par)| {
            let secs = median_timed(
                &obs,
                &format!("bench.cluster_indexed.{name}.seconds"),
                reps,
                || {
                    let (clustering, _) = cluster_texts_traced(&texts, &cfg, par, &obs);
                    assert_eq!(clustering, indexed_clusters, "levels must agree");
                },
            );
            eprintln!("cluster-indexed/{name}: {secs:.4}s");
            (name, secs)
        })
        .collect();
    let cluster_rows: Vec<serde_json::Value> = cluster_times
        .iter()
        .map(|&(name, secs)| serde_json::json!({ "parallelism": name, "median_secs": secs }))
        .collect();
    let indexed_serial_secs = cluster_times[0].1;
    let pruning_factor = stats.naive_comparisons as f64 / stats.jaccard_comparisons.max(1) as f64;

    // Chunked JSONL parsing throughput.
    let jsonl = jsonl_corpus(CORPUS_SIZE, SEED);
    let parse_rows: Vec<serde_json::Value> = LEVELS
        .iter()
        .map(|&(name, par)| {
            let ingest = IngestConfig { parallelism: par };
            let secs = median_timed(
                &obs,
                &format!("bench.parse_jsonl.{name}.seconds"),
                reps,
                || {
                    parse_tweets_jsonl_traced(&jsonl, &ingest, &obs).expect("fixture parses");
                },
            );
            let tweets_per_sec = CORPUS_SIZE as f64 / secs;
            eprintln!("parse-jsonl/{name}: {secs:.4}s ({tweets_per_sec:.0} tweets/s)");
            serde_json::json!({
                "parallelism": name,
                "median_secs": secs,
                "tweets_per_sec": tweets_per_sec,
            })
        })
        .collect();

    let mut payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": "clustering output and parse errors are bit-identical at every \
                     parallelism level; only wall-clock varies",
        }),
        "reps_per_row": reps,
        "corpus": serde_json::json!({
            "tweets": CORPUS_SIZE,
            "generator": "socsense_bench::tweet_corpus",
            "seed": SEED,
            "jaccard_threshold": cfg.jaccard_threshold,
            "max_token_df": cfg.max_token_df,
        }),
        "cluster_texts": serde_json::json!({
            "clusters": indexed_clusters.cluster_count,
            "naive_comparisons": stats.naive_comparisons,
            "candidate_pairs": stats.candidate_pairs,
            "jaccard_comparisons": stats.jaccard_comparisons,
            "comparison_pruning_factor": pruning_factor,
            "naive_serial_secs": naive_secs,
            "indexed_serial_secs": indexed_serial_secs,
            "single_core_speedup": naive_secs / indexed_serial_secs,
            "rows": cluster_rows,
        }),
        "parse_tweets_jsonl": serde_json::json!({
            "rows": parse_rows,
        }),
        "metrics": rec.snapshot(),
    });
    // The ladder tops out at 8 workers; below 4 cores even the mid rungs
    // oversubscribe, so flag the sharding curve as untrustworthy.
    if cores < 4 {
        if let serde_json::Value::Object(map) = &mut payload {
            map.insert(
                "warning".into(),
                serde_json::json!(format!(
                    "LOW-CORE HOST ({cores} < 4 cores): threaded rows measure \
                     queue/spawn overhead, not speedup — re-run on a >=4-core \
                     machine for the sharding curve. The single-core numbers that \
                     matter (naive vs indexed serial) are valid."
                )),
            );
        }
    }
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
