//! CI perf-regression gate: checks the numbers in freshly emitted
//! `BENCH_*.json` files against the floors/ceilings declared in
//! `scripts/perf_gates.toml`.
//!
//! ```text
//! cargo run --release -p socsense-bench --bin perf_gate -- \
//!     [GATES.toml] [RESULTS_DIR]
//! ```
//!
//! Defaults: `scripts/perf_gates.toml` and the workspace root (both
//! resolved via [`socsense_bench::workspace_root`], so invoking the
//! binary from a crate subdirectory checks the same files). Exits
//! non-zero when any gate fails *or* any gated measurement is missing —
//! a bench that silently stopped emitting a number must not pass.

use std::process::ExitCode;

use socsense_bench::gate::{evaluate, parse_gates, render};
use socsense_bench::workspace_root;

fn run() -> Result<bool, String> {
    let root = workspace_root();
    let mut args = std::env::args().skip(1);
    let gates_path = args
        .next()
        .unwrap_or_else(|| root.join("scripts/perf_gates.toml").display().to_string());
    let results_dir = args.next().unwrap_or_else(|| root.display().to_string());

    let text =
        std::fs::read_to_string(&gates_path).map_err(|e| format!("reading {gates_path}: {e}"))?;
    let gates = parse_gates(&text).map_err(|e| format!("{gates_path}: {e}"))?;
    if gates.is_empty() {
        return Err(format!("{gates_path}: no gates declared"));
    }
    let outcomes = evaluate(&gates, |file| {
        let path = format!("{results_dir}/{file}");
        std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))
    })?;
    print!("{}", render(&outcomes));
    let failed = outcomes.iter().filter(|o| !o.pass).count();
    if failed > 0 {
        eprintln!("{failed} of {} gates failed", outcomes.len());
    } else {
        eprintln!("all {} gates passed", outcomes.len());
    }
    Ok(failed == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
