//! WAL/durability harness: ingest overhead of the write-ahead log and
//! checkpoint cadence on the serving path, plus crash-recovery latency.
//!
//! Three [`QueryService`]s ingest the identical seeded batch stream:
//! one without persistence (the baseline), one logging with an `fsync`
//! per batch (`fsync_every = 1`, the ack-after-log default), and one
//! with batched syncs (`fsync_every = 8`). Per-batch ingest latency is
//! the `median_timed` median; the headline number is the
//! every-batch-fsync overhead ratio, which CI's perf-gate bounds. The
//! harness then kills the durable service and times a cold
//! recovery — snapshot restore plus WAL-tail replay — and verifies the
//! recovered worker still holds every claim.
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_wal [OUT.json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socsense_core::Obs;
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_serve::{PersistConfig, QueryService, ServeConfig};

const N: u32 = 400;
const M: u32 = 2000;
const BATCH: usize = 100;
const PRIME: usize = 10;
const REPS: usize = 9;
const SEED: u64 = 2016;

/// A reliable/unreliable two-camp claim stream split into batches.
fn claim_batches(count: usize) -> Vec<Vec<TimedClaim>> {
    let truth: Vec<bool> = (0..M).map(|j| j < M / 2).collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut t = 0u64;
    (0..count)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    let s = rng.gen_range(0..N);
                    let honest = s < (N * 3) / 4;
                    let j = loop {
                        let j = rng.gen_range(0..M);
                        if truth[j as usize] == honest {
                            break j;
                        }
                    };
                    t += 1;
                    TimedClaim::new(s, j, t)
                })
                .collect()
        })
        .collect()
}

/// A sparse follow relation so the dependency matrix is non-trivial.
fn graph() -> FollowerGraph {
    let mut g = FollowerGraph::new(N);
    for i in 1..N {
        if i % 7 == 0 {
            g.add_follow(i, i - 1);
        }
    }
    g
}

fn config(persist: Option<PersistConfig>) -> ServeConfig {
    ServeConfig {
        refit_pending_claims: 1,
        persist,
        ..ServeConfig::default()
    }
}

/// Ingests the identical stream into one service: `PRIME` untimed
/// warm-up batches, then `REPS` timed ones (plus `median_timed`'s own
/// warm-up). Returns the median per-batch ingest latency.
fn run_mode(
    obs: &Obs,
    timer_name: &str,
    persist: Option<PersistConfig>,
    batches: &[Vec<TimedClaim>],
) -> f64 {
    let svc = QueryService::spawn(N, M, graph(), config(persist)).expect("service spawns");
    let client = svc.handle();
    let (prime, measured) = batches.split_at(PRIME);
    for batch in prime {
        client.ingest(batch.clone()).expect("prime batch ingests");
    }
    let mut measured = measured.iter();
    let median = socsense_obs::median_timed(obs, timer_name, REPS, || {
        let batch = measured.next().expect("enough measured batches");
        client.ingest(batch.clone()).expect("batch ingests");
    });
    svc.shutdown().expect("clean shutdown");
    median
}

/// Times a cold recovery over `dir` (snapshot restore + WAL-tail
/// replay) and checks the recovered worker holds every ingested claim.
fn time_recovery(obs: &Obs, dir: &PathBuf, want_claims: usize) -> f64 {
    socsense_obs::median_timed(obs, "bench.wal.recovery.seconds", 3, || {
        let svc = QueryService::spawn(N, M, graph(), config(Some(PersistConfig::at(dir))))
            .expect("recovery spawns");
        let stats = svc.handle().stats().expect("recovered stats");
        assert_eq!(
            stats.total_claims, want_claims,
            "recovery lost or duplicated claims"
        );
        svc.shutdown().expect("clean shutdown");
    })
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        socsense_bench::workspace_root()
            .join("BENCH_wal.json")
            .display()
            .to_string()
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (obs, rec) = Obs::recorder();

    let batches = claim_batches(PRIME + REPS + 1);
    let total_claims = batches.len() * BATCH;
    let dir = std::env::temp_dir().join(format!("socsense-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let base = run_mode(&obs, "bench.wal.off.seconds", None, &batches);
    let every = run_mode(
        &obs,
        "bench.wal.fsync1.seconds",
        Some(PersistConfig {
            data_dir: dir.clone(),
            fsync_every: 1,
            snapshot_every: 8,
        }),
        &batches,
    );
    // The durable directory now holds the full stream; recovery below
    // replays it. The batched-fsync run uses its own directory so it
    // does not disturb that state.
    let batched_dir = dir.join("batched");
    let batched = run_mode(
        &obs,
        "bench.wal.fsync8.seconds",
        Some(PersistConfig {
            data_dir: batched_dir,
            fsync_every: 8,
            snapshot_every: 8,
        }),
        &batches,
    );

    let overhead = every / base;
    let overhead_batched = batched / base;
    let recovery_secs = time_recovery(&obs, &dir, total_claims);
    eprintln!(
        "ingest median: off {base:.6}s, fsync-every-batch {every:.6}s ({overhead:.2}x), \
         fsync-every-8 {batched:.6}s ({overhead_batched:.2}x); \
         cold recovery of {total_claims} claims: {recovery_secs:.6}s"
    );

    let mut payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": "single-process medians over identical seeded batches; \
                     durability is observation-equivalent — served numbers \
                     are bit-identical with the WAL on or off \
                     (see DESIGN.md \u{00a7}12)",
        }),
        "workload": serde_json::json!({
            "sources": N,
            "assertions": M,
            "claims_per_batch": BATCH,
            "prime_batches": PRIME,
            "timed_batches": REPS,
            "snapshot_every": 8,
            "seed": SEED,
        }),
        "wal": serde_json::json!({
            "off_median_secs": base,
            "fsync_every_batch_median_secs": every,
            "fsync_every_8_median_secs": batched,
            // The gated number: WAL + fsync-per-batch + checkpoint
            // cadence, as a multiple of the persistence-free ingest.
            "overhead_ratio": overhead,
            "overhead_ratio_batched": overhead_batched,
            "recovery_secs": recovery_secs,
            "recovered_claims": total_claims,
        }),
        "metrics": rec.snapshot(),
    });
    // The ratio is same-host/same-core honest, but absolute latencies
    // from a starved runner are not representative.
    if cores < 4 {
        if let serde_json::Value::Object(map) = &mut payload {
            map.insert(
                "warning".into(),
                serde_json::json!(format!(
                    "LOW-CORE HOST ({cores} < 4 cores): absolute ingest \
                     latencies are inflated by oversubscription; the \
                     WAL-overhead ratio remains meaningful, but re-run on \
                     a >=4-core machine for representative numbers."
                )),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
