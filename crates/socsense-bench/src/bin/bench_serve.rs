//! Latency harness for the `socsense-serve` query service — unsharded
//! and sharded.
//!
//! Spawns a [`QueryService`], replays a seeded claim stream in batches,
//! fires a fixed query mix (posterior / posteriors / top-sources /
//! stats), and reports per-request-type latency quantiles straight from
//! the service's own `serve.request.<type>.seconds` histograms — the
//! same numbers a live `Metrics` request returns. Then exercises the
//! sharded tier: a single-cluster workload pits `Shards(1)` against the
//! unsharded worker (the `sharded.shard_overhead_ratio` the perf-gate
//! floors), and a four-camp workload walks shard counts {1, 2, 4}.
//! Writes `BENCH_serve.json` (repo root, or the path given as the first
//! argument); CI's perf-gate checks the posterior p99 and the shard
//! overhead against `scripts/perf_gates.toml`.
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_serve [OUT.json]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_serve::{MetricsSnapshot, QueryService, ServeConfig, ServeStats, ShardedService};

const N: u32 = 30;
const M: u32 = 40;
const BATCHES: usize = 8;
const PER_BATCH: usize = 50;
const QUERY_ROUNDS: usize = 100;
const SEED: u64 = 2016;

/// Overhead-pair repetitions; each side keeps its best wall-clock so
/// the ratio compares steady-state work, not scheduler noise.
const OVERHEAD_REPS: usize = 7;

/// Query rounds in the overhead pair: enough to exercise the query
/// path, few enough that the ratio measures the ingest/refit path
/// rather than per-request channel round trips (which the latency
/// histograms already report per request type).
const OVERHEAD_QUERIES: usize = 25;

/// Overhead-pair world: big enough that each pass spends tens of
/// milliseconds in refits, so the wall-clock ratio is estimator-bound
/// (shared work) rather than scheduler noise.
const ON: u32 = 200;
const OM: u32 = 240;
const OBATCHES: usize = 24;
const OPER_BATCH: usize = 600;

/// Four-camp workload shape: `CAMPS` disjoint clusters over `SN`
/// sources and `SM` assertions.
const CAMPS: u32 = 4;
const SN: u32 = 32;
const SM: u32 = 40;

/// A reliable/unreliable two-camp claim stream (the construction the
/// serve tests use), seeded for reproducibility.
fn stream_batches() -> Vec<Vec<TimedClaim>> {
    let truth: Vec<bool> = (0..M).map(|j| j < M / 2).collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut t = 0u64;
    (0..BATCHES)
        .map(|_| {
            (0..PER_BATCH)
                .map(|_| {
                    let s = rng.gen_range(0..N);
                    let honest = s < (N * 3) / 4;
                    let j = loop {
                        let j = rng.gen_range(0..M);
                        if truth[j as usize] == honest {
                            break j;
                        }
                    };
                    t += 1;
                    TimedClaim::new(s, j, t)
                })
                .collect()
        })
        .collect()
}

/// A two-camp stream with a connecting bootstrap batch in front:
/// source 0 claims every assertion and every source claims once, so the
/// whole world is ONE cluster from the first batch on. On this workload
/// `Shards(1)` runs exactly the unsharded estimator (identity id remap)
/// plus routing overhead — which is what the overhead gate measures.
/// Sized (`ON`×`OM`, `OBATCHES`×`OPER_BATCH`) so estimator work — the
/// shared part — dominates the fixed per-request channel hops.
fn single_cluster_batches() -> Vec<Vec<TimedClaim>> {
    let truth: Vec<bool> = (0..OM).map(|j| j < OM / 2).collect();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x51C7);
    let mut t = 0u64;
    let mut bootstrap = Vec::new();
    for j in 0..OM {
        t += 1;
        bootstrap.push(TimedClaim::new(0, j, t));
    }
    for s in 1..ON {
        t += 1;
        bootstrap.push(TimedClaim::new(s, s % OM, t));
    }
    let mut batches = vec![bootstrap];
    for _ in 0..OBATCHES {
        batches.push(
            (0..OPER_BATCH)
                .map(|_| {
                    let s = rng.gen_range(0..ON);
                    let honest = s < (ON * 3) / 4;
                    let j = loop {
                        let j = rng.gen_range(0..OM);
                        if truth[j as usize] == honest {
                            break j;
                        }
                    };
                    t += 1;
                    TimedClaim::new(s, j, t)
                })
                .collect(),
        );
    }
    batches
}

/// Four disjoint camps (cluster c: sources `8c..8c+8`, assertions
/// `10c..10c+10`), each bootstrapped in batch one so membership is
/// pinned early and later batches are pure appends — the shape a
/// sharded deployment scales on.
fn four_camp_batches() -> Vec<Vec<TimedClaim>> {
    let spc = SN / CAMPS; // sources per camp
    let apc = SM / CAMPS; // assertions per camp
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xCA3F);
    let mut t = 0u64;
    let mut bootstrap = Vec::new();
    for c in 0..CAMPS {
        for j in 0..apc {
            t += 1;
            bootstrap.push(TimedClaim::new(c * spc, c * apc + j, t));
        }
        for s in 1..spc {
            t += 1;
            bootstrap.push(TimedClaim::new(c * spc + s, c * apc + s % apc, t));
        }
    }
    let mut batches = vec![bootstrap];
    for _ in 0..BATCHES {
        batches.push(
            (0..PER_BATCH)
                .map(|_| {
                    let c = rng.gen_range(0..CAMPS);
                    t += 1;
                    TimedClaim::new(
                        c * spc + rng.gen_range(0..spc),
                        c * apc + rng.gen_range(0..apc),
                        t,
                    )
                })
                .collect(),
        );
    }
    batches
}

/// One full workload pass: ingest every batch, fire the query mix,
/// snapshot metrics, shut down. Returns the wall-clock seconds of the
/// whole pass plus the service's own numbers and the final posterior
/// bits (for the cross-backend equality check).
struct PassResult {
    wall_secs: f64,
    metrics: MetricsSnapshot,
    stats: ServeStats,
    posterior_bits: Vec<u64>,
}

trait Client {
    fn ingest(&self, batch: Vec<TimedClaim>);
    fn posterior(&self, j: u32) -> f64;
    fn posteriors(&self) -> Vec<f64>;
    fn fanout(&self);
    fn metrics(&self) -> MetricsSnapshot;
}

struct Unsharded(socsense_serve::ServeHandle);
struct Sharded(socsense_serve::ShardedHandle);

impl Client for Unsharded {
    fn ingest(&self, batch: Vec<TimedClaim>) {
        self.0.ingest(batch).expect("ingest succeeds");
    }
    fn posterior(&self, j: u32) -> f64 {
        self.0.posterior(j).expect("posterior succeeds")
    }
    fn posteriors(&self) -> Vec<f64> {
        self.0.posteriors().expect("posteriors succeeds")
    }
    fn fanout(&self) {
        self.0.top_sources(5).expect("top-sources succeeds");
        self.0.stats().expect("stats succeeds");
    }
    fn metrics(&self) -> MetricsSnapshot {
        self.0.metrics().expect("metrics snapshot")
    }
}

impl Client for Sharded {
    fn ingest(&self, batch: Vec<TimedClaim>) {
        self.0.ingest(batch).expect("ingest succeeds");
    }
    fn posterior(&self, j: u32) -> f64 {
        self.0.posterior(j).expect("posterior succeeds")
    }
    fn posteriors(&self) -> Vec<f64> {
        self.0.posteriors().expect("posteriors succeeds")
    }
    fn fanout(&self) {
        self.0.top_sources(5).expect("top-sources succeeds");
        self.0.stats().expect("stats succeeds");
    }
    fn metrics(&self) -> MetricsSnapshot {
        self.0.metrics().expect("metrics snapshot")
    }
}

fn drive(
    client: &dyn Client,
    batches: &[Vec<TimedClaim>],
    m: u32,
    query_rounds: usize,
) -> (MetricsSnapshot, Vec<u64>) {
    for batch in batches {
        client.ingest(batch.clone());
    }
    for round in 0..query_rounds {
        client.posterior(round as u32 % m);
        if round % 10 == 0 {
            client.posteriors();
            client.fanout();
        }
    }
    let bits = client.posteriors().iter().map(|p| p.to_bits()).collect();
    (client.metrics(), bits)
}

/// Refit on every batch, to tight convergence: the heaviest-estimator
/// setting, which both overhead-pair sides share so the wall-clock
/// ratio reflects routing overhead on top of real refit work.
fn eager_config() -> ServeConfig {
    let mut cfg = ServeConfig {
        refit_pending_claims: 1,
        ..ServeConfig::default()
    };
    cfg.em.tol = 1e-10;
    cfg.em.max_iters = 200;
    cfg
}

// Clippy twin of detlint's D2: a bench binary's whole job is reading
// the wall clock; served numbers never depend on it.
#[allow(clippy::disallowed_methods)]
fn run_unsharded(
    n: u32,
    m: u32,
    config: ServeConfig,
    batches: &[Vec<TimedClaim>],
    query_rounds: usize,
) -> PassResult {
    let started = Instant::now();
    let svc = QueryService::spawn(n, m, FollowerGraph::new(n), config).expect("spawns");
    let (metrics, posterior_bits) = drive(&Unsharded(svc.handle()), batches, m, query_rounds);
    let stats = svc.shutdown().expect("clean shutdown");
    PassResult {
        wall_secs: started.elapsed().as_secs_f64(),
        metrics,
        stats,
        posterior_bits,
    }
}

// Clippy twin of detlint's D2 (see `run_unsharded`).
#[allow(clippy::disallowed_methods)]
fn run_sharded(
    n: u32,
    m: u32,
    config: ServeConfig,
    shards: usize,
    batches: &[Vec<TimedClaim>],
    query_rounds: usize,
) -> PassResult {
    let started = Instant::now();
    let svc = ShardedService::spawn(n, m, FollowerGraph::new(n), config, shards).expect("spawns");
    let (metrics, posterior_bits) = drive(&Sharded(svc.handle()), batches, m, query_rounds);
    let stats = svc.shutdown().expect("clean shutdown");
    PassResult {
        wall_secs: started.elapsed().as_secs_f64(),
        metrics,
        stats,
        posterior_bits,
    }
}

/// `{count, p50_secs, p99_secs, mean_secs}` for one request type, from
/// the service's own histogram.
fn latency_row(metrics: &MetricsSnapshot, request: &str) -> serde_json::Value {
    let h = metrics
        .histogram(&format!("serve.request.{request}.seconds"))
        .unwrap_or_else(|| panic!("the harness issued {request} requests"));
    serde_json::json!({
        "count": h.count,
        "p50_secs": h.quantile(0.5),
        "p99_secs": h.quantile(0.99),
        "mean_secs": h.mean(),
    })
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        socsense_bench::workspace_root()
            .join("BENCH_serve.json")
            .display()
            .to_string()
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- Unsharded baseline: the pre-sharding harness, unchanged. ----
    let base = run_unsharded(
        N,
        M,
        ServeConfig::default(),
        &stream_batches(),
        QUERY_ROUNDS,
    );
    let metrics = &base.metrics;
    let stats = &base.stats;

    // ---- Shard-overhead pair: single-cluster world, Shards(1) vs the
    // unsharded worker doing identical estimator work. Best-of-reps on
    // each side keeps the ratio a routing-overhead measure.
    let overhead_batches = single_cluster_batches();
    let mut unsharded_secs = f64::INFINITY;
    let mut sharded1_secs = f64::INFINITY;
    for _ in 0..OVERHEAD_REPS {
        let u = run_unsharded(ON, OM, eager_config(), &overhead_batches, OVERHEAD_QUERIES);
        let s = run_sharded(
            ON,
            OM,
            eager_config(),
            1,
            &overhead_batches,
            OVERHEAD_QUERIES,
        );
        if u.posterior_bits != s.posterior_bits {
            eprintln!(
                "error: Shards(1) diverged from the unsharded service on a single-cluster world"
            );
            return ExitCode::FAILURE;
        }
        unsharded_secs = unsharded_secs.min(u.wall_secs);
        sharded1_secs = sharded1_secs.min(s.wall_secs);
    }
    let shard_overhead_ratio = sharded1_secs / unsharded_secs;

    // ---- Shard-count rows: four-camp world at shards {1, 2, 4}. ----
    let camp_batches = four_camp_batches();
    let mut rows = Vec::new();
    let mut reference_bits: Option<Vec<u64>> = None;
    for shards in [1usize, 2, 4] {
        let pass = run_sharded(
            SN,
            SM,
            ServeConfig::default(),
            shards,
            &camp_batches,
            QUERY_ROUNDS,
        );
        match &reference_bits {
            None => reference_bits = Some(pass.posterior_bits.clone()),
            Some(want) => {
                if want != &pass.posterior_bits {
                    eprintln!("error: shard count {shards} changed served bits");
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut row = serde_json::json!({
            "shards": shards,
            "wall_secs": pass.wall_secs,
            "posterior": latency_row(&pass.metrics, "posterior"),
            "ingest": latency_row(&pass.metrics, "ingest"),
            "chain_refits": pass.stats.chain_refits,
        });
        if shards > 1 && cores < 4 {
            // Multi-shard wall-clock on a small host measures contention,
            // not scaling; flag the row so downstream tooling can skip it.
            if let serde_json::Value::Object(map) = &mut row {
                map.insert(
                    "warning".to_string(),
                    serde_json::json!(format!(
                        "only {cores} cores available; multi-shard timings are not a scaling signal"
                    )),
                );
            }
        }
        rows.push(row);
    }

    let payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": "latencies come from the service's own \
                     serve.request.<type>.seconds histograms; every served \
                     number is bit-identical with or without the recorder",
        }),
        "workload": serde_json::json!({
            "sources": N,
            "assertions": M,
            "batches": BATCHES,
            "claims_per_batch": PER_BATCH,
            "posterior_queries": QUERY_ROUNDS,
            "seed": SEED,
        }),
        "latency": serde_json::json!({
            "ingest": latency_row(metrics, "ingest"),
            "posterior": latency_row(metrics, "posterior"),
            "posteriors": latency_row(metrics, "posteriors"),
            "top_sources": latency_row(metrics, "top_sources"),
            "stats": latency_row(metrics, "stats"),
        }),
        "service": serde_json::json!({
            "requests_total": metrics.counter("serve.requests_total"),
            "chain_refits": metrics.counter("serve.refit.chain_total"),
            "warm_refits": metrics.counter("serve.refit.warm_total"),
            "probe_refits": metrics.counter("serve.refit.probe_total"),
            "probe_cache_hits": metrics.counter("serve.cache.probe_hits_total"),
            "failed_refits": metrics.counter("serve.refit.failed_total"),
            "claims_ingested": metrics.counter("stream.ingest.claims_total"),
            "requests_served": stats.requests_served,
        }),
        "sharded": serde_json::json!({
            "shard_overhead_ratio": shard_overhead_ratio,
            "overhead": serde_json::json!({
                "unsharded_secs": unsharded_secs,
                "sharded1_secs": sharded1_secs,
                "reps": OVERHEAD_REPS,
                "note": "single-cluster workload: Shards(1) runs the identical \
                         estimator trajectory, so the ratio isolates routing \
                         overhead",
            }),
            "workload": serde_json::json!({
                "camps": CAMPS,
                "sources": SN,
                "assertions": SM,
                "batches": BATCHES + 1,
                "claims_per_batch": PER_BATCH,
            }),
            "rows": rows,
        }),
        "metrics": metrics,
    });
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out_path} (posterior p50 {:.6}s, p99 {:.6}s over {} queries; \
         shard overhead x{shard_overhead_ratio:.3})",
        metrics
            .histogram("serve.request.posterior.seconds")
            .expect("posterior histogram")
            .quantile(0.5),
        metrics
            .histogram("serve.request.posterior.seconds")
            .expect("posterior histogram")
            .quantile(0.99),
        QUERY_ROUNDS,
    );
    ExitCode::SUCCESS
}
