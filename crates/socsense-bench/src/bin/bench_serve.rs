//! Latency harness for the `socsense-serve` query service.
//!
//! Spawns a [`QueryService`], replays a seeded claim stream in batches,
//! fires a fixed query mix (posterior / posteriors / top-sources /
//! stats), and reports per-request-type latency quantiles straight from
//! the service's own `serve.request.<type>.seconds` histograms — the
//! same numbers a live `Metrics` request returns. Writes
//! `BENCH_serve.json` (repo root, or the path given as the first
//! argument); CI's perf-gate checks the posterior p99 against
//! `scripts/perf_gates.toml`.
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_serve [OUT.json]
//! ```

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socsense_graph::{FollowerGraph, TimedClaim};
use socsense_serve::{MetricsSnapshot, QueryService, ServeConfig};

const N: u32 = 30;
const M: u32 = 40;
const BATCHES: usize = 8;
const PER_BATCH: usize = 50;
const QUERY_ROUNDS: usize = 100;
const SEED: u64 = 2016;

/// A reliable/unreliable two-camp claim stream (the construction the
/// serve tests use), seeded for reproducibility.
fn stream_batches() -> Vec<Vec<TimedClaim>> {
    let truth: Vec<bool> = (0..M).map(|j| j < M / 2).collect();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut t = 0u64;
    (0..BATCHES)
        .map(|_| {
            (0..PER_BATCH)
                .map(|_| {
                    let s = rng.gen_range(0..N);
                    let honest = s < (N * 3) / 4;
                    let j = loop {
                        let j = rng.gen_range(0..M);
                        if truth[j as usize] == honest {
                            break j;
                        }
                    };
                    t += 1;
                    TimedClaim::new(s, j, t)
                })
                .collect()
        })
        .collect()
}

/// `{count, p50_secs, p99_secs, mean_secs}` for one request type, from
/// the service's own histogram.
fn latency_row(metrics: &MetricsSnapshot, request: &str) -> serde_json::Value {
    let h = metrics
        .histogram(&format!("serve.request.{request}.seconds"))
        .unwrap_or_else(|| panic!("the harness issued {request} requests"));
    serde_json::json!({
        "count": h.count,
        "p50_secs": h.quantile(0.5),
        "p99_secs": h.quantile(0.99),
        "mean_secs": h.mean(),
    })
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        socsense_bench::workspace_root()
            .join("BENCH_serve.json")
            .display()
            .to_string()
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let svc = QueryService::spawn(N, M, FollowerGraph::new(N), ServeConfig::default())
        .expect("service spawns");
    let client = svc.handle();
    for batch in stream_batches() {
        client.ingest(batch).expect("ingest succeeds");
    }
    for round in 0..QUERY_ROUNDS {
        client
            .posterior(round as u32 % M)
            .expect("posterior succeeds");
        if round % 10 == 0 {
            client.posteriors().expect("posteriors succeeds");
            client.top_sources(5).expect("top-sources succeeds");
            client.stats().expect("stats succeeds");
        }
    }
    let metrics = client.metrics().expect("metrics snapshot");
    let stats = svc.shutdown().expect("clean shutdown");

    let payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": "latencies come from the service's own \
                     serve.request.<type>.seconds histograms; every served \
                     number is bit-identical with or without the recorder",
        }),
        "workload": serde_json::json!({
            "sources": N,
            "assertions": M,
            "batches": BATCHES,
            "claims_per_batch": PER_BATCH,
            "posterior_queries": QUERY_ROUNDS,
            "seed": SEED,
        }),
        "latency": serde_json::json!({
            "ingest": latency_row(&metrics, "ingest"),
            "posterior": latency_row(&metrics, "posterior"),
            "posteriors": latency_row(&metrics, "posteriors"),
            "top_sources": latency_row(&metrics, "top_sources"),
            "stats": latency_row(&metrics, "stats"),
        }),
        "service": serde_json::json!({
            "requests_total": metrics.counter("serve.requests_total"),
            "chain_refits": metrics.counter("serve.refit.chain_total"),
            "warm_refits": metrics.counter("serve.refit.warm_total"),
            "probe_refits": metrics.counter("serve.refit.probe_total"),
            "probe_cache_hits": metrics.counter("serve.cache.probe_hits_total"),
            "failed_refits": metrics.counter("serve.refit.failed_total"),
            "claims_ingested": metrics.counter("stream.ingest.claims_total"),
            "requests_served": stats.requests_served,
        }),
        "metrics": metrics,
    });
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out_path} (posterior p50 {:.6}s, p99 {:.6}s over {} queries)",
        metrics
            .histogram("serve.request.posterior.seconds")
            .expect("posterior histogram")
            .quantile(0.5),
        metrics
            .histogram("serve.request.posterior.seconds")
            .expect("posterior histogram")
            .quantile(0.99),
        QUERY_ROUNDS,
    );
    ExitCode::SUCCESS
}
