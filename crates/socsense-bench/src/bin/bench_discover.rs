//! Dependency-discovery harness: edge-recovery quality on the fixed
//! planted copy world behind the `discover-edge-f1` CI gate, plus
//! scoring throughput on a larger world.
//!
//! The quality half regenerates the planted default world at a fixed
//! seed, runs [`discover_dependencies`] at the default
//! [`DiscoverConfig`], and reports precision/recall/F1 against the
//! planted edges — the number the `discover-edge-f1` floor in
//! `scripts/perf_gates.toml` gates on. The throughput half times
//! discovery end-to-end (profile build, candidate enumeration, the
//! permutation-null scoring pass, and acceptance) on a ~20k-claim world
//! with `median_timed` and reports claims per second. Writes
//! `BENCH_discover.json` (repo root, or the path given as the first
//! argument).
//!
//! ```text
//! cargo run --release -p socsense-bench --bin bench_discover [OUT.json]
//! ```

use std::process::ExitCode;

use socsense_discover::{discover_dependencies, edge_quality, DiscoverConfig};
use socsense_obs::Obs;
use socsense_synth::{PlantedConfig, PlantedDataset};

const SEED: u64 = 2016;
const REPS: usize = 5;

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        socsense_bench::workspace_root()
            .join("BENCH_discover.json")
            .display()
            .to_string()
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (obs, rec) = Obs::recorder();
    let cfg = DiscoverConfig::default();

    // --- Quality: the CI gate's substrate ----------------------------
    let gate_world = PlantedConfig::default_world();
    let ds = PlantedDataset::generate(&gate_world, SEED).expect("planted config validates");
    let discovery = discover_dependencies(ds.n, ds.m, &ds.claims, &cfg).expect("discovery runs");
    let quality = edge_quality(discovery.edge_pairs(), ds.true_edges());
    eprintln!(
        "quality: {} planted edges, {} discovered, p={:.3} r={:.3} f1={:.3}",
        quality.true_edges,
        quality.discovered_edges,
        quality.precision,
        quality.recall,
        quality.f1()
    );

    // --- Throughput: a larger world ----------------------------------
    let big_world = PlantedConfig {
        roots: 24,
        assertions: 2000,
        ..PlantedConfig::default_world()
    };
    let big = PlantedDataset::generate(&big_world, SEED).expect("planted config validates");
    let mut last_edges = 0usize;
    let median_secs = socsense_obs::median_timed(&obs, "bench.discover.seconds", REPS, || {
        let d = discover_dependencies(big.n, big.m, &big.claims, &cfg).expect("discovery runs");
        last_edges = d.edges.len();
    });
    let claims_per_sec = big.claims.len() as f64 / median_secs;
    eprintln!(
        "throughput: {} claims, {} sources -> {} edges in {:.4}s median ({:.0} claims/s)",
        big.claims.len(),
        big.n,
        last_edges,
        median_secs,
        claims_per_sec
    );

    let mut payload = serde_json::json!({
        "host": serde_json::json!({
            "available_parallelism": cores,
            "note": "edge quality is seed-pinned and host-independent; \
                     throughput is a single-process median",
        }),
        "quality": serde_json::json!({
            "world": "planted default_world",
            "seed": SEED,
            "sources": ds.n,
            "assertions": ds.m,
            "claims": ds.claims.len(),
            "true_edges": quality.true_edges,
            "discovered_edges": quality.discovered_edges,
            "true_positives": quality.true_positives,
            "precision": quality.precision,
            "recall": quality.recall,
            "f1": quality.f1(),
        }),
        "throughput": serde_json::json!({
            "world": "planted 24-root world",
            "seed": SEED,
            "sources": big.n,
            "assertions": big.m,
            "claims": big.claims.len(),
            "edges": last_edges,
            "timed_runs": REPS,
            "median_secs": median_secs,
            "claims_per_sec": claims_per_sec,
        }),
        "metrics": rec.snapshot(),
    });
    // Quality is deterministic regardless of host; only the throughput
    // number degrades on a starved runner.
    if cores < 4 {
        if let serde_json::Value::Object(map) = &mut payload {
            map.insert(
                "warning".into(),
                serde_json::json!(format!(
                    "LOW-CORE HOST ({cores} < 4 cores): discovery \
                     throughput is inflated by oversubscription; the \
                     edge-quality numbers are seed-pinned and remain \
                     meaningful, but re-run on a >=4-core machine for \
                     representative claims/sec."
                )),
            );
        }
    }
    let json = serde_json::to_string_pretty(&payload).expect("serializes") + "\n";
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write results to {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
