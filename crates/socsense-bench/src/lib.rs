//! Criterion benchmarks for the `socsense` workspace.
//!
//! One bench target per concern:
//!
//! * `bound` — Fig. 6's subject: exact (pruned-exponential) vs Gibbs
//!   bound evaluation across source counts;
//! * `estimators` — EM-Ext / EM / EM-Social fit time across problem
//!   sizes, including a Twitter-scale matrix;
//! * `substrates` — generator, simulator, matrix-construction, and
//!   likelihood-kernel throughput;
//! * `pipeline` — tweet-text clustering and the end-to-end Apollo run;
//! * `ablations` — the design choices DESIGN.md calls out: M-step
//!   shrinkage, init strategy, Gibbs estimator variant, pruning on/off
//!   (via pathological vs typical inputs).
//!
//! The crate body hosts shared fixture builders so each bench file stays
//! declarative, plus [`gate`] — the declarative perf-regression floors
//! CI's `perf-gate` job enforces over the emitted `BENCH_*.json`.

// detlint: contract = tooling
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use std::path::PathBuf;

use socsense_core::{ClaimData, Theta};
use socsense_synth::{empirical_theta, GeneratorConfig, SyntheticDataset};
use socsense_twitter::{ScenarioConfig, TwitterDataset};

/// Absolute path of the workspace root, shared by every tool that
/// resolves repo-relative paths: the `perf_gate` checker (gates file +
/// default results dir), the bench bins (default `BENCH_*.json`
/// destinations), and `detlint --workspace` (the scan set). Factoring
/// one helper keeps them in agreement when invoked from a crate
/// subdirectory instead of the root.
///
/// Resolution order:
///
/// 1. the nearest ancestor of the current directory whose `Cargo.toml`
///    declares `[workspace]` — so running a tool from
///    `crates/socsense-core/` finds the same root as running it from
///    the checkout top;
/// 2. otherwise the workspace this crate was compiled from
///    (`CARGO_MANIFEST_DIR/../..`), which covers invocations from
///    outside any checkout (e.g. an absolute-path binary run from `/`).
pub fn workspace_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return dir.to_path_buf();
                }
            }
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate manifest dir has a workspace two levels up")
        .to_path_buf()
}

/// A paper-defaults synthetic dataset with `n` sources (seeded).
pub fn synth_fixture(n: u32, seed: u64) -> SyntheticDataset {
    let cfg = GeneratorConfig {
        n,
        ..GeneratorConfig::paper_defaults()
    };
    SyntheticDataset::generate(&cfg, seed).expect("paper defaults validate")
}

/// `(data, θ)` for bound benchmarks: the measured θ of a synthetic run.
pub fn bound_fixture(n: u32, seed: u64) -> (ClaimData, Theta) {
    let ds = synth_fixture(n, seed);
    let theta = empirical_theta(&ds);
    (ds.data, theta)
}

/// A scaled Ukraine campaign for Twitter-shaped benchmarks.
pub fn twitter_fixture(scale: f64, seed: u64) -> TwitterDataset {
    TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(scale), seed)
        .expect("preset validates")
}

/// A synthetic tweet-text corpus shaped like the Apollo ingest input:
/// `n` tweets over `n/12` assertions, each assertion a 6–9-token
/// template emitting near-duplicate variants (token dropout, inserted
/// noise, `RT` prefixes) plus an everywhere hashtag that candidate
/// generation must learn to ignore. Deterministic in `(n, seed)`.
pub fn tweet_corpus(n: usize, seed: u64) -> Vec<String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let assertions = (n / 12).max(1);
    let vocab: Vec<String> = (0..600).map(|i| format!("w{i:03}")).collect();
    let templates: Vec<Vec<String>> = (0..assertions)
        .map(|a| {
            let len = rng.gen_range(6..10);
            let mut t: Vec<String> = (0..len)
                .map(|_| vocab[rng.gen_range(0..vocab.len())].clone())
                .collect();
            // A unique entity token anchors within-assertion similarity.
            t.push(format!("e{a:05}"));
            t
        })
        .collect();
    (0..n)
        .map(|_| {
            let template = &templates[rng.gen_range(0..assertions)];
            let mut tokens: Vec<String> = template.clone();
            if tokens.len() > 4 && rng.gen_bool(0.3) {
                let drop = rng.gen_range(0..tokens.len());
                tokens.remove(drop);
            }
            if rng.gen_bool(0.2) {
                tokens.push(vocab[rng.gen_range(0..vocab.len())].clone());
            }
            if rng.gen_bool(0.25) {
                tokens.insert(0, "RT".to_string());
            }
            tokens.push("#ev".to_string());
            tokens.join(" ")
        })
        .collect()
}

/// `tweet_corpus` rendered as the JSON-Lines dump `parse_tweets_jsonl`
/// consumes (one tweet object per line, users cycling over `n/10`
/// handles).
pub fn jsonl_corpus(n: usize, seed: u64) -> String {
    let users = (n / 10).max(1);
    tweet_corpus(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, text)| {
            let value = serde_json::json!({
                "id": i as u64,
                "user": format!("u{:05}", i % users),
                "time": i as u64,
                "text": text,
            });
            serde_json::to_string(&value).expect("fixture serializes") + "\n"
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_agrees_from_subdirectories() {
        // The test process runs somewhere inside the checkout, so the
        // ancestor walk must find the directory that declares the
        // workspace and contains this crate.
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "{root:?}");
        assert!(
            root.join("crates/socsense-bench/Cargo.toml").exists(),
            "{root:?} is not the workspace root"
        );
    }

    #[test]
    fn fixtures_build() {
        let ds = synth_fixture(10, 1);
        assert_eq!(ds.source_count(), 10);
        let (data, theta) = bound_fixture(8, 2);
        assert_eq!(data.source_count(), theta.source_count());
        let tw = twitter_fixture(0.01, 3);
        assert!(!tw.tweets.is_empty());
    }

    #[test]
    fn tweet_corpus_is_deterministic_and_parses() {
        let a = tweet_corpus(120, 7);
        assert_eq!(a.len(), 120);
        assert_eq!(a, tweet_corpus(120, 7));
        let jsonl = jsonl_corpus(120, 7);
        let parsed = socsense_apollo::parse_tweets_jsonl(&jsonl).expect("fixture parses");
        assert_eq!(parsed.len(), 120);
        assert_eq!(parsed[5].text, a[5]);
    }
}
