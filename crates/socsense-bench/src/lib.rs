//! Criterion benchmarks for the `socsense` workspace.
//!
//! One bench target per concern:
//!
//! * `bound` — Fig. 6's subject: exact (pruned-exponential) vs Gibbs
//!   bound evaluation across source counts;
//! * `estimators` — EM-Ext / EM / EM-Social fit time across problem
//!   sizes, including a Twitter-scale matrix;
//! * `substrates` — generator, simulator, matrix-construction, and
//!   likelihood-kernel throughput;
//! * `pipeline` — tweet-text clustering and the end-to-end Apollo run;
//! * `ablations` — the design choices DESIGN.md calls out: M-step
//!   shrinkage, init strategy, Gibbs estimator variant, pruning on/off
//!   (via pathological vs typical inputs).
//!
//! The crate body hosts shared fixture builders so each bench file stays
//! declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use socsense_core::{ClaimData, Theta};
use socsense_synth::{empirical_theta, GeneratorConfig, SyntheticDataset};
use socsense_twitter::{ScenarioConfig, TwitterDataset};

/// A paper-defaults synthetic dataset with `n` sources (seeded).
pub fn synth_fixture(n: u32, seed: u64) -> SyntheticDataset {
    let cfg = GeneratorConfig {
        n,
        ..GeneratorConfig::paper_defaults()
    };
    SyntheticDataset::generate(&cfg, seed).expect("paper defaults validate")
}

/// `(data, θ)` for bound benchmarks: the measured θ of a synthetic run.
pub fn bound_fixture(n: u32, seed: u64) -> (ClaimData, Theta) {
    let ds = synth_fixture(n, seed);
    let theta = empirical_theta(&ds);
    (ds.data, theta)
}

/// A scaled Ukraine campaign for Twitter-shaped benchmarks.
pub fn twitter_fixture(scale: f64, seed: u64) -> TwitterDataset {
    TwitterDataset::simulate(&ScenarioConfig::ukraine().scaled(scale), seed)
        .expect("preset validates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let ds = synth_fixture(10, 1);
        assert_eq!(ds.source_count(), 10);
        let (data, theta) = bound_fixture(8, 2);
        assert_eq!(data.source_count(), theta.source_count());
        let tw = twitter_fixture(0.01, 3);
        assert!(!tw.tweets.is_empty());
    }
}
