//! Fit-time scaling of the three EM variants, from the paper's synthetic
//! sizes up to a Twitter-scale sparse matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use socsense_baselines::{EmExtFinder, EmIndependent, EmSocial, FactFinder};
use socsense_bench::{synth_fixture, twitter_fixture};

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let finders: [(&str, Box<dyn FactFinder>); 3] = [
        ("em-ext", Box::new(EmExtFinder::default())),
        ("em", Box::new(EmIndependent::default())),
        ("em-social", Box::new(EmSocial::default())),
    ];

    for n in [50u32, 100, 200] {
        let ds = synth_fixture(n, 11);
        for (name, finder) in &finders {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("synth-n{n}")),
                &n,
                |b, _| b.iter(|| finder.scores(&ds.data).expect("fit succeeds")),
            );
        }
    }

    // Twitter-shaped sparsity: thousands of sources, ~1 claim each.
    let tw = twitter_fixture(0.1, 5);
    let data = tw.claim_data();
    for (name, finder) in &finders {
        group.bench_with_input(
            BenchmarkId::new(
                *name,
                format!("twitter-{}x{}", data.source_count(), data.assertion_count()),
            ),
            &0,
            |b, _| b.iter(|| finder.scores(&data).expect("fit succeeds")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
