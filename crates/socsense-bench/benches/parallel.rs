//! Worker-count scaling of the deterministic parallel layer: EM-Ext fits
//! and Gibbs bound sweeps at `Serial` vs 2/4/8 threads.
//!
//! Every configuration computes bit-identical numbers (that is the
//! `socsense_matrix::parallel` contract, enforced by proptests in
//! `socsense-core`), so these benchmarks measure pure wall-clock scaling.
//! On a single-core host the threaded rows cost slightly *more* than
//! serial (queue + spawn overhead) — see `BENCH_parallel.json` for the
//! recorded environment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use socsense_bench::{bound_fixture, synth_fixture};
use socsense_core::{
    bound_for_assertions_with, BoundMethod, EmConfig, EmExt, GibbsConfig, Parallelism,
};

/// The ladder every group sweeps: the serial baseline plus 2/4/8 workers.
const LEVELS: [(&str, Parallelism); 4] = [
    ("serial", Parallelism::Serial),
    ("t2", Parallelism::Threads(2)),
    ("t4", Parallelism::Threads(4)),
    ("t8", Parallelism::Threads(8)),
];

fn bench_em_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel-em");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for n in [100u32, 200] {
        let ds = synth_fixture(n, 11);
        for (name, par) in LEVELS {
            let em = EmExt::new(EmConfig {
                parallelism: par,
                ..EmConfig::default()
            });
            group.bench_with_input(BenchmarkId::new(name, format!("synth-n{n}")), &n, |b, _| {
                b.iter(|| em.fit(&ds.data).expect("fit succeeds"))
            });
        }
    }
    group.finish();
}

fn bench_gibbs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel-gibbs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let (data, theta) = bound_fixture(40, 7);
    let assertions: Vec<u32> = (0..data.assertion_count() as u32).collect();
    let method = BoundMethod::Gibbs(GibbsConfig {
        min_samples: 1000,
        max_samples: 4000,
        ..GibbsConfig::default()
    });
    for (name, par) in LEVELS {
        group.bench_with_input(
            BenchmarkId::new(name, format!("assertions-{}", assertions.len())),
            &0,
            |b, _| {
                b.iter(|| {
                    bound_for_assertions_with(&data, &theta, &method, &assertions, par)
                        .expect("bound succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_em_parallel, bench_gibbs_parallel);
criterion_main!(benches);
