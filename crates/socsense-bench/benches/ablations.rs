//! Ablation benches for the design choices DESIGN.md calls out. These
//! measure *time*; their accuracy counterparts live in the `repro`
//! harness and the integration tests. Together they answer "what does
//! each choice cost, and what does it buy".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use socsense_bench::{bound_fixture, synth_fixture};
use socsense_core::{
    bound_for_assertions, BoundMethod, EmConfig, EmExt, GibbsConfig, GibbsEstimator, InitStrategy,
};

/// M-step shrinkage: the paper-exact update (`s = 0`) vs the hierarchical
/// default (`s = 2`). The cost is one extra accumulation pass.
fn bench_smoothing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-smoothing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let ds = synth_fixture(100, 21);
    for s in [0.0f64, 2.0, 10.0] {
        let em = EmExt::new(EmConfig {
            smoothing: s,
            ..EmConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("fit", format!("s{s}")), &s, |b, _| {
            b.iter(|| em.fit(&ds.data).expect("fit succeeds"))
        });
    }
    group.finish();
}

/// Init strategy: `Auto` runs two deterministic EMs and keeps the better
/// likelihood — nominally 2× the work of a single init.
fn bench_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-init");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let ds = synth_fixture(100, 22);
    for (name, init) in [
        ("auto", InitStrategy::Auto),
        ("claim-rate", InitStrategy::ClaimRateBiased),
        ("dep-biased", InitStrategy::DepBiased),
        ("random", InitStrategy::Random { seed: 4 }),
    ] {
        let em = EmExt::new(EmConfig {
            init,
            ..EmConfig::default()
        });
        group.bench_function(BenchmarkId::new("fit", name), |b| {
            b.iter(|| em.fit(&ds.data).expect("fit succeeds"))
        });
    }
    group.finish();
}

/// Gibbs estimator variants: the consistent self-normalised average vs
/// the paper's literal Eq. 6 ratio. Same chain, different accumulators.
fn bench_gibbs_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-gibbs-estimator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let (data, theta) = bound_fixture(20, 23);
    let cols: Vec<u32> = (0..8).collect();
    for (name, estimator) in [
        ("self-normalized", GibbsEstimator::SelfNormalized),
        ("paper-ratio", GibbsEstimator::PaperRatio),
    ] {
        let method = BoundMethod::Gibbs(GibbsConfig {
            estimator,
            min_samples: 400,
            max_samples: 800,
            seed: 5,
            ..GibbsConfig::default()
        });
        group.bench_function(BenchmarkId::new("bound", name), |b| {
            b.iter(|| bound_for_assertions(&data, &theta, &method, &cols).expect("runs"))
        });
    }
    group.finish();
}

/// Decision pruning in the exact bound: informative sources let whole
/// subtrees resolve early; near-uninformative sources defeat the bounds
/// and force the full 2^n walk. Comparing the two inputs at equal n shows
/// what pruning buys on typical data.
fn bench_exact_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-exact-pruning");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let n = 22usize;
    let informative: Vec<(f64, f64)> = (0..n)
        .map(|i| (0.7 + 0.01 * (i % 5) as f64, 0.2 + 0.01 * (i % 7) as f64))
        .collect();
    let adversarial: Vec<(f64, f64)> = (0..n)
        .map(|i| (0.501 + 1e-4 * (i % 5) as f64, 0.499 - 1e-4 * (i % 7) as f64))
        .collect();
    group.bench_function("informative-sources", |b| {
        b.iter(|| socsense_core::exact_bound(&informative, 0.5).expect("in range"))
    });
    group.bench_function("near-uninformative-sources", |b| {
        b.iter(|| socsense_core::exact_bound(&adversarial, 0.5).expect("in range"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_smoothing,
    bench_init,
    bench_gibbs_estimator,
    bench_exact_pruning
);
criterion_main!(benches);
