//! Fig. 6's subject as a Criterion benchmark: time to evaluate the mean
//! per-assertion Bayes-risk bound, exact vs Gibbs, across source counts.
//! The exact walk is exponential (pruning delays the blow-up by roughly
//! 10 sources on informative inputs); Gibbs is linear per sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use socsense_bench::bound_fixture;
use socsense_core::{bound_for_assertions, BoundMethod, GibbsConfig};

fn bench_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // A fixed subset of assertions keeps runtimes comparable across n.
    let cols: Vec<u32> = (0..8).collect();
    for n in [5u32, 10, 15, 20, 25] {
        let (data, theta) = bound_fixture(n, 42);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| {
                bound_for_assertions(&data, &theta, &BoundMethod::Exact, &cols)
                    .expect("n <= 25 supported")
            })
        });
        let gibbs = BoundMethod::Gibbs(GibbsConfig {
            min_samples: 400,
            max_samples: 800,
            seed: 7,
            ..GibbsConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("gibbs", n), &n, |b, _| {
            b.iter(|| bound_for_assertions(&data, &theta, &gibbs, &cols).expect("gibbs runs"))
        });
    }
    // Gibbs keeps going where exact cannot.
    for n in [50u32, 100] {
        let (data, theta) = bound_fixture(n, 42);
        let gibbs = BoundMethod::Gibbs(GibbsConfig {
            min_samples: 400,
            max_samples: 800,
            seed: 7,
            ..GibbsConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("gibbs", n), &n, |b, _| {
            b.iter(|| bound_for_assertions(&data, &theta, &gibbs, &cols).expect("gibbs runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound);
criterion_main!(benches);
