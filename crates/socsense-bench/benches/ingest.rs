//! Apollo ingest costs: chunked JSONL parsing and the inverted-index
//! clustering fast path, against the naive all-pairs oracle.
//!
//! The clustering comparison is the algorithmic story of the sharded
//! ingest work: `cluster-naive` evaluates every `n(n-1)/2` pair while
//! `cluster-indexed` only touches pairs sharing an indexable shingle,
//! so the gap grows quadratically with corpus size even on one core.
//! The `threads-*` rows add deterministic sharding on top (bit-identical
//! output at every level; see `BENCH_ingest.json` for the recorded
//! evidence).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use socsense_apollo::{
    cluster_texts_naive, cluster_texts_par, parse_tweets_jsonl_with, ClusterConfig, IngestConfig,
};
use socsense_bench::{jsonl_corpus, tweet_corpus};
use socsense_matrix::Parallelism;

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let cfg = ClusterConfig::default();
    for n in [1_000usize, 4_000] {
        let texts = tweet_corpus(n, 42);
        group.bench_with_input(BenchmarkId::new("cluster-naive", n), &n, |b, _| {
            b.iter(|| cluster_texts_naive(&texts, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("cluster-indexed", n), &n, |b, _| {
            b.iter(|| cluster_texts_par(&texts, &cfg, Parallelism::Serial))
        });
    }

    let texts = tweet_corpus(10_000, 42);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("cluster-indexed-threads", threads),
            &threads,
            |b, &t| b.iter(|| cluster_texts_par(&texts, &cfg, Parallelism::Threads(t))),
        );
    }

    let jsonl = jsonl_corpus(10_000, 42);
    for threads in [1usize, 2, 4] {
        let ingest = IngestConfig {
            parallelism: Parallelism::Threads(threads),
        };
        group.bench_with_input(
            BenchmarkId::new("parse-jsonl-threads", threads),
            &threads,
            |b, _| b.iter(|| parse_tweets_jsonl_with(&jsonl, &ingest).expect("fixture parses")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
