//! Throughput of the substrate layers: the synthetic generator, the
//! cascade simulator, `SC`/`D` matrix construction, and the sparse
//! likelihood kernel (the inner loop of every EM iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use socsense_bench::{synth_fixture, twitter_fixture};
use socsense_core::{assertion_posteriors, ClaimData};
use socsense_graph::build_matrices;
use socsense_synth::{empirical_theta, GeneratorConfig, SyntheticDataset};
use socsense_twitter::{ScenarioConfig, TwitterDataset};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Synthetic generator throughput across n.
    for n in [50u32, 200] {
        let cfg = GeneratorConfig {
            n,
            ..GeneratorConfig::paper_defaults()
        };
        group.bench_with_input(BenchmarkId::new("synth-generate", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                SyntheticDataset::generate(&cfg, seed).expect("validates")
            })
        });
    }

    // Cascade simulator throughput across scenario scale.
    for scale in [0.02f64, 0.1] {
        let cfg = ScenarioConfig::ukraine().scaled(scale);
        group.bench_with_input(
            BenchmarkId::new("twitter-simulate", format!("{scale}")),
            &scale,
            |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    TwitterDataset::simulate(&cfg, seed).expect("validates")
                })
            },
        );
    }

    // SC/D construction from a claim log + follower graph.
    let tw = twitter_fixture(0.1, 9);
    let claims = tw.timed_claims();
    group.bench_function("build-matrices/twitter-0.1", |b| {
        b.iter(|| build_matrices(tw.source_count(), tw.assertion_count(), &claims, &tw.graph))
    });

    // Likelihood kernel: all posteriors for one θ (one EM E-step).
    let ds = synth_fixture(100, 3);
    let theta = empirical_theta(&ds);
    group.bench_function("posteriors/synth-n100", |b| {
        b.iter(|| assertion_posteriors(&ds.data, &theta).expect("dims match"))
    });
    let tw_data: ClaimData = tw.claim_data();
    let tw_theta = socsense_core::Theta::neutral(tw_data.source_count());
    group.bench_function("posteriors/twitter-0.1", |b| {
        b.iter(|| assertion_posteriors(&tw_data, &tw_theta).expect("dims match"))
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
