//! Apollo pipeline costs: text clustering in isolation, and the full
//! ingest → cluster → estimate → rank run per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use socsense_apollo::{cluster_texts, Apollo, ApolloConfig, ClusterConfig};
use socsense_baselines::{EmExtFinder, FactFinder, Voting};
use socsense_bench::twitter_fixture;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let tw = twitter_fixture(0.1, 17);
    let texts: Vec<String> = tw.tweets.iter().map(|t| t.text.clone()).collect();
    group.bench_with_input(
        BenchmarkId::new("cluster-texts", texts.len()),
        &texts.len(),
        |b, _| b.iter(|| cluster_texts(&texts, &ClusterConfig::default())),
    );

    let finders: [(&str, Box<dyn FactFinder>); 2] = [
        ("em-ext", Box::new(EmExtFinder::default())),
        ("voting", Box::new(Voting::default())),
    ];
    for (name, finder) in &finders {
        group.bench_function(format!("apollo-known-ids/{name}"), |b| {
            let apollo = Apollo::new(ApolloConfig::default());
            b.iter(|| apollo.run(&tw, finder.as_ref()).expect("pipeline runs"))
        });
    }
    group.bench_function("apollo-text-clustered/em-ext", |b| {
        let apollo = Apollo::new(ApolloConfig {
            cluster_text: true,
            ..ApolloConfig::default()
        });
        let finder = EmExtFinder::default();
        b.iter(|| apollo.run(&tw, &finder).expect("pipeline runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
