//! Property-based tests for the delta-aware streaming refit path.
//!
//! Three contracts over *random ingest schedules* (random world, follow
//! graph, and batch splits):
//!
//! 1. **Fallback bit-identity** — with `max_batch_fraction = 0` every
//!    refit after the seed falls back, and the delta chain must be
//!    bit-for-bit identical to `RefitMode::Full`.
//! 2. **Bounded staleness** — between fallbacks, every served posterior
//!    stays within the configured `max_divergence` of a fresh E-step
//!    under the served `θ`.
//! 3. **Deterministic parallelism** — the scoped E-step is bit-identical
//!    across `Serial` and `Threads(k)` at every worker count.

use proptest::collection::vec;
use proptest::prelude::*;
use socsense_core::{
    assertion_posteriors, DeltaConfig, EmConfig, EmFit, Parallelism, RefitMode, RefitOutcome,
    StreamingEstimator,
};
use socsense_graph::{FollowerGraph, TimedClaim};

/// The levels every deterministic-parallelism property compares against
/// [`Parallelism::Serial`].
const LEVELS: [Parallelism; 3] = [
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(4),
];

/// A random streaming world: sizes, follow edges, and a batched claim
/// schedule (every batch non-empty, timestamps strictly increasing).
#[derive(Debug, Clone)]
struct Schedule {
    n: u32,
    m: u32,
    follows: Vec<(u32, u32)>,
    batches: Vec<Vec<TimedClaim>>,
}

impl Schedule {
    fn graph(&self) -> FollowerGraph {
        let mut g = FollowerGraph::new(self.n);
        for &(f, s) in &self.follows {
            g.add_follow(f, s);
        }
        g
    }

    fn estimator(&self, config: EmConfig) -> StreamingEstimator {
        StreamingEstimator::new(self.n, self.m, self.graph(), config)
            .expect("schedule sizes are non-zero")
    }
}

fn random_schedule() -> impl Strategy<Value = Schedule> {
    (3u32..8, 4u32..12).prop_flat_map(|(n, m)| {
        let follows = vec((0..n, 0..n), 0..6);
        let batches = vec(vec((0..n, 0..m, 1u64..50), 1..10), 2..5);
        (Just(n), Just(m), follows, batches).prop_map(|(n, m, follows, raw)| {
            let follows = follows.into_iter().filter(|(f, s)| f != s).collect();
            // Make timestamps globally strictly increasing so schedules
            // are realistic streams; dependency structure still varies
            // through the random source/assertion pairs.
            let mut t = 0u64;
            let batches = raw
                .into_iter()
                .map(|batch| {
                    batch
                        .into_iter()
                        .map(|(s, j, dt)| {
                            t += dt;
                            TimedClaim::new(s, j, t)
                        })
                        .collect()
                })
                .collect();
            Schedule {
                n,
                m,
                follows,
                batches,
            }
        })
    })
}

/// Every bit of a fit that callers can observe.
fn fit_bits(fit: &EmFit) -> Vec<u64> {
    let mut v: Vec<u64> = fit.posterior.iter().map(|p| p.to_bits()).collect();
    for s in fit.theta.sources() {
        v.extend([s.a, s.b, s.f, s.g].map(f64::to_bits));
    }
    v.push(fit.theta.z().to_bits());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Contract 1: with `max_batch_fraction = 0` the pre-trigger fires on
    /// every non-empty batch, so the delta estimator must retrace the
    /// full-mode estimator exactly — same bits, same iteration counts.
    #[test]
    fn fallback_chain_is_bit_identical_to_full(sched in random_schedule()) {
        let mut full = sched.estimator(EmConfig::default());
        let mut delta = sched.estimator(EmConfig::default());
        delta
            .set_refit_mode(RefitMode::Delta(DeltaConfig {
                max_batch_fraction: 0.0,
                ..DeltaConfig::default()
            }))
            .expect("default-derived config is valid");
        for (k, batch) in sched.batches.iter().enumerate() {
            full.ingest(batch).expect("in-bounds batch");
            delta.ingest(batch).expect("in-bounds batch");
            let (fa, sa) = full.estimate_with_stats().expect("full refit");
            let (fb, sb) = delta.estimate_with_stats().expect("delta refit");
            prop_assert_eq!(fit_bits(&fa), fit_bits(&fb), "batch {}", k);
            prop_assert_eq!(sa.iterations, sb.iterations);
            let expected = if k == 0 { RefitOutcome::Full } else { RefitOutcome::Fallback };
            prop_assert_eq!(sb.mode, expected);
        }
    }

    /// Contract 2: between fallbacks, every posterior the delta path
    /// serves is within `max_divergence` of a fresh E-step over the full
    /// data under the served `θ`. Full and fallback refits end with a
    /// complete E-pass, so they satisfy the same bound trivially.
    #[test]
    fn served_posteriors_stay_within_divergence_bound(sched in random_schedule()) {
        let cfg = DeltaConfig::default();
        let mut est = sched.estimator(EmConfig::default());
        est.set_refit_mode(RefitMode::Delta(cfg)).expect("valid config");
        for batch in &sched.batches {
            est.ingest(batch).expect("in-bounds batch");
            let (fit, _) = est.estimate_with_stats().expect("refit");
            let data = est.snapshot();
            let fresh = assertion_posteriors(&data, &fit.theta).expect("matching dims");
            for (j, (&served, &exact)) in fit.posterior.iter().zip(&fresh).enumerate() {
                prop_assert!(
                    (served - exact).abs() <= cfg.max_divergence + 1e-9,
                    "assertion {}: served {} vs fresh {}",
                    j, served, exact
                );
            }
        }
    }

    /// Contract 3: the scoped delta path is bit-identical across worker
    /// counts. Thresholds are pushed out of reach so every refit after
    /// the seed exercises the scoped E-step rather than the (already
    /// covered) full path.
    #[test]
    fn delta_path_is_parallelism_invariant(sched in random_schedule()) {
        let mode = RefitMode::Delta(DeltaConfig {
            max_drift: 1e12,
            max_batch_fraction: 1e12,
            max_divergence: 1e12,
            ..DeltaConfig::default()
        });
        let run = |par: Parallelism| {
            let mut est = sched.estimator(EmConfig { parallelism: par, ..EmConfig::default() });
            est.set_refit_mode(mode).expect("valid config");
            let mut out = Vec::new();
            for batch in &sched.batches {
                est.ingest(batch).expect("in-bounds batch");
                let (fit, stats) = est.estimate_with_stats().expect("refit");
                out.push((fit_bits(&fit), stats.mode));
            }
            out
        };
        let baseline = run(Parallelism::Serial);
        prop_assert!(
            baseline[1..].iter().all(|(_, mode)| *mode == RefitOutcome::Delta),
            "unreachable thresholds must keep the chain scoped"
        );
        for level in LEVELS {
            prop_assert_eq!(&baseline, &run(level), "{:?}", level);
        }
    }
}
