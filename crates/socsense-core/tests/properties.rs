//! Property-based tests for the core model, estimator, and bounds.

use proptest::collection::vec;
use proptest::prelude::*;
use socsense_core::{
    assertion_posteriors, assertion_posteriors_with, bound_for_assertions_with, bound_for_data,
    data_log_likelihood, data_log_likelihood_with, exact_bound, gibbs_bound, BoundMethod,
    ClaimData, EmConfig, EmExt, GibbsConfig, Parallelism, SourceParams, Theta,
};
use socsense_matrix::SparseBinaryMatrix;

/// The levels every deterministic-parallelism property compares against
/// [`Parallelism::Serial`].
const LEVELS: [Parallelism; 3] = [
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(4),
];

/// Random (SC, D) pair plus a random θ of matching size.
fn random_problem() -> impl Strategy<Value = (ClaimData, Theta)> {
    (2u32..10, 2u32..12).prop_flat_map(|(n, m)| {
        let sc_entries = vec((0..n, 0..m), 1..40);
        let d_entries = vec((0..n, 0..m), 0..30);
        let params = vec(
            (0.05f64..0.95, 0.05f64..0.95, 0.05f64..0.95, 0.05f64..0.95),
            n as usize,
        );
        let z = 0.1f64..0.9;
        (Just(n), Just(m), sc_entries, d_entries, params, z).prop_map(
            |(n, m, sc_e, d_e, params, z)| {
                let sc = SparseBinaryMatrix::from_entries(n, m, sc_e);
                let d = SparseBinaryMatrix::from_entries(n, m, d_e);
                let theta = Theta::new(
                    params
                        .into_iter()
                        .map(|(a, b, f, g)| SourceParams::new(a, b, f, g).expect("in range"))
                        .collect(),
                    z,
                )
                .expect("valid theta");
                (ClaimData::new(sc, d).expect("shapes match"), theta)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Posteriors are probabilities and the data log-likelihood is finite
    /// for arbitrary (SC, D, θ).
    #[test]
    fn posteriors_are_well_formed((data, theta) in random_problem()) {
        let post = assertion_posteriors(&data, &theta).unwrap();
        prop_assert_eq!(post.len(), data.assertion_count());
        for &p in &post {
            prop_assert!((0.0..=1.0).contains(&p), "posterior {p}");
        }
        let ll = data_log_likelihood(&data, &theta).unwrap();
        prop_assert!(ll.is_finite() && ll <= 0.0);
    }

    /// The exact bound is a Bayes risk: within [0, min(z, 1-z)], and its
    /// FP/FN parts add up.
    #[test]
    fn exact_bound_is_a_bayes_risk(
        probs in vec((0.02f64..0.98, 0.02f64..0.98), 1..12),
        z in 0.05f64..0.95,
    ) {
        let b = exact_bound(&probs, z).unwrap();
        prop_assert!(b.error >= -1e-12);
        prop_assert!(b.error <= z.min(1.0 - z) + 1e-9, "err {} prior {}", b.error, z.min(1.0 - z));
        prop_assert!((b.false_positive + b.false_negative - b.error).abs() < 1e-9);
    }

    /// Adding an informative source can only tighten (or keep) the bound —
    /// data processing inequality for the optimal detector.
    #[test]
    fn extra_source_never_loosens_bound(
        probs in vec((0.02f64..0.98, 0.02f64..0.98), 1..10),
        extra in (0.02f64..0.98, 0.02f64..0.98),
        z in 0.1f64..0.9,
    ) {
        let base = exact_bound(&probs, z).unwrap();
        let mut bigger = probs.clone();
        bigger.push(extra);
        let grown = exact_bound(&bigger, z).unwrap();
        prop_assert!(grown.error <= base.error + 1e-9,
            "bound grew from {} to {}", base.error, grown.error);
    }

    /// Gibbs stays within a loose band of exact on small instances.
    #[test]
    fn gibbs_is_near_exact(
        probs in vec((0.1f64..0.9, 0.1f64..0.9), 2..7),
        z in 0.2f64..0.8,
        seed in 0u64..1000,
    ) {
        let exact = exact_bound(&probs, z).unwrap();
        let cfg = GibbsConfig {
            min_samples: 1500,
            max_samples: 6000,
            seed,
            ..GibbsConfig::default()
        };
        let approx = gibbs_bound(&probs, z, &cfg).unwrap();
        prop_assert!(
            (approx.result.error - exact.error).abs() < 0.06,
            "gibbs {} vs exact {}",
            approx.result.error,
            exact.error
        );
    }

    /// EM always terminates with a valid θ, posteriors in range, and a
    /// non-decreasing likelihood trace.
    #[test]
    fn em_is_stable_on_arbitrary_data((data, _) in random_problem()) {
        // smoothing = 0 is the paper's exact EM, for which the monotone
        // log-likelihood guarantee below holds.
        let fit = EmExt::new(EmConfig { max_iters: 60, smoothing: 0.0, ..EmConfig::default() })
            .fit(&data)
            .unwrap();
        prop_assert!((0.0..=1.0).contains(&fit.theta.z()));
        for s in fit.theta.sources() {
            prop_assert!((0.0..=1.0).contains(&s.a) && (0.0..=1.0).contains(&s.b));
            prop_assert!((0.0..=1.0).contains(&s.f) && (0.0..=1.0).contains(&s.g));
        }
        for &p in &fit.posterior {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        for w in fit.ll_history.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "LL decreased {} -> {}", w[0], w[1]);
        }
    }

    /// The mean per-assertion bound is itself a probability-like quantity
    /// and respects the FP/FN identity.
    #[test]
    fn data_bound_is_well_formed((data, theta) in random_problem()) {
        let b = bound_for_data(&data, &theta, &BoundMethod::Exact).unwrap();
        prop_assert!((0.0..=0.5 + 1e-9).contains(&b.error));
        prop_assert!((b.false_positive + b.false_negative - b.error).abs() < 1e-9);
    }

    /// Posteriors and the data log-likelihood are bit-identical at every
    /// parallelism level (the determinism contract of
    /// `socsense_matrix::parallel`, observed through the likelihood API).
    #[test]
    fn posteriors_are_bit_identical_across_parallelism((data, theta) in random_problem()) {
        let serial = assertion_posteriors_with(&data, &theta, Parallelism::Serial).unwrap();
        let ll_serial = data_log_likelihood_with(&data, &theta, Parallelism::Serial).unwrap();
        for par in LEVELS {
            let threaded = assertion_posteriors_with(&data, &theta, par).unwrap();
            for (j, (&s, &t)) in serial.iter().zip(&threaded).enumerate() {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "{:?} posterior j={}", par, j);
            }
            let ll = data_log_likelihood_with(&data, &theta, par).unwrap();
            prop_assert_eq!(ll_serial.to_bits(), ll.to_bits(), "{:?} log-likelihood", par);
        }
    }

    /// A full EM fit — θ, posteriors, and the likelihood trace — is
    /// bit-identical at every parallelism level, including a restart
    /// sweep whose keep-best tie-breaking must not depend on scheduling.
    #[test]
    fn em_fit_is_bit_identical_across_parallelism((data, _) in random_problem()) {
        let fit_at = |par| {
            EmExt::new(EmConfig {
                max_iters: 40,
                restarts: 2,
                parallelism: par,
                ..EmConfig::default()
            })
            .fit(&data)
            .unwrap()
        };
        let serial = fit_at(Parallelism::Serial);
        for par in LEVELS {
            let threaded = fit_at(par);
            prop_assert_eq!(&serial.theta, &threaded.theta, "{:?} theta", par);
            for (j, (&s, &t)) in serial.posterior.iter().zip(&threaded.posterior).enumerate() {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "{:?} posterior j={}", par, j);
            }
            for (k, (&s, &t)) in serial.ll_history.iter().zip(&threaded.ll_history).enumerate() {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "{:?} ll[{}]", par, k);
            }
            prop_assert_eq!(serial.iterations, threaded.iterations);
        }
    }

    /// Gibbs-sampled bounds are bit-identical at every parallelism level:
    /// chains are seeded per assertion from `(seed, j)` alone, so the
    /// worker that happens to run a chain cannot change its draw.
    #[test]
    fn gibbs_bounds_are_bit_identical_across_parallelism(
        (data, theta) in random_problem(),
        seed in 0u64..1000,
    ) {
        let method = BoundMethod::Gibbs(GibbsConfig {
            min_samples: 100,
            max_samples: 400,
            seed,
            ..GibbsConfig::default()
        });
        let all: Vec<u32> = (0..data.assertion_count() as u32).collect();
        let serial =
            bound_for_assertions_with(&data, &theta, &method, &all, Parallelism::Serial).unwrap();
        for par in LEVELS {
            let threaded =
                bound_for_assertions_with(&data, &theta, &method, &all, par).unwrap();
            prop_assert_eq!(serial.error.to_bits(), threaded.error.to_bits(), "{:?}", par);
            prop_assert_eq!(
                serial.false_positive.to_bits(),
                threaded.false_positive.to_bits()
            );
            prop_assert_eq!(
                serial.false_negative.to_bits(),
                threaded.false_negative.to_bits()
            );
        }
    }
}
